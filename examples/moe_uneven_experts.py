"""Uneven expert placement for Mixture-of-Experts models (Fig. 17 style).

Trains a small BERT-MoE with an expert count that does not divide the device
count on a 2x A100 + 2x P100 cluster.  DeepSpeed-style expert parallelism must
pad the expert count to a multiple of four; HAP shards the expert dimension
unevenly and gives more experts to the faster A100 GPUs.

Run with:  python examples/moe_uneven_experts.py [--experts 6]
"""

from __future__ import annotations

import argparse

from repro.autodiff import build_training_graph
from repro.baselines import plan_baseline
from repro.cluster import a100_p100_pair
from repro.core import PlannerConfig, SynthesisConfig
from repro.graph import shard_sizes
from repro.models import BERTMoEConfig, build_bert_moe
from repro.simulator import ExecutionSimulator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--experts", type=int, default=6, help="number of experts (try one not divisible by 4)")
    parser.add_argument("--beam", type=int, default=8)
    args = parser.parse_args()

    cluster = a100_p100_pair()
    print(cluster.describe())
    print()

    def build(num_experts: int):
        config = BERTMoEConfig(
            batch_size=max(1, 32 * num_experts // 16),
            seq_len=32,
            hidden_size=128,
            num_layers=2,
            num_heads=4,
            vocab_size=4096,
            num_experts=num_experts,
        )
        return build_training_graph(build_bert_moe(config)).graph

    planner = PlannerConfig(max_rounds=2)
    planner.synthesis = SynthesisConfig(beam_width=args.beam)
    simulator = ExecutionSimulator(cluster, seed=0)

    hap_plan = plan_baseline("HAP", build(args.experts), cluster, planner)
    hap_time = simulator.simulate(hap_plan.program, hap_plan.flat_ratios, iterations=2).total

    padded = ((args.experts + 3) // 4) * 4
    ds_plan = plan_baseline("DeepSpeed", build(padded), cluster, planner.synthesis)
    ds_time = simulator.simulate(ds_plan.program, ds_plan.flat_ratios, iterations=2).total

    print(f"experts requested: {args.experts}   (DeepSpeed pads to {padded})")
    print(f"HAP        per-iteration time: {hap_time * 1e3:8.2f} ms")
    print(f"DeepSpeed  per-iteration time: {ds_time * 1e3:8.2f} ms")
    print(f"HAP speed-up: {ds_time / hap_time:.2f}x")
    print()

    ratios = hap_plan.flat_ratios
    sharded_expert_params = [
        name for name, dim in hap_plan.program.parameter_shardings().items() if dim == 0
    ]
    if sharded_expert_params:
        placement = shard_sizes(args.experts, ratios)
        print("HAP expert placement (experts per device):")
        for device, count in zip(cluster.virtual_devices, placement):
            print(f"  {device.name:16s} ratio={ratios[device.index]:.3f}  experts={count}")
        print(f"(derived from the sharded expert parameter {sharded_expert_params[0]!r})")
    else:
        print("HAP kept the expert parameters replicated for this configuration;")
        print(f"per-device sharding ratios: {[round(r, 3) for r in ratios]}")
        print("(try a larger --beam or more experts to see uneven expert placement)")


if __name__ == "__main__":
    main()
