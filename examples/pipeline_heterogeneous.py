"""Hierarchical planning demo: pipeline-over-SPMD on a whimpy hetero cluster.

Plans BERT on the paper's heterogeneous testbed (V100 + P100 machines joined
by a ~10.4 Gbps network) under the assumption that links *inside* each
machine group are fast (100 Gbps rack-local) while the flat network is the
slow inter-group bottleneck.  Flat HAP must synchronise every gradient over
the slow link each iteration; the hierarchical planner pipelines SPMD stages
across the machine groups so gradients stay inside the fast groups and only
thin boundary activations cross the slow link.

Run with:  PYTHONPATH=src python examples/pipeline_heterogeneous.py
"""

from repro.cluster import NetworkSpec, heterogeneous_testbed
from repro.core import HierarchicalConfig, PlannerConfig, SynthesisConfig
from repro.hap import hap, hap_pipeline
from repro.models.bert import BERTConfig, build_bert
from repro.simulator import simulate_hierarchical, simulate_plan


def main() -> None:
    cluster = heterogeneous_testbed(num_gpus=32, gpus_per_machine=8)
    print(cluster.describe())
    print()

    forward = build_bert(BERTConfig(batch_size=64, num_layers=4))
    planner_config = PlannerConfig(max_rounds=1)
    planner_config.synthesis = SynthesisConfig(beam_width=8)

    config = HierarchicalConfig(
        planner=planner_config,
        # Machine groups are rack-local islands with fast internal links;
        # the cluster's flat 10.4 Gbps network is the inter-group link.
        intra_group_network=NetworkSpec(bandwidth=100e9 / 8),
    )
    plan = hap_pipeline(forward, cluster, config)
    print(plan.describe())
    print()
    print(plan.partition.describe())
    print()

    chunks = f" x{plan.num_model_chunks} model chunks" if plan.num_model_chunks > 1 else ""
    recompute = "on" if plan.recompute else "off"
    print(f"chosen schedule:        {plan.schedule_name}{chunks}")
    print(f"microbatches:           {plan.num_microbatches}")
    print(f"activation recompute:   {recompute}")
    if plan.num_model_chunks > 1:
        # Interleaved plans are built from s*v real chunk programs: each
        # virtual stage has its own flat-HAP plan, and wrap hops (last
        # physical stage back to stage 0) carry their true boundary bytes.
        for chunk in plan.chunk_sequence():
            print(
                f"  chunk {chunk.chunk} on stage {chunk.stage_index} "
                f"(virtual {chunk.virtual_index}): "
                f"{len(chunk.info.graph)} nodes, "
                f"est {chunk.plan.estimated_time.total * 1e3:.2f} ms flat, "
                f"sends {chunk.send_bytes / 1e6:.2f} MB to the next virtual stage"
            )
    for stage in plan.stages:
        peak = plan.peak_memory[stage.index]
        cap = plan.stage_memory_capacity[stage.index]
        print(
            f"stage {stage.index} peak memory:     {peak / 1e9:6.2f} GB "
            f"of {cap / 1e9:.0f} GB on {stage.subcluster.name} "
            f"(in-flight microbatches: {plan.schedule.peak_inflight[stage.index]})"
        )
    print()

    flat = hap(forward, cluster, planner_config)
    pipeline_time = simulate_hierarchical(plan, iterations=3, seed=0).total
    flat_time = simulate_plan(flat, cluster, iterations=3, seed=0).total
    print(f"simulated iteration time, flat HAP:      {flat_time * 1e3:8.1f} ms")
    print(f"simulated iteration time, HAP-Pipeline:  {pipeline_time * 1e3:8.1f} ms")
    print(f"pipeline speed-up over flat SPMD:        {flat_time / pipeline_time:8.2f}x")


if __name__ == "__main__":
    main()
