"""VGG19 on a heterogeneous cluster: where model parallelism beats DP.

VGG19's convolutional layers are compute-heavy while its 4096-wide
fully-connected classifier is communication-heavy under data parallelism
(hundreds of megabytes of gradients per iteration over a 10.4 Gbps network).
This example shows the per-layer decisions HAP makes — data parallelism for
the convolutions, sharded parameters / sufficient factors for the classifier —
and the resulting speed-up over DP-EV, mirroring the largest gains reported in
Fig. 13.

Run with:  python examples/vgg_model_parallelism.py [--gpus 16]
"""

from __future__ import annotations

import argparse
from collections import Counter

from repro.autodiff import build_training_graph
from repro.baselines import plan_baseline
from repro.cluster import heterogeneous_testbed
from repro.core import PlannerConfig, SynthesisConfig
from repro.models import VGGConfig, build_vgg19
from repro.simulator import ExecutionSimulator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gpus", type=int, default=16)
    parser.add_argument("--image-size", type=int, default=64, help="input resolution (224 = paper scale)")
    parser.add_argument("--beam", type=int, default=8)
    args = parser.parse_args()

    cluster = heterogeneous_testbed(args.gpus)
    graph = build_training_graph(
        build_vgg19(VGGConfig(batch_size=64 * args.gpus, image_size=args.image_size))
    ).graph
    print(f"VGG19 training graph: {len(graph)} nodes, "
          f"{graph.parameter_count() / 1e6:.1f} M parameters")
    print(cluster.describe())
    print()

    planner = PlannerConfig(max_rounds=2)
    planner.synthesis = SynthesisConfig(beam_width=args.beam)
    simulator = ExecutionSimulator(cluster, seed=0)

    results = {}
    for system in ("HAP", "DP-EV", "DP-CP"):
        config = planner if system == "HAP" else planner.synthesis
        plan = plan_baseline(system, graph, cluster, config)
        time = simulator.simulate(plan.program, plan.flat_ratios, iterations=2).total
        results[system] = (plan, time)
        print(f"{system:8s}: {time * 1e3:8.1f} ms/iteration   collectives={plan.program.communication_kinds()}")

    hap_plan, hap_time = results["HAP"]
    best_dp = min(results["DP-EV"][1], results["DP-CP"][1])
    print(f"\nHAP speed-up over the best DP baseline: {best_dp / hap_time:.2f}x")

    shardings = hap_plan.program.parameter_shardings()
    fc_params = [n for n in shardings if n.startswith(("fc1", "fc2", "classifier"))]
    conv_params = [n for n in shardings if n not in fc_params]
    print("\nHAP parameter shardings:")
    print("  convolution parameters:", Counter(
        "replicated" if shardings[n] is None else f"sharded(dim {shardings[n]})" for n in conv_params
    ))
    print("  classifier parameters: ", Counter(
        "replicated" if shardings[n] is None else f"sharded(dim {shardings[n]})" for n in fc_params
    ))


if __name__ == "__main__":
    main()
