"""Train BERT on the paper's heterogeneous V100+P100 testbed (Fig. 13 style).

Plans BERT-Base (reduced depth so the example runs in about a minute) on the
2x8 V100 + 6x8 P100 cluster and compares HAP against the DP-EV / DP-CP /
DeepSpeed baselines on the execution simulator.

Run with:  python examples/heterogeneous_bert.py [--gpus 32] [--layers 3]
"""

from __future__ import annotations

import argparse

from repro.cluster import heterogeneous_testbed
from repro.core import PlannerConfig, SynthesisConfig
from repro.experiments import compare_systems, format_comparison
from repro.models import BenchmarkScale


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gpus", type=int, default=32, help="total number of GPUs (multiple of 8)")
    parser.add_argument("--layers", type=int, default=3, help="number of BERT encoder layers")
    parser.add_argument("--beam", type=int, default=8, help="synthesizer beam width")
    args = parser.parse_args()

    cluster = heterogeneous_testbed(args.gpus)
    print(cluster.describe())
    print()

    scale = BenchmarkScale("example", layer_fraction=args.layers / 12.0, batch_per_device=64)
    planner = PlannerConfig(max_rounds=2)
    planner.synthesis = SynthesisConfig(beam_width=args.beam)

    comparison = compare_systems(
        "bert_base",
        cluster,
        num_gpus=args.gpus,
        systems=["HAP", "DP-EV", "DP-CP", "DeepSpeed"],
        scale=scale,
        planner_config=planner,
    )
    print(format_comparison(comparison))
    hap = comparison.results["HAP"]
    print()
    print(f"HAP plan uses collectives: {hap.comm_kinds}")
    print(f"planning time: {hap.planning_seconds:.1f}s")


if __name__ == "__main__":
    main()
