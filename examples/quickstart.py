"""Quickstart: plan SPMD training for a small Transformer on a mixed cluster.

This is the reproduction's analogue of the paper's ``hap.HAP(model, device
specification)`` workflow (Sec. 6):

1. describe the single-device model as a computation graph,
2. describe the heterogeneous cluster,
3. call :func:`repro.hap.hap` to synthesize the distributed program and the
   sharding ratios,
4. execute one training iteration with the SPMD emulation runtime and check it
   matches single-device execution.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.autodiff import build_training_graph
from repro.cluster import ClusterSpec, Machine, NetworkSpec, device_type
from repro.core import PlannerConfig, SynthesisConfig
from repro.data import batches_for_graph
from repro.graph import DType, GraphBuilder
from repro.hap import hap
from repro.runtime import SingleDeviceExecutor, init_parameters
from repro.runtime.spmd import run_plan


def build_model(batch=64, seq=32, hidden=128, heads=8, vocab=1000):
    """A two-layer Transformer language model written for a single device."""
    b = GraphBuilder("quickstart_transformer")
    ids = b.placeholder((batch, seq), dtype=DType.INT64, name="input_ids")
    table = b.parameter((vocab, hidden), name="token_embeddings")
    x = b.embedding(ids, table)
    for layer in range(2):
        x = b.transformer_layer(x, num_heads=heads, ffn_hidden=hidden * 4, prefix=f"layer{layer}")
    x = b.reshape(x, (batch * seq, hidden))
    logits = b.linear(x, vocab, prefix="lm_head")
    labels2d = b.placeholder((batch, seq), dtype=DType.INT64, name="labels")
    labels = b.reshape(labels2d, (batch * seq,))
    loss = b.cross_entropy(logits, labels)
    b.loss(loss)
    return b.build()


def build_cluster():
    """Two A100 GPUs and two P100 GPUs connected by a 100 Gbps network."""
    machines = [
        Machine("a1", device_type("A100"), num_gpus=1),
        Machine("a2", device_type("A100"), num_gpus=1),
        Machine("p1", device_type("P100"), num_gpus=1),
        Machine("p2", device_type("P100"), num_gpus=1),
    ]
    network = NetworkSpec(bandwidth=100e9 / 8, latency=20e-6)
    return ClusterSpec(machines, network=network, group_by_machine=False, name="quickstart")


def main() -> None:
    forward = build_model()
    cluster = build_cluster()
    print(cluster.describe())
    print()

    config = PlannerConfig(max_rounds=2)
    config.synthesis = SynthesisConfig(beam_width=16)
    plan = hap(forward, cluster, config)
    print(plan.describe())
    print()
    print("First stages of the synthesized distributed program:")
    for line in plan.program.describe().splitlines()[:25]:
        print(" ", line)
    print("  ...")

    # Execute one iteration with the SPMD emulation runtime and compare
    # against single-device execution of the same training graph.
    training = build_training_graph(forward)
    bindings = {**init_parameters(plan.program.graph, seed=0), **batches_for_graph(plan.program.graph, seed=1)}
    reference = SingleDeviceExecutor(plan.program.graph).run(bindings)
    distributed = run_plan(plan, bindings)
    ref_loss = float(reference[plan.program.graph.loss])
    print()
    print(f"single-device loss : {ref_loss:.6f}")
    print(f"SPMD emulated loss : {distributed.loss:.6f}")
    max_err = max(
        float(np.max(np.abs(reference[name] - distributed.outputs[name])))
        for name in reference
        if name in distributed.outputs
    )
    print(f"max |difference| over updated parameters: {max_err:.2e}")
    assert abs(ref_loss - distributed.loss) < 1e-2
    print("OK: the distributed program is semantically equivalent.")
    del training


if __name__ == "__main__":
    main()
