"""Graph analyses used by the synthesizer, the load balancer and the runtime.

Includes consumer/liveness maps, flops accounting per node, and the model
segmentation used by HAP's per-segment sharding ratios (Sec. 5.2).  The paper
either takes user-specified segments or runs METIS on the tensor graph; METIS
is not available offline, so :func:`segment_graph` implements the same
objective (balance segment weight while cutting small tensors) as a contiguous
balanced partition of the topological order, which is exact for the chain-like
graphs produced by the model zoo.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .graph import ComputationGraph, Node
from .ops import OpKind


def consumers_map(graph: ComputationGraph) -> Dict[str, List[str]]:
    """Map from node name to names of consuming nodes."""
    return graph.consumers()


def last_use(graph: ComputationGraph) -> Dict[str, int]:
    """Index (in topological order) of the last consumer of every node.

    Output nodes are considered live until the end of the program.
    """
    order = graph.node_names
    index = {name: i for i, name in enumerate(order)}
    last: Dict[str, int] = {name: index[name] for name in order}
    for node in graph:
        for inp in node.inputs:
            last[inp] = max(last[inp], index[node.name])
    horizon = len(order)
    for out in graph.outputs:
        last[out] = horizon
    return last


def node_flops_map(graph: ComputationGraph) -> Dict[str, float]:
    """Flop estimate for every node."""
    return {name: graph.node_flops(name) for name in graph.node_names}


def compute_nodes(graph: ComputationGraph) -> List[Node]:
    """All nodes that perform computation (i.e. are not sources)."""
    return [n for n in graph if n.kind is not OpKind.SOURCE]


@dataclass(frozen=True)
class GraphStats:
    """Aggregate statistics of a computation graph."""

    num_nodes: int
    num_parameters: int
    parameter_elements: int
    parameter_bytes: int
    total_flops: float
    activation_bytes: int

    @staticmethod
    def of(graph: ComputationGraph) -> "GraphStats":
        return GraphStats(
            num_nodes=len(graph),
            num_parameters=len(graph.parameters()),
            parameter_elements=graph.parameter_count(),
            parameter_bytes=graph.parameter_bytes(),
            total_flops=graph.total_flops(),
            activation_bytes=graph.activation_bytes(),
        )


def segment_graph(graph: ComputationGraph, num_segments: int) -> List[List[str]]:
    """Partition the graph into ``num_segments`` contiguous segments.

    Segments are contiguous slices of the topological order balanced by flops,
    with source nodes (placeholders/parameters) attached to the segment of
    their first consumer.  Returns a list of lists of node names; every node
    appears in exactly one segment.
    """
    if num_segments < 1:
        raise ValueError("num_segments must be >= 1")
    order = graph.node_names
    if num_segments == 1:
        return [list(order)]

    flops = node_flops_map(graph)
    compute_order = [n.name for n in compute_nodes(graph)]
    if not compute_order:
        return [list(order)] + [[] for _ in range(num_segments - 1)]
    num_segments = min(num_segments, len(compute_order))

    total = sum(flops[n] for n in compute_order) or float(len(compute_order))
    target = total / num_segments

    # Greedy contiguous split of the compute nodes by cumulative flops.
    boundaries: List[int] = []
    acc = 0.0
    for i, name in enumerate(compute_order):
        acc += flops[name] if total > 0 else 1.0
        if len(boundaries) < num_segments - 1 and acc >= target * (len(boundaries) + 1):
            boundaries.append(i + 1)
    while len(boundaries) < num_segments - 1:
        boundaries.append(len(compute_order))

    segments_compute: List[List[str]] = []
    start = 0
    for b in boundaries + [len(compute_order)]:
        segments_compute.append(compute_order[start:b])
        start = b

    # Attach each source node to the segment of its first consumer.
    segment_of: Dict[str, int] = {}
    for idx, seg in enumerate(segments_compute):
        for name in seg:
            segment_of[name] = idx
    consumers = consumers_map(graph)
    for node in graph:
        if node.kind is OpKind.SOURCE:
            cons = consumers.get(node.name, [])
            idx = min((segment_of.get(c, 0) for c in cons), default=0)
            segment_of[node.name] = idx

    segments: List[List[str]] = [[] for _ in range(num_segments)]
    for name in order:
        segments[segment_of.get(name, 0)].append(name)
    return segments


def segment_flops(graph: ComputationGraph, segments: Sequence[Sequence[str]]) -> List[float]:
    """Total flops of each segment."""
    flops = node_flops_map(graph)
    return [sum(flops[n] for n in seg) for seg in segments]


def cut_bytes(graph: ComputationGraph, segments: Sequence[Sequence[str]]) -> int:
    """Total bytes of tensors crossing segment boundaries.

    This is the quantity METIS minimises in the paper's segmentation step and
    is reported by the ablation benchmarks.
    """
    segment_of: Dict[str, int] = {}
    for idx, seg in enumerate(segments):
        for name in seg:
            segment_of[name] = idx
    crossing = 0
    for node in graph:
        for inp in node.inputs:
            if segment_of.get(inp) != segment_of.get(node.name):
                crossing += graph[inp].spec.size_bytes
    return crossing
