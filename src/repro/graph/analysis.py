"""Graph analyses used by the synthesizer, the load balancer and the runtime.

Includes consumer/liveness maps, flops accounting per node, and the model
segmentation used by HAP's per-segment sharding ratios (Sec. 5.2).  The paper
either takes user-specified segments or runs METIS on the tensor graph; METIS
is not available offline, so :func:`segment_graph` implements the same
objective (balance segment weight while cutting small tensors) as a contiguous
balanced partition of the topological order, which is exact for the chain-like
graphs produced by the model zoo.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .graph import ComputationGraph, Node
from .ops import OpKind


def consumers_map(graph: ComputationGraph) -> Dict[str, List[str]]:
    """Map from node name to names of consuming nodes."""
    return graph.consumers()


def last_use(graph: ComputationGraph) -> Dict[str, int]:
    """Index (in topological order) of the last consumer of every node.

    Output nodes are considered live until the end of the program.
    """
    order = graph.node_names
    index = {name: i for i, name in enumerate(order)}
    last: Dict[str, int] = {name: index[name] for name in order}
    for node in graph:
        for inp in node.inputs:
            last[inp] = max(last[inp], index[node.name])
    horizon = len(order)
    for out in graph.outputs:
        last[out] = horizon
    return last


def node_flops_map(graph: ComputationGraph) -> Dict[str, float]:
    """Flop estimate for every node."""
    return {name: graph.node_flops(name) for name in graph.node_names}


def compute_nodes(graph: ComputationGraph) -> List[Node]:
    """All nodes that perform computation (i.e. are not sources)."""
    return [n for n in graph if n.kind is not OpKind.SOURCE]


@dataclass(frozen=True)
class GraphStats:
    """Aggregate statistics of a computation graph."""

    num_nodes: int
    num_parameters: int
    parameter_elements: int
    parameter_bytes: int
    total_flops: float
    activation_bytes: int

    @staticmethod
    def of(graph: ComputationGraph) -> GraphStats:
        return GraphStats(
            num_nodes=len(graph),
            num_parameters=len(graph.parameters()),
            parameter_elements=graph.parameter_count(),
            parameter_bytes=graph.parameter_bytes(),
            total_flops=graph.total_flops(),
            activation_bytes=graph.activation_bytes(),
        )


def segment_graph(graph: ComputationGraph, num_segments: int) -> List[List[str]]:
    """Partition the graph into ``num_segments`` contiguous segments.

    Segments are contiguous slices of the topological order balanced by flops,
    with source nodes (placeholders/parameters) attached to the segment of
    their first consumer.  Returns a list of lists of node names; every node
    appears in exactly one segment.
    """
    if num_segments < 1:
        raise ValueError("num_segments must be >= 1")
    order = graph.node_names
    if num_segments == 1:
        return [list(order)]

    flops = node_flops_map(graph)
    compute_order = [n.name for n in compute_nodes(graph)]
    if not compute_order:
        return [list(order)] + [[] for _ in range(num_segments - 1)]
    num_segments = min(num_segments, len(compute_order))

    total = sum(flops[n] for n in compute_order) or float(len(compute_order))
    target = total / num_segments

    # Greedy contiguous split of the compute nodes by cumulative flops.
    boundaries: List[int] = []
    acc = 0.0
    for i, name in enumerate(compute_order):
        acc += flops[name] if total > 0 else 1.0
        if len(boundaries) < num_segments - 1 and acc >= target * (len(boundaries) + 1):
            boundaries.append(i + 1)
    while len(boundaries) < num_segments - 1:
        boundaries.append(len(compute_order))

    segments_compute: List[List[str]] = []
    start = 0
    for b in boundaries + [len(compute_order)]:
        segments_compute.append(compute_order[start:b])
        start = b

    # Attach each source node to the segment of its first consumer.
    segment_of: Dict[str, int] = {}
    for idx, seg in enumerate(segments_compute):
        for name in seg:
            segment_of[name] = idx
    consumers = consumers_map(graph)
    for node in graph:
        if node.kind is OpKind.SOURCE:
            cons = consumers.get(node.name, [])
            idx = min((segment_of.get(c, 0) for c in cons), default=0)
            segment_of[node.name] = idx

    segments: List[List[str]] = [[] for _ in range(num_segments)]
    for name in order:
        segments[segment_of.get(name, 0)].append(name)
    return segments


@dataclass(frozen=True)
class PipelineCut:
    """A contiguous partition of a forward graph into pipeline stages.

    Unlike :func:`segment_graph` (which tags nodes of one flat program for
    per-segment sharding ratios), a pipeline cut must yield *executable* stage
    subgraphs: stages are contiguous in topological order, every parameter's
    consumers live in a single stage (so the parameter's forward use, gradient
    and optimizer update stay together once the stage is differentiated), and
    the tensors crossing each boundary are recorded for activation handoff.

    Attributes:
        stages: per-stage node names (compute nodes plus attached sources),
            in topological order.  Placeholders consumed by several stages are
            listed in each consuming stage (data is available everywhere).
        stage_of: compute/parameter node name -> stage index.
        cut_refs: per-stage names of tensors produced in that stage and
            consumed by a later stage (the activations sent downstream).
        stage_flops: total forward flops of each stage.
        consumers: consumer map of the source graph (for boundary queries).
    """

    stages: Tuple[Tuple[str, ...], ...]
    stage_of: Dict[str, int]
    cut_refs: Tuple[Tuple[str, ...], ...]
    stage_flops: Tuple[float, ...]
    consumers: Dict[str, List[str]]

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def incoming_refs(self, stage: int) -> List[str]:
        """Cut tensors produced before ``stage`` that ``stage`` consumes."""
        wanted = set(self.stages[stage])
        incoming: List[str] = []
        for earlier in range(stage):
            for ref in self.cut_refs[earlier]:
                if ref in incoming:
                    continue
                for consumer in self.consumers.get(ref, []):
                    if consumer in wanted:
                        incoming.append(ref)
                        break
        return incoming

    def crossing_refs(self, boundary: int) -> List[str]:
        """Tensors in flight across the boundary after stage ``boundary``.

        A tensor crosses the boundary when its producer lives in stage
        ``<= boundary`` and some consumer lives in a later stage — so a
        skip-connection tensor spanning several stages appears at **every**
        boundary it crosses, not just its producer's outgoing one.  This is
        what each hop of the pipeline actually has to ship (and what
        :func:`cut_transfer_bytes` charges per hop); :attr:`cut_refs` in
        contrast lists each tensor once, at its producing stage (the
        per-chunk boundary *outputs* used for differentiation and runtime
        handoff).
        """
        if not 0 <= boundary < self.num_stages - 1:
            raise ValueError(
                f"boundary must be in [0, {self.num_stages - 2}], got {boundary}"
            )
        return [
            ref
            for ref, producer, last in self._ref_spans()
            if producer <= boundary < last
        ]

    def _ref_spans(self) -> List[Tuple[str, int, int]]:
        """(ref, producer stage, last consumer stage) per cut tensor, cached.

        Computed once per cut so per-boundary queries are a range test
        instead of re-deriving every ref's consumer stages (which would be
        quadratic in the stage count for deep interleaved cuts).
        """
        cached = getattr(self, "_spans_cache", None)
        if cached is None:
            cached = []
            for producer, refs in enumerate(self.cut_refs):
                for ref in refs:
                    consumer_stages = [
                        self.stage_of[c]
                        for c in self.consumers.get(ref, [])
                        if c in self.stage_of
                    ]
                    if consumer_stages:
                        cached.append((ref, producer, max(consumer_stages)))
            object.__setattr__(self, "_spans_cache", cached)
        return cached


def _atomic_blocks(
    graph: ComputationGraph,
    compute_order: Sequence[str],
    consumers: Dict[str, List[str]],
) -> List[List[int]]:
    """Group compute-node indices into blocks that must not be split.

    A parameter consumed by several compute nodes forces the whole index range
    between its first and last consumer into one block — cutting inside would
    put the parameter's forward use and (after differentiation) its gradient
    contributions into different stages, breaking the one-update-per-parameter
    invariant.  Overlapping ranges are merged transitively.
    """
    position = {name: i for i, name in enumerate(compute_order)}
    intervals: List[Tuple[int, int]] = []
    for param in graph.parameters():
        spans = [position[c] for c in consumers.get(param.name, []) if c in position]
        if len(spans) > 1:
            intervals.append((min(spans), max(spans)))
    intervals.sort()
    merged: List[Tuple[int, int]] = []
    for lo, hi in intervals:
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    blocks: List[List[int]] = []
    cursor = 0
    for lo, hi in merged:
        for i in range(cursor, lo):
            blocks.append([i])
        blocks.append(list(range(lo, hi + 1)))
        cursor = hi + 1
    for i in range(cursor, len(compute_order)):
        blocks.append([i])
    return blocks


def pipeline_cut(
    graph: ComputationGraph,
    stage_weights: Sequence[float],
    balance_tolerance: float = 0.1,
) -> PipelineCut:
    """Split a forward graph into pipeline stages balanced against group compute.

    Stages are contiguous slices of the topological order of the compute
    nodes; the boundary positions are chosen so the cumulative forward flops
    of stage ``i`` tracks ``stage_weights[i] / sum(stage_weights)`` (pass each
    machine group's aggregate flops to get compute-proportional stages on a
    heterogeneous cluster).  Like the paper's METIS segmentation objective,
    balance is traded against boundary cost: within a
    ``balance_tolerance``-of-total-flops window around each target, the
    position with the fewest activation bytes crossing the boundary wins —
    which lands cuts on the thin residual stream between layers instead of
    inside a layer's fat intermediates.  Parameter-sharing ranges are kept
    atomic, sources are attached to their consuming stages, and the tensors
    crossing each boundary are recorded.

    Returns a :class:`PipelineCut`; its actual ``num_stages`` may be lower
    than ``len(stage_weights)`` when the graph has fewer splittable blocks.
    """
    if not stage_weights:
        raise ValueError("stage_weights must be non-empty")
    num_stages = len(stage_weights)
    flops = node_flops_map(graph)
    compute_order = [n.name for n in compute_nodes(graph)]
    if not compute_order:
        raise ValueError("pipeline_cut needs at least one compute node")

    consumers = graph.consumers()
    blocks = _atomic_blocks(graph, compute_order, consumers)
    num_stages = min(num_stages, len(blocks))
    block_flops = [sum(flops[compute_order[i]] for i in block) for block in blocks]
    total = sum(block_flops) or float(len(blocks))
    weight_total = sum(stage_weights[:num_stages])
    targets = []
    acc_w = 0.0
    for w in stage_weights[:num_stages]:
        acc_w += w
        targets.append(total * acc_w / weight_total)

    # Activation bytes crossing a cut placed before each block: tensors whose
    # producer lies before the boundary and some consumer at or after it.
    position = {name: i for i, name in enumerate(compute_order)}
    block_of_node = [0] * len(compute_order)
    for b, block in enumerate(blocks):
        for i in block:
            block_of_node[i] = b
    crossing = [0.0] * (len(blocks) + 1)
    for name in compute_order:
        spans = [position[c] for c in consumers.get(name, []) if c in position]
        if not spans:
            continue
        first = block_of_node[position[name]] + 1
        last = block_of_node[max(spans)]
        if last >= first:
            nbytes = graph[name].spec.size_bytes
            for p in range(first, last + 1):
                crossing[p] += nbytes

    prefix = [0.0]
    for bf in block_flops:
        prefix.append(prefix[-1] + (bf if total > 0 else 1.0))

    # Pick each boundary inside the tolerance window around its flop target,
    # preferring the cheapest crossing (ties go to the better balance).
    window = balance_tolerance * total
    boundaries: List[int] = []
    previous = 0
    for k in range(num_stages - 1):
        lo, hi = previous + 1, len(blocks) - (num_stages - 1 - k)
        candidates = [
            p for p in range(lo, hi + 1) if abs(prefix[p] - targets[k]) <= window
        ]
        if not candidates:
            candidates = [
                min(range(lo, hi + 1), key=lambda p, t=targets[k]: abs(prefix[p] - t))
            ]
        best = min(
            candidates, key=lambda p, t=targets[k]: (crossing[p], abs(prefix[p] - t))
        )
        boundaries.append(best)
        previous = best

    stage_of_block: List[int] = []
    stage = 0
    for b in range(len(blocks)):
        while stage < len(boundaries) and b >= boundaries[stage]:
            stage += 1
        stage_of_block.append(stage)
    num_stages = stage_of_block[-1] + 1

    stage_of: Dict[str, int] = {}
    for block, s in zip(blocks, stage_of_block):
        for i in block:
            stage_of[compute_order[i]] = s

    # Attach sources: parameters go to their (single-stage) consumers,
    # placeholders/constants to every stage that consumes them.
    source_stages: Dict[str, List[int]] = {}
    for node in graph:
        if node.kind is OpKind.SOURCE:
            stages_used = sorted({stage_of[c] for c in consumers.get(node.name, []) if c in stage_of})
            if not stages_used:
                stages_used = [0]
            if node.op == "parameter" and len(stages_used) > 1:
                raise ValueError(
                    f"parameter {node.name!r} is consumed by stages {stages_used}; "
                    "pipeline_cut must keep parameter consumers in one stage"
                )
            source_stages[node.name] = stages_used
            stage_of[node.name] = stages_used[0]

    stage_nodes: List[List[str]] = [[] for _ in range(num_stages)]
    for name in graph.node_names:
        if name in source_stages:
            for s in source_stages[name]:
                stage_nodes[s].append(name)
        elif name in stage_of:
            stage_nodes[stage_of[name]].append(name)

    # Tensors produced in a stage and consumed in any later stage.
    cut_refs: List[List[str]] = [[] for _ in range(num_stages)]
    for name in compute_order:
        producer_stage = stage_of[name]
        consumer_stages = {stage_of[c] for c in consumers.get(name, []) if c in stage_of}
        if any(s > producer_stage for s in consumer_stages):
            cut_refs[producer_stage].append(name)

    stage_flops = [
        sum(flops[n] for n in names if n in flops and graph[n].kind is not OpKind.SOURCE)
        for names in stage_nodes
    ]
    return PipelineCut(
        stages=tuple(tuple(names) for names in stage_nodes),
        stage_of=stage_of,
        cut_refs=tuple(tuple(refs) for refs in cut_refs),
        stage_flops=tuple(stage_flops),
        consumers=consumers,
    )


def cut_transfer_bytes(graph: ComputationGraph, cut: PipelineCut) -> List[int]:
    """Bytes each stage's outgoing hop actually carries, per boundary.

    Entry ``i`` is the activation bytes crossing the boundary between stage
    ``i`` and ``i + 1`` — every tensor whose producer is at or before the
    boundary and whose last consumer is after it.  A skip-connection tensor
    spanning several boundaries is charged once **per hop it crosses**
    (earlier revisions charged all downstream bytes to the producing stage's
    outgoing hop only, under-pricing the interior hops it relays through).
    The final stage sends nothing, so the last entry is 0.
    """
    return [
        sum(graph[ref].spec.size_bytes for ref in cut.crossing_refs(boundary))
        for boundary in range(cut.num_stages - 1)
    ] + [0]


def interleaved_pipeline_cut(
    graph: ComputationGraph,
    stage_weights: Sequence[float],
    num_chunks: int,
    balance_tolerance: float = 0.1,
) -> PipelineCut:
    """Cut a forward graph into ``s * num_chunks`` round-robin model chunks.

    Megatron-style interleaved schedules place ``v = num_chunks`` model chunks
    on each of the ``s`` physical pipeline stages: virtual stage (chunk piece)
    ``k`` of the contiguous topological cut runs on physical stage ``k % s``,
    so each group hosts pieces ``k % s == i`` and microbatches wrap from the
    last physical stage back to the first between chunks.  The per-piece flop
    targets repeat the group compute weights round-robin, which balances each
    group's *total* work across its ``v`` pieces on a heterogeneous cluster
    exactly like :func:`pipeline_cut` balances whole stages.

    The returned :class:`PipelineCut` has (up to) ``s * num_chunks`` stages —
    one per *virtual* stage; callers must check ``cut.num_stages`` and treat a
    shortfall as "the graph has too few splittable blocks for this chunk
    count".  ``num_chunks == 1`` is exactly :func:`pipeline_cut`.
    """
    if num_chunks < 1:
        raise ValueError("num_chunks must be >= 1")
    if not stage_weights:
        raise ValueError("stage_weights must be non-empty")
    s = len(stage_weights)
    weights = [stage_weights[k % s] for k in range(s * num_chunks)]
    return pipeline_cut(graph, weights, balance_tolerance=balance_tolerance)


def segment_flops(graph: ComputationGraph, segments: Sequence[Sequence[str]]) -> List[float]:
    """Total flops of each segment."""
    flops = node_flops_map(graph)
    return [sum(flops[n] for n in seg) for seg in segments]


def cut_bytes(graph: ComputationGraph, segments: Sequence[Sequence[str]]) -> int:
    """Total bytes of tensors crossing segment boundaries.

    This is the quantity METIS minimises in the paper's segmentation step and
    is reported by the ablation benchmarks.
    """
    segment_of: Dict[str, int] = {}
    for idx, seg in enumerate(segments):
        for name in seg:
            segment_of[name] = idx
    crossing = 0
    for node in graph:
        for inp in node.inputs:
            if segment_of.get(inp) != segment_of.get(node.name):
                crossing += graph[inp].spec.size_bytes
    return crossing
