"""Backward (gradient) operators.

Reverse-mode autodiff (:mod:`repro.autodiff`) expands a forward graph into a
training graph; the backward pass needs a handful of additional primitive
operators (vector-Jacobian products).  They are registered here, in the same
registry as the forward ops, so the synthesizer, cost model and runtime treat
them uniformly.

Importing this module has the side effect of registering the operators; it is
imported by :mod:`repro.graph` consumers via :mod:`repro.autodiff`.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .ops import (
    Attrs,
    OpDef,
    OpKind,
    _check_arity,
    _conv_out_hw,
    _elementwise_flops,
    col2im,
    im2col,
    moe_routing,
    register_op,
    registered_ops,
)
from .tensor import TensorSpec


def _register_once(op: OpDef) -> None:
    """Register an op, tolerating repeated imports of this module."""
    if op.name not in registered_ops():
        register_op(op)


# ---------------------------------------------------------------------------
# broadcast / leading-dim reduction (grad of reduce_sum and bias_add)
# ---------------------------------------------------------------------------

def _broadcast_infer(specs: Sequence[TensorSpec], attrs: Attrs) -> TensorSpec:
    _check_arity("broadcast_to", specs, 1)
    if specs[0].rank != 0:
        raise ValueError("broadcast_to expects a scalar input")
    return TensorSpec(tuple(int(d) for d in attrs["shape"]), specs[0].dtype)


_register_once(
    OpDef(
        "broadcast_to",
        OpKind.BROADCAST,
        _broadcast_infer,
        _elementwise_flops(1.0),
        lambda inputs, attrs: np.broadcast_to(
            inputs[0], tuple(int(d) for d in attrs["shape"])
        ).astype(inputs[0].dtype, copy=True),
        1,
    )
)


def _sum_leading_infer(specs: Sequence[TensorSpec], _attrs: Attrs) -> TensorSpec:
    _check_arity("sum_leading", specs, 1)
    if specs[0].rank < 1:
        raise ValueError("sum_leading expects rank >= 1 input")
    return TensorSpec((specs[0].shape[-1],), specs[0].dtype)


_register_once(
    OpDef(
        "sum_leading",
        OpKind.SUM_LEADING,
        _sum_leading_infer,
        lambda specs, out, attrs: float(specs[0].numel),
        lambda inputs, attrs: np.sum(
            inputs[0].reshape(-1, inputs[0].shape[-1]), axis=0
        ),
        1,
    )
)


# ---------------------------------------------------------------------------
# elementwise activation gradients: grad(dy, x) -> dx  (same shape)
# ---------------------------------------------------------------------------

def _binary_same_shape_infer(specs: Sequence[TensorSpec], _attrs: Attrs) -> TensorSpec:
    _check_arity("binary grad op", specs, 2)
    if specs[0].shape != specs[1].shape:
        raise ValueError(
            f"grad op requires equal shapes, got {specs[0].shape} vs {specs[1].shape}"
        )
    return specs[0]


def _register_ew_grad(name: str, fn, cost: float = 2.0) -> None:
    _register_once(
        OpDef(
            name,
            OpKind.ELEMENTWISE,
            _binary_same_shape_infer,
            _elementwise_flops(cost),
            lambda inputs, attrs, _fn=fn: _fn(inputs[0], inputs[1]),
            2,
        )
    )


def _gelu_grad(dy: np.ndarray, x: np.ndarray) -> np.ndarray:
    c = math.sqrt(2.0 / math.pi)
    t = np.tanh(c * (x + 0.044715 * x ** 3))
    dt = (1.0 - t ** 2) * c * (1.0 + 3 * 0.044715 * x ** 2)
    return dy * (0.5 * (1.0 + t) + 0.5 * x * dt)


_register_ew_grad("relu_grad", lambda dy, x: dy * (x > 0.0).astype(dy.dtype))
_register_ew_grad("gelu_grad", _gelu_grad, cost=10.0)
_register_ew_grad("sigmoid_grad", lambda dy, x: dy * (1.0 / (1.0 + np.exp(-x))) * (1.0 - 1.0 / (1.0 + np.exp(-x))), cost=6.0)
_register_ew_grad("tanh_grad", lambda dy, x: dy * (1.0 - np.tanh(x) ** 2), cost=6.0)
_register_ew_grad("square_grad", lambda dy, x: 2.0 * dy * x)


# ---------------------------------------------------------------------------
# softmax / layernorm gradients (normalised axis in attrs)
# ---------------------------------------------------------------------------

def _softmax_grad_execute(inputs: Sequence[np.ndarray], attrs: Attrs) -> np.ndarray:
    dy, y = inputs
    axis = int(attrs.get("axis", -1))
    dot = np.sum(dy * y, axis=axis, keepdims=True)
    return (dy - dot) * y


_register_once(
    OpDef(
        "softmax_grad",
        OpKind.NORMALIZATION,
        _binary_same_shape_infer,
        _elementwise_flops(6.0),
        _softmax_grad_execute,
        2,
    )
)


def _layernorm_grad_execute(inputs: Sequence[np.ndarray], attrs: Attrs) -> np.ndarray:
    dy, x = inputs
    axis = int(attrs.get("axis", -1))
    eps = float(attrs.get("eps", 1e-5))
    n = x.shape[axis]
    mean = np.mean(x, axis=axis, keepdims=True)
    var = np.var(x, axis=axis, keepdims=True)
    inv = 1.0 / np.sqrt(var + eps)
    xhat = (x - mean) * inv
    dxhat = dy
    return inv * (
        dxhat
        - np.mean(dxhat, axis=axis, keepdims=True)
        - xhat * np.mean(dxhat * xhat, axis=axis, keepdims=True)
    )


_register_once(
    OpDef(
        "layernorm_grad",
        OpKind.NORMALIZATION,
        _binary_same_shape_infer,
        _elementwise_flops(12.0),
        _layernorm_grad_execute,
        2,
    )
)


# ---------------------------------------------------------------------------
# cross-entropy gradient: (dy_scalar, logits, labels) -> dlogits
# ---------------------------------------------------------------------------

def _xent_grad_infer(specs: Sequence[TensorSpec], _attrs: Attrs) -> TensorSpec:
    _check_arity("cross_entropy_grad", specs, 3)
    dy, logits, labels = specs
    if dy.rank != 0:
        raise ValueError("cross_entropy_grad expects a scalar upstream gradient")
    if logits.rank != 2 or labels.rank != 1 or logits.shape[0] != labels.shape[0]:
        raise ValueError("cross_entropy_grad expects logits [N, C] and labels [N]")
    return logits


def _xent_grad_execute(inputs: Sequence[np.ndarray], _attrs: Attrs) -> np.ndarray:
    dy, logits, labels = inputs
    labels = labels.astype(np.int64)
    shifted = logits - np.max(logits, axis=1, keepdims=True)
    probs = np.exp(shifted) / np.sum(np.exp(shifted), axis=1, keepdims=True)
    probs[np.arange(logits.shape[0]), labels] -= 1.0
    return probs * dy


_register_once(
    OpDef(
        "cross_entropy_grad",
        OpKind.CROSS_ENTROPY,
        _xent_grad_infer,
        lambda specs, out, attrs: 6.0 * out.numel,
        _xent_grad_execute,
        3,
    )
)


# ---------------------------------------------------------------------------
# embedding gradient: (dy, ids) -> dtable  [V, H]
# ---------------------------------------------------------------------------

def _embedding_grad_infer(specs: Sequence[TensorSpec], attrs: Attrs) -> TensorSpec:
    _check_arity("embedding_grad", specs, 2)
    dy, ids = specs
    vocab = int(attrs["vocab_size"])
    if dy.rank != ids.rank + 1:
        raise ValueError("embedding_grad expects dy of rank rank(ids)+1")
    return TensorSpec((vocab, dy.shape[-1]), dy.dtype)


def _embedding_grad_execute(inputs: Sequence[np.ndarray], attrs: Attrs) -> np.ndarray:
    dy, ids = inputs
    vocab = int(attrs["vocab_size"])
    hidden = dy.shape[-1]
    out = np.zeros((vocab, hidden), dtype=dy.dtype)
    np.add.at(out, ids.astype(np.int64).reshape(-1), dy.reshape(-1, hidden))
    return out


_register_once(
    OpDef(
        "embedding_grad",
        OpKind.EMBEDDING_GRAD,
        _embedding_grad_infer,
        lambda specs, out, attrs: float(specs[0].numel),
        _embedding_grad_execute,
        2,
    )
)


# ---------------------------------------------------------------------------
# conv2d gradients
# ---------------------------------------------------------------------------

def _conv2d_grad_input_infer(specs: Sequence[TensorSpec], attrs: Attrs) -> TensorSpec:
    _check_arity("conv2d_grad_input", specs, 2)
    dy, _w = specs
    return TensorSpec(tuple(int(d) for d in attrs["input_shape"]), dy.dtype)


def _conv2d_grad_input_execute(inputs: Sequence[np.ndarray], attrs: Attrs) -> np.ndarray:
    dy, w = inputs
    stride = int(attrs.get("stride", 1))
    padding = int(attrs.get("padding", 0))
    x_shape = tuple(int(d) for d in attrs["input_shape"])
    kernel = w.shape[2]
    n = dy.shape[0]
    # dcols = dy (N, O, OH, OW) -> (N, OH*OW, O) @ wmat (O, C*K*K)
    dy2 = np.transpose(dy, (0, 2, 3, 1)).reshape(n, -1, w.shape[0])
    wmat = w.reshape(w.shape[0], -1)
    dcols = np.matmul(dy2, wmat)
    return col2im(dcols, x_shape, kernel, stride, padding)


def _conv2d_grad_weight_infer(specs: Sequence[TensorSpec], attrs: Attrs) -> TensorSpec:
    _check_arity("conv2d_grad_weight", specs, 2)
    dy, _x = specs
    return TensorSpec(tuple(int(d) for d in attrs["weight_shape"]), dy.dtype)


def _conv2d_grad_weight_execute(inputs: Sequence[np.ndarray], attrs: Attrs) -> np.ndarray:
    dy, x = inputs
    stride = int(attrs.get("stride", 1))
    padding = int(attrs.get("padding", 0))
    w_shape = tuple(int(d) for d in attrs["weight_shape"])
    kernel = w_shape[2]
    n = dy.shape[0]
    cols = im2col(x, kernel, stride, padding)  # (N, OH*OW, C*K*K)
    dy2 = np.transpose(dy, (0, 2, 3, 1)).reshape(n, -1, w_shape[0])  # (N, OH*OW, O)
    # dW = sum_n dy2^T @ cols  -> (O, C*K*K)
    dw = np.einsum("npo,npk->ok", dy2, cols)
    return dw.reshape(w_shape)


def _conv_grad_flops(specs: Sequence[TensorSpec], out: TensorSpec, attrs: Attrs) -> float:
    # Same order of magnitude as the forward convolution.
    dy = specs[0]
    if "weight_shape" in attrs:
        w_shape = tuple(int(d) for d in attrs["weight_shape"])
    else:
        w_shape = specs[1].shape
    k = w_shape[1] * w_shape[2] * w_shape[3]
    return 2.0 * dy.numel * k


_register_once(
    OpDef("conv2d_grad_input", OpKind.CONV_GRAD_INPUT, _conv2d_grad_input_infer, _conv_grad_flops, _conv2d_grad_input_execute, 2)
)
_register_once(
    OpDef("conv2d_grad_weight", OpKind.CONV_GRAD_WEIGHT, _conv2d_grad_weight_infer, _conv_grad_flops, _conv2d_grad_weight_execute, 2)
)


# ---------------------------------------------------------------------------
# pooling gradients
# ---------------------------------------------------------------------------

def _pool_grad_infer(specs: Sequence[TensorSpec], attrs: Attrs) -> TensorSpec:
    _check_arity("pool grad", specs, 2)
    _dy, x = specs
    return x


def _maxpool_grad_execute(inputs: Sequence[np.ndarray], attrs: Attrs) -> np.ndarray:
    dy, x = inputs
    kernel = int(attrs.get("kernel", 2))
    stride = int(attrs.get("stride", kernel))
    n, c, h, w = x.shape
    oh, ow = _conv_out_hw(h, w, kernel, stride, 0)
    dx = np.zeros_like(x)
    for i in range(oh):
        for j in range(ow):
            window = x[:, :, i * stride : i * stride + kernel, j * stride : j * stride + kernel]
            flat = window.reshape(n, c, -1)
            arg = np.argmax(flat, axis=2)
            grad = np.zeros_like(flat)
            np.put_along_axis(grad, arg[:, :, None], dy[:, :, i, j][:, :, None], axis=2)
            dx[:, :, i * stride : i * stride + kernel, j * stride : j * stride + kernel] += grad.reshape(window.shape)
    return dx


def _avgpool_grad_execute(inputs: Sequence[np.ndarray], attrs: Attrs) -> np.ndarray:
    dy, x = inputs
    kernel = int(attrs.get("kernel", 2))
    stride = int(attrs.get("stride", kernel))
    n, c, h, w = x.shape
    oh, ow = _conv_out_hw(h, w, kernel, stride, 0)
    dx = np.zeros_like(x)
    scale = 1.0 / (kernel * kernel)
    for i in range(oh):
        for j in range(ow):
            dx[:, :, i * stride : i * stride + kernel, j * stride : j * stride + kernel] += (
                dy[:, :, i, j][:, :, None, None] * scale
            )
    return dx


_register_once(
    OpDef("maxpool2d_grad", OpKind.POOL, _pool_grad_infer, _elementwise_flops(4.0), _maxpool_grad_execute, 2)
)
_register_once(
    OpDef("avgpool2d_grad", OpKind.POOL, _pool_grad_infer, _elementwise_flops(2.0), _avgpool_grad_execute, 2)
)


# ---------------------------------------------------------------------------
# MoE gradients (straight-through routing: gates treated as constants)
# ---------------------------------------------------------------------------

def _moe_dispatch_grad_infer(specs: Sequence[TensorSpec], attrs: Attrs) -> TensorSpec:
    _check_arity("moe_dispatch_grad", specs, 2)
    dy, gates = specs
    if dy.rank != 3 or gates.rank != 2:
        raise ValueError("moe_dispatch_grad expects dy [E, C, H] and gates [N, E]")
    return TensorSpec((gates.shape[0], dy.shape[2]), dy.dtype)


def _moe_dispatch_grad_execute(inputs: Sequence[np.ndarray], attrs: Attrs) -> np.ndarray:
    dy, gates = inputs
    capacity = dy.shape[1]
    route = moe_routing(gates, capacity)
    out = np.zeros((gates.shape[0], dy.shape[2]), dtype=dy.dtype)
    for t in range(gates.shape[0]):
        e, slot = route[t]
        if e >= 0:
            out[t] = dy[e, slot]
    return out


_register_once(
    OpDef(
        "moe_dispatch_grad",
        OpKind.MOE_COMBINE,  # same data movement pattern as combine
        _moe_dispatch_grad_infer,
        lambda specs, out, attrs: float(out.numel),
        _moe_dispatch_grad_execute,
        2,
    )
)


def _moe_combine_grad_infer(specs: Sequence[TensorSpec], attrs: Attrs) -> TensorSpec:
    _check_arity("moe_combine_grad", specs, 2)
    dy, gates = specs
    if dy.rank != 2 or gates.rank != 2 or dy.shape[0] != gates.shape[0]:
        raise ValueError("moe_combine_grad expects dy [N, H] and gates [N, E]")
    capacity = int(attrs["capacity"])
    return TensorSpec((gates.shape[1], capacity, dy.shape[1]), dy.dtype)


def _moe_combine_grad_execute(inputs: Sequence[np.ndarray], attrs: Attrs) -> np.ndarray:
    dy, gates = inputs
    capacity = int(attrs["capacity"])
    route = moe_routing(gates, capacity)
    shifted = gates - np.max(gates, axis=1, keepdims=True)
    probs = np.exp(shifted) / np.sum(np.exp(shifted), axis=1, keepdims=True)
    out = np.zeros((gates.shape[1], capacity, dy.shape[1]), dtype=dy.dtype)
    for t in range(gates.shape[0]):
        e, slot = route[t]
        if e >= 0:
            out[e, slot] = dy[t] * probs[t, e]
    return out


_register_once(
    OpDef(
        "moe_combine_grad",
        OpKind.MOE_DISPATCH,  # same data movement pattern as dispatch
        _moe_combine_grad_infer,
        lambda specs, out, attrs: float(out.numel),
        _moe_combine_grad_execute,
        2,
    )
)
