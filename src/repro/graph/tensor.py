"""Tensor metadata used throughout the IR.

The reproduction does not carry real GPU tensors around; instead every node in
the computation graph produces a :class:`TensorSpec` describing the shape and
dtype of its output.  All cost modelling, sharding-rule generation and the LP
load balancer operate on these specs, while the numpy runtime materialises
concrete arrays that must match them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Sequence, Tuple


class DType(Enum):
    """Element types supported by the IR.

    Only the byte width matters for communication/memory modelling, and only
    float32/int64 are materialised by the numpy runtime.
    """

    FLOAT32 = "float32"
    FLOAT16 = "float16"
    INT64 = "int64"
    INT32 = "int32"
    BOOL = "bool"

    @property
    def itemsize(self) -> int:
        """Size of one element in bytes."""
        return {
            DType.FLOAT32: 4,
            DType.FLOAT16: 2,
            DType.INT64: 8,
            DType.INT32: 4,
            DType.BOOL: 1,
        }[self]

    @property
    def numpy_name(self) -> str:
        """The numpy dtype string used by the runtime."""
        return self.value


Shape = Tuple[int, ...]


def normalize_shape(shape: Iterable[int]) -> Shape:
    """Validate and canonicalise a shape into a tuple of positive ints.

    Raises:
        ValueError: if any dimension is not a positive integer.
    """
    out = []
    for dim in shape:
        if not isinstance(dim, (int,)) or isinstance(dim, bool):
            raise ValueError(f"shape dimensions must be ints, got {dim!r}")
        if dim <= 0:
            raise ValueError(f"shape dimensions must be positive, got {dim}")
        out.append(int(dim))
    return tuple(out)


@dataclass(frozen=True)
class TensorSpec:
    """Static description of a tensor: shape and dtype.

    Attributes:
        shape: tuple of positive dimension sizes; ``()`` denotes a scalar.
        dtype: element type.
    """

    shape: Shape
    dtype: DType = DType.FLOAT32

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", normalize_shape(self.shape))

    # -- derived quantities ------------------------------------------------
    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def numel(self) -> int:
        """Total number of elements."""
        return int(math.prod(self.shape)) if self.shape else 1

    @property
    def size_bytes(self) -> int:
        """Total size in bytes."""
        return self.numel * self.dtype.itemsize

    # -- helpers -----------------------------------------------------------
    def dim(self, axis: int) -> int:
        """Size of dimension ``axis`` (supports negative indexing)."""
        return self.shape[axis]

    def with_dim(self, axis: int, new_size: int) -> TensorSpec:
        """Return a copy with dimension ``axis`` replaced by ``new_size``."""
        if new_size <= 0:
            raise ValueError(f"dimension size must be positive, got {new_size}")
        axis = axis % len(self.shape)
        shape = list(self.shape)
        shape[axis] = new_size
        return TensorSpec(tuple(shape), self.dtype)

    def with_shape(self, shape: Sequence[int]) -> TensorSpec:
        """Return a copy with a different shape (same dtype)."""
        return TensorSpec(tuple(shape), self.dtype)

    def shardable_dims(self) -> Tuple[int, ...]:
        """Dimensions along which this tensor may be sharded.

        A dimension of size 1 cannot be meaningfully sharded.
        """
        return tuple(i for i, d in enumerate(self.shape) if d > 1)

    def shard(self, axis: int, num_shards: int, index: int) -> TensorSpec:
        """Spec of the ``index``-th of ``num_shards`` even shards along ``axis``.

        Uses the standard "larger shards first" remainder distribution so that
        shard sizes differ by at most one.
        """
        size = self.shape[axis]
        base, rem = divmod(size, num_shards)
        local = base + (1 if index < rem else 0)
        if local == 0:
            raise ValueError(
                f"cannot split dimension of size {size} into {num_shards} non-empty shards"
            )
        return self.with_dim(axis, local)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(str(d) for d in self.shape) if self.shape else "scalar"
        return f"{self.dtype.value}[{dims}]"


def scalar(dtype: DType = DType.FLOAT32) -> TensorSpec:
    """Spec of a rank-0 scalar tensor."""
    return TensorSpec((), dtype)


def shard_sizes(total: int, ratios: Sequence[float]) -> Tuple[int, ...]:
    """Split an integer dimension ``total`` into integer shard sizes ~ ``ratios``.

    Implements the rounding procedure of HAP Sec. 5.1: start from the nearest
    integers and repeatedly adjust the shard whose adjustment introduces the
    smallest rounding error until the sizes sum to ``total``.  Shard sizes may
    be zero (a device may receive no work for a segment).

    Args:
        total: the dimension size being sharded.
        ratios: non-negative sharding ratios; they are normalised internally.

    Returns:
        A tuple of non-negative integers summing to ``total``.
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    ratios = list(ratios)
    if not ratios:
        raise ValueError("ratios must be non-empty")
    if any(r < 0 for r in ratios):
        raise ValueError("ratios must be non-negative")
    ssum = sum(ratios)
    if ssum <= 0:
        # Degenerate: fall back to an even split.
        ratios = [1.0] * len(ratios)
        ssum = float(len(ratios))
    targets = [total * r / ssum for r in ratios]
    sizes = [int(round(t)) for t in targets]
    diff = total - sum(sizes)
    # Adjust one element at a time, choosing the shard with the smallest
    # resulting rounding error.
    while diff != 0:
        step = 1 if diff > 0 else -1
        best_idx, best_err = None, None
        for i, (s, t) in enumerate(zip(sizes, targets)):
            if step < 0 and s <= 0:
                continue
            err = abs((s + step) - t)
            if best_err is None or err < best_err:
                best_idx, best_err = i, err
        if best_idx is None:  # pragma: no cover - defensive
            raise RuntimeError("unable to round shard sizes")
        sizes[best_idx] += step
        diff -= step
    return tuple(sizes)


def shard_offsets(sizes: Sequence[int]) -> Tuple[int, ...]:
    """Prefix offsets of consecutive shard sizes (starting at 0)."""
    offsets = [0]
    for s in sizes[:-1]:
        offsets.append(offsets[-1] + s)
    return tuple(offsets)
