"""Name-independent graph canonicalization and repeated-block detection.

Two related capabilities power the planner's reuse layer:

1. **Content fingerprints** (:func:`graph_fingerprint`): a ``ComputationGraph``
   is reduced to a canonical, node-name-free encoding — nodes are ordered by
   an ancestry hash (a Merkle-style *down hash* over op, attributes, output
   spec and the input subtrees), and every edge is written as an index into
   that canonical order.  Two graphs with equal fingerprints are isomorphic,
   and the position-wise pairing of their canonical orders *is* the
   isomorphism, which is what lets a cached plan be stitched onto a renamed
   copy of the graph it was synthesized for (:func:`canonical_rename_map`).
   Ties between ancestor-identical twin nodes are broken by insertion order,
   which can only cause a *missed* match between differently-built isomorphic
   graphs — never a false one (the safe direction for caching).

2. **Repeated-block detection** (:func:`find_repeated_blocks`): repeated
   contiguous runs of structurally identical nodes (transformer layers, their
   backward blocks, per-layer optimizer updates) are located in a topological
   order, and each repetition is validated into an explicit rename map from
   the first occurrence.  The synthesizer replays its per-layer search
   decisions across these occurrences instead of re-deriving them.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .graph import ComputationGraph
from .ops import OpKind


def _canon_value(value: object) -> object:
    """Canonical, deterministically ``repr``-able form of an attribute value.

    Attribute dictionaries may hold nested lists/dicts (shapes, strides);
    dictionaries are sorted by key and all sequences become tuples so the
    encoding has no container-order or container-type ambiguity.
    """
    if isinstance(value, dict):
        return ("dict", tuple((str(k), _canon_value(v)) for k, v in sorted(value.items())))
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(_canon_value(v) for v in value))
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, (int, float, str, bytes)) or value is None:
        return (type(value).__name__, value)
    return ("repr", repr(value))


def _node_content(graph: ComputationGraph, name: str) -> Tuple:
    """Name-free local content of one node: op, attrs, output spec."""
    node = graph[name]
    return (
        node.op,
        _canon_value(node.attrs),
        node.spec.shape,
        node.spec.dtype.value,
    )


def _digest(payload: object) -> str:
    return hashlib.sha256(repr(payload).encode()).hexdigest()


def structural_hashes(graph: ComputationGraph) -> Dict[str, str]:
    """Ancestry (down) hash of every node.

    ``hash(n) = H(content(n), hash(input_1), ..., hash(input_k))``, computed
    in one pass over the graph's topological insertion order.  Equal hashes
    mean the nodes compute identical functions of identically-shaped inputs,
    regardless of what anything is called.
    """
    hashes: Dict[str, str] = {}
    for node in graph:
        payload = (
            _node_content(graph, node.name),
            tuple(hashes[inp] for inp in node.inputs),
        )
        hashes[node.name] = _digest(payload)
    return hashes


def canonical_order(graph: ComputationGraph) -> List[str]:
    """Deterministic name-independent topological order of the graph.

    Kahn's algorithm with a heap keyed by (down hash, insertion index):
    whenever several nodes are simultaneously ready, the one with the
    smallest ancestry hash comes first, so isomorphic graphs built in the
    same way linearise identically even when their insertion orders differ
    on independent branches with distinct content.  The insertion-index
    tie-break only fires for ancestor-identical twins.
    """
    hashes = structural_hashes(graph)
    names = graph.node_names
    position = {name: i for i, name in enumerate(names)}
    indegree = {name: len(graph[name].inputs) for name in names}
    consumers = graph.consumers()
    ready = [(hashes[n], position[n], n) for n in names if indegree[n] == 0]
    heapq.heapify(ready)
    out: List[str] = []
    while ready:
        _, _, name = heapq.heappop(ready)
        out.append(name)
        for consumer in consumers[name]:
            indegree[consumer] -= 1
            if indegree[consumer] == 0:
                heapq.heappush(ready, (hashes[consumer], position[consumer], consumer))
    if len(out) != len(names):  # pragma: no cover - graphs are validated DAGs
        raise ValueError("graph contains a cycle; cannot canonicalize")
    return out


def graph_encoding(graph: ComputationGraph) -> Tuple:
    """Full name-free canonical encoding of the graph.

    Every node appears in canonical order as (op, attrs, shape, dtype,
    canonical input indices); outputs and the loss are canonical indices as
    well.  Equal encodings certify that pairing the two canonical orders
    position-wise is a graph isomorphism.
    """
    order = canonical_order(graph)
    index = {name: i for i, name in enumerate(order)}
    nodes = tuple(
        _node_content(graph, name) + (tuple(index[i] for i in graph[name].inputs),)
        for name in order
    )
    outputs = tuple(index[o] for o in graph.outputs)
    loss = index[graph.loss] if graph.loss is not None else -1
    return (nodes, outputs, loss)


def graph_fingerprint(graph: ComputationGraph) -> str:
    """Content-addressed fingerprint (sha256 of :func:`graph_encoding`)."""
    return _digest(graph_encoding(graph))


def fingerprint_with_order(graph: ComputationGraph) -> Tuple[str, List[str]]:
    """Fingerprint plus the canonical order it was computed over.

    One canonicalization pass serves both cache-key construction and the
    rename map a later cache hit needs (``zip(stored_order, new_order)``).
    """
    order = canonical_order(graph)
    index = {name: i for i, name in enumerate(order)}
    nodes = tuple(
        _node_content(graph, name) + (tuple(index[i] for i in graph[name].inputs),)
        for name in order
    )
    outputs = tuple(index[o] for o in graph.outputs)
    loss = index[graph.loss] if graph.loss is not None else -1
    return _digest((nodes, outputs, loss)), order


def canonical_rename_map(
    source_names: Sequence[str], target_graph: ComputationGraph
) -> Dict[str, str]:
    """Node-name map from a cached graph onto an isomorphic target graph.

    ``source_names`` is the canonical order stored with the cached plan;
    pairing it position-wise with the target's canonical order is a valid
    isomorphism whenever the two graphs' fingerprints match (the caller's
    responsibility — cache keys embed the fingerprint).
    """
    target_order = canonical_order(target_graph)
    if len(source_names) != len(target_order):
        raise ValueError(
            f"cannot remap: {len(source_names)} cached nodes vs "
            f"{len(target_order)} target nodes"
        )
    return dict(zip(source_names, target_order))


# ---------------------------------------------------------------------------
# repeated-block detection
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BlockRun:
    """A maximal run of repeated, structurally identical node blocks.

    Attributes:
        start: position of the first (template) occurrence in the scanned
            topological order.
        length: number of consecutive order positions per occurrence.
        occurrence_starts: start position of every validated occurrence
            (``occurrence_starts[0] == start``).
        maps: per occurrence, the rename map from template references to this
            occurrence's references.  The map covers the block's own nodes,
            their source inputs (parameters/placeholders) and their external
            activation inputs; ``maps[0]`` is the identity.
        refs: every reference the block's rules can touch, in a fixed
            deterministic order (block nodes first, then inputs in first-use
            order) — the shared vocabulary for block-local signatures.
    """

    start: int
    length: int
    occurrence_starts: Tuple[int, ...]
    maps: Tuple[Mapping[str, str], ...]
    refs: Tuple[str, ...]

    @property
    def num_occurrences(self) -> int:
        return len(self.occurrence_starts)


def _local_symbols(graph: ComputationGraph, order: Sequence[str]) -> List[int]:
    """Per-position structural symbol (wiring-free) used to find candidates.

    The symbol covers the node's own content plus, per input, either the
    source node's content (sources are block-local by fusion) or the input's
    spec.  Exact wiring is deliberately left out — backward blocks reference
    forward activations at occurrence-dependent distances — and is checked by
    :func:`_occurrence_map` instead.
    """
    intern: Dict[Tuple, int] = {}
    symbols: List[int] = []
    for name in order:
        node = graph[name]
        inputs = []
        for inp in node.inputs:
            src = graph[inp]
            if src.kind is OpKind.SOURCE:
                inputs.append(("src",) + _node_content(graph, inp))
            else:
                inputs.append(("act", src.spec.shape, src.spec.dtype.value))
        key = _node_content(graph, name) + (tuple(inputs),)
        symbols.append(intern.setdefault(key, len(intern)))
    return symbols


def _occurrence_map(
    graph: ComputationGraph,
    order: Sequence[str],
    template_start: int,
    occ_start: int,
    length: int,
) -> Optional[Dict[str, str]]:
    """Validate one occurrence against the template; build its rename map.

    Block nodes map position-wise; every input pair must then be consistent:
    internal wiring must match exactly, and external/source inputs must map
    injectively with equal content (spec, and op/attrs for sources).  Returns
    ``None`` when no consistent map exists.
    """
    mapping: Dict[str, str] = {}
    occ_nodes = set()
    for j in range(length):
        mapping[order[template_start + j]] = order[occ_start + j]
        occ_nodes.add(order[occ_start + j])
    used = set(occ_nodes)
    for j in range(length):
        u = graph[order[template_start + j]]
        v = graph[order[occ_start + j]]
        if len(u.inputs) != len(v.inputs):
            return None
        for x, y in zip(u.inputs, v.inputs):
            bound = mapping.get(x)
            if bound is not None:
                if bound != y:
                    return None
                continue
            # External (or source) input: must pair with an external input of
            # the occurrence carrying identical content.
            if y in occ_nodes:
                return None
            if x != y and y in used:
                return None  # two template refs cannot share one target
            xn, yn = graph[x], graph[y]
            if xn.spec != yn.spec:
                return None
            x_source = xn.kind is OpKind.SOURCE
            y_source = yn.kind is OpKind.SOURCE
            if x_source != y_source:
                return None
            if x_source and _node_content(graph, x) != _node_content(graph, y):
                return None
            mapping[x] = y
            used.add(y)
    return mapping


def _block_refs(
    graph: ComputationGraph, order: Sequence[str], start: int, length: int
) -> Tuple[str, ...]:
    """All references the block's rules can touch, in deterministic order."""
    refs: List[str] = [order[start + j] for j in range(length)]
    seen = set(refs)
    for j in range(length):
        for inp in graph[order[start + j]].inputs:
            if inp not in seen:
                seen.add(inp)
                refs.append(inp)
    return tuple(refs)


def find_repeated_blocks(
    graph: ComputationGraph,
    order: Optional[Sequence[str]] = None,
    min_length: int = 2,
    min_occurrences: int = 2,
    min_saved: int = 8,
) -> List[BlockRun]:
    """Detect repeated contiguous blocks in a topological order.

    Candidate periods come from the gaps between equal structural symbols;
    for each period, maximal periodic intervals yield candidate occurrence
    windows, which are then validated individually into rename maps.
    Candidate runs are claimed greedily by descending coverage (positions
    their occurrences span), so a whole repeated layer beats the small
    repeated fragments inside it; accepted runs never overlap.

    Args:
        graph: the (training) graph the order belongs to.
        order: topological order to scan; defaults to the graph's non-source
            nodes in insertion order (the synthesizer's emulation order).
        min_length: smallest block length considered.
        min_occurrences: minimum validated occurrences for a run to count.
        min_saved: minimum number of order positions a run saves its consumer
            (``length * (occurrences - 1)``); smaller runs cost more in replay
            bookkeeping than they save and are dropped.

    Returns:
        Non-overlapping :class:`BlockRun`\\ s sorted by start position.
    """
    if order is None:
        order = [n.name for n in graph if n.kind is not OpKind.SOURCE]
    symbols = _local_symbols(graph, order)
    n = len(symbols)
    periods = sorted(
        {
            gap
            for gap in _symbol_gaps(symbols)
            if min_length <= gap <= n // max(min_occurrences, 2)
        }
    )
    # Phase 1: enumerate candidate runs for every period (no claiming yet).
    candidates: List[Tuple[List[int], int]] = []
    for period in periods:
        t = 0
        while t + period < n:
            if symbols[t] != symbols[t + period]:
                t += 1
                continue
            # Maximal periodic interval starting at t.
            end = t
            while end + period < n and symbols[end] == symbols[end + period]:
                end += 1
            count = (end - t) // period + 1
            if count >= min_occurrences:
                candidates.append(([t + k * period for k in range(count)], period))
            t = end + period
    # Phase 2: claim greedily by descending coverage, validating as we go.
    candidates.sort(key=lambda c: (-len(c[0]) * c[1], c[1], c[0][0]))
    claimed = [False] * n
    runs: List[BlockRun] = []
    for starts, period in candidates:
        if period * (len(starts) - 1) < min_saved:
            continue
        run = _validate_run(
            graph, order, claimed, starts, period, min_occurrences, min_saved
        )
        if run is not None:
            runs.append(run)
    runs.sort(key=lambda r: r.start)
    return runs


def _symbol_gaps(symbols: Sequence[int]):
    last: Dict[int, int] = {}
    for i, s in enumerate(symbols):
        if s in last:
            yield i - last[s]
        last[s] = i


def _validate_run(
    graph: ComputationGraph,
    order: Sequence[str],
    claimed: List[bool],
    starts: List[int],
    period: int,
    min_occurrences: int,
    min_saved: int,
) -> Optional[BlockRun]:
    """Validate candidate occurrences, claim their positions, build the run."""
    free = [s for s in starts if not any(claimed[s : s + period])]
    if len(free) < min_occurrences or period * (len(free) - 1) < min_saved:
        return None
    template = free[0]
    maps: List[Mapping[str, str]] = []
    occurrence_starts: List[int] = []
    for s in free:
        if s == template:
            mapping: Optional[Dict[str, str]] = {
                order[template + j]: order[template + j] for j in range(period)
            }
            refs = _block_refs(graph, order, template, period)
            assert mapping is not None
            for ref in refs:
                mapping.setdefault(ref, ref)
        else:
            mapping = _occurrence_map(graph, order, template, s, period)
        if mapping is None:
            continue
        maps.append(mapping)
        occurrence_starts.append(s)
    if (
        len(occurrence_starts) < min_occurrences
        or period * (len(occurrence_starts) - 1) < min_saved
    ):
        return None
    for s in occurrence_starts:
        for j in range(period):
            claimed[s + j] = True
    return BlockRun(
        start=template,
        length=period,
        occurrence_starts=tuple(occurrence_starts),
        maps=tuple(maps),
        refs=_block_refs(graph, order, template, period),
    )
