"""Single-device computation graph.

A :class:`ComputationGraph` is the HAP input: a DAG of :class:`Node` objects
each applying one registered operator to the outputs of earlier nodes.  It is
the reproduction's stand-in for the PyTorch ``fx`` graph used by the paper.

Nodes are stored in insertion order, which is required to be a topological
order (every input of a node must already exist when the node is added); this
mirrors how tracing a PyTorch module produces a linearised program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from .ops import OpDef, OpKind, get_op
from .tensor import TensorSpec


@dataclass
class Node:
    """One instruction of the single-device program.

    Attributes:
        name: unique identifier within the graph.
        op: operator name (must be registered in :mod:`repro.graph.ops`).
        inputs: names of producer nodes.
        attrs: operator attributes (shapes, strides, axes, ...).
        spec: inferred output :class:`TensorSpec`.
    """

    name: str
    op: str
    inputs: Tuple[str, ...]
    attrs: Dict[str, object]
    spec: TensorSpec

    @property
    def op_def(self) -> OpDef:
        """The registered operator definition for this node."""
        return get_op(self.op)

    @property
    def kind(self) -> OpKind:
        """Semantic category of this node's operator."""
        return self.op_def.kind

    def flops(self, input_specs: Sequence[TensorSpec]) -> float:
        """Estimated floating-point operations of this node."""
        return self.op_def.flops(input_specs, self.spec, self.attrs)


class GraphError(ValueError):
    """Raised when a graph is constructed or used inconsistently."""


class ComputationGraph:
    """A single-device tensor program represented as a DAG.

    Attributes:
        name: human-readable model name.
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._order: List[str] = []
        self._outputs: List[str] = []
        self._loss: Optional[str] = None

    # -- construction --------------------------------------------------------
    def add_node(
        self,
        name: str,
        op: str,
        inputs: Sequence[str] = (),
        attrs: Optional[Mapping[str, object]] = None,
    ) -> Node:
        """Add a node and run shape inference.

        Args:
            name: unique node name.
            op: registered operator name.
            inputs: names of already-added producer nodes.
            attrs: operator attributes.

        Returns:
            The created :class:`Node`.

        Raises:
            GraphError: on duplicate names, unknown inputs, or shape errors.
        """
        if name in self._nodes:
            raise GraphError(f"duplicate node name {name!r}")
        op_def = get_op(op)
        input_specs = []
        for inp in inputs:
            if inp not in self._nodes:
                raise GraphError(f"node {name!r} references unknown input {inp!r}")
            input_specs.append(self._nodes[inp].spec)
        if op_def.num_inputs is not None and len(inputs) != op_def.num_inputs:
            raise GraphError(
                f"operator {op!r} expects {op_def.num_inputs} inputs, node {name!r} has {len(inputs)}"
            )
        attrs = dict(attrs or {})
        try:
            spec = op_def.infer(input_specs, attrs)
        except ValueError as exc:
            raise GraphError(f"shape inference failed for node {name!r} ({op}): {exc}") from exc
        node = Node(name=name, op=op, inputs=tuple(inputs), attrs=attrs, spec=spec)
        self._nodes[name] = node
        self._order.append(name)
        return node

    def mark_output(self, name: str) -> None:
        """Mark a node as a program output (e.g. an updated parameter)."""
        if name not in self._nodes:
            raise GraphError(f"cannot mark unknown node {name!r} as output")
        if name not in self._outputs:
            self._outputs.append(name)

    def mark_loss(self, name: str) -> None:
        """Mark the scalar training-loss node; it is also an output."""
        node = self[name]
        if node.spec.rank != 0:
            raise GraphError(f"loss node {name!r} must be a scalar, got {node.spec}")
        self._loss = name
        self.mark_output(name)

    # -- access ---------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __getitem__(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise GraphError(f"unknown node {name!r}") from None

    def __iter__(self) -> Iterator[Node]:
        for name in self._order:
            yield self._nodes[name]

    def __len__(self) -> int:
        return len(self._order)

    @property
    def nodes(self) -> List[Node]:
        """Nodes in topological (insertion) order."""
        return [self._nodes[n] for n in self._order]

    @property
    def node_names(self) -> List[str]:
        """Node names in topological order."""
        return list(self._order)

    @property
    def outputs(self) -> List[str]:
        """Names of the program's output nodes."""
        return list(self._outputs)

    @property
    def loss(self) -> Optional[str]:
        """Name of the scalar loss node, if marked."""
        return self._loss

    def input_specs(self, node: Node) -> List[TensorSpec]:
        """Specs of a node's inputs, in order."""
        return [self._nodes[i].spec for i in node.inputs]

    # -- queries --------------------------------------------------------------
    def placeholders(self) -> List[Node]:
        """All placeholder (model/data input) nodes."""
        return [n for n in self if n.op == "placeholder"]

    def parameters(self) -> List[Node]:
        """All trainable parameter nodes."""
        return [n for n in self if n.op == "parameter"]

    def consumers(self) -> Dict[str, List[str]]:
        """Map from node name to the names of nodes that consume it."""
        out: Dict[str, List[str]] = {name: [] for name in self._order}
        for node in self:
            for inp in node.inputs:
                out[inp].append(node.name)
        return out

    def node_flops(self, name: str) -> float:
        """Flop estimate of a single node."""
        node = self[name]
        return node.flops(self.input_specs(node))

    def total_flops(self) -> float:
        """Total flops of one execution of the graph."""
        return sum(self.node_flops(n) for n in self._order)

    def parameter_count(self) -> int:
        """Total number of trainable parameter elements."""
        return sum(p.spec.numel for p in self.parameters())

    def parameter_bytes(self) -> int:
        """Total size of trainable parameters in bytes."""
        return sum(p.spec.size_bytes for p in self.parameters())

    def activation_bytes(self) -> int:
        """Total size of all non-source node outputs in bytes (peak proxy)."""
        return sum(n.spec.size_bytes for n in self if n.kind is not OpKind.SOURCE)

    def prune_dead(self, extra_roots: Iterable[str] = ()) -> List[str]:
        """Remove non-source nodes whose results nothing can observe.

        A node is dead when it is not an output, not the loss, not one of
        ``extra_roots``, and no (transitively live) node consumes it.  Source
        nodes are kept: an unused placeholder or parameter is a binding, not
        compute, and other layers account for them (e.g. ``skipped_parameters``
        in autodiff).  Returns the removed names, in removal order.
        """
        roots = set(self._outputs) | set(extra_roots)
        if self._loss is not None:
            roots.add(self._loss)
        removed: List[str] = []
        while True:
            consumers = self.consumers()
            dead = [
                node.name
                for node in self
                if node.name not in roots
                and not consumers[node.name]
                and node.kind is not OpKind.SOURCE
            ]
            if not dead:
                return removed
            for name in dead:
                del self._nodes[name]
                self._order.remove(name)
                removed.append(name)

    def validate(self) -> None:
        """Check structural invariants; raises :class:`GraphError` on failure."""
        seen = set()
        for node in self:
            for inp in node.inputs:
                if inp not in seen:
                    raise GraphError(
                        f"node {node.name!r} uses input {inp!r} before it is defined"
                    )
            seen.add(node.name)
        for out in self._outputs:
            if out not in self._nodes:
                raise GraphError(f"output {out!r} is not a node")
        if self._loss is not None and self._loss not in self._nodes:
            raise GraphError(f"loss {self._loss!r} is not a node")

    def subgraph_nodes(self, names: Iterable[str]) -> List[Node]:
        """Nodes with the given names, in topological order."""
        wanted = set(names)
        return [n for n in self if n.name in wanted]

    def summary(self) -> str:
        """Human-readable multi-line description of the graph."""
        lines = [
            f"ComputationGraph {self.name!r}: {len(self)} nodes, "
            f"{self.parameter_count():,} parameters, {self.total_flops():.3e} flops"
        ]
        for node in self:
            ins = ", ".join(node.inputs)
            lines.append(f"  {node.name} = {node.op}({ins}) -> {node.spec}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ComputationGraph(name={self.name!r}, nodes={len(self)}, "
            f"outputs={len(self._outputs)})"
        )
