"""Convenience builder for single-device computation graphs.

The :class:`GraphBuilder` offers a small, PyTorch-module-like surface for the
model zoo: ``linear``, ``layernorm``, ``attention`` blocks and so on are
expanded into primitive registry operators with automatically generated node
names.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

from .graph import ComputationGraph, Node
from .ops import OpKind
from .tensor import DType, TensorSpec


class GraphBuilder:
    """Incrementally constructs a :class:`ComputationGraph`.

    All helper methods return the *name* of the node they create, so results
    can be threaded directly into further calls.
    """

    def __init__(self, name: str = "model") -> None:
        self.graph = ComputationGraph(name)
        self._counters: Dict[str, int] = {}

    # -- naming ---------------------------------------------------------------
    def _fresh(self, prefix: str) -> str:
        idx = self._counters.get(prefix, 0)
        self._counters[prefix] = idx + 1
        return f"{prefix}_{idx}"

    def _add(self, prefix: str, op: str, inputs: Sequence[str] = (), **attrs) -> str:
        name = self._fresh(prefix)
        self.graph.add_node(name, op, inputs, attrs)
        return name

    # -- sources ---------------------------------------------------------------
    def placeholder(self, shape: Sequence[int], dtype: DType = DType.FLOAT32, name: Optional[str] = None) -> str:
        """Model input (data) tensor."""
        node_name = name or self._fresh("input")
        self.graph.add_node(node_name, "placeholder", (), {"shape": tuple(shape), "dtype": dtype})
        return node_name

    def parameter(self, shape: Sequence[int], name: Optional[str] = None) -> str:
        """Trainable parameter tensor."""
        node_name = name or self._fresh("param")
        self.graph.add_node(node_name, "parameter", (), {"shape": tuple(shape)})
        return node_name

    # -- primitive wrappers -----------------------------------------------------
    def matmul(self, a: str, b: str) -> str:
        return self._add("matmul", "matmul", (a, b))

    def add(self, a: str, b: str) -> str:
        return self._add("add", "add", (a, b))

    def mul(self, a: str, b: str) -> str:
        return self._add("mul", "mul", (a, b))

    def bias_add(self, x: str, bias: str) -> str:
        return self._add("bias", "bias_add", (x, bias))

    def relu(self, x: str) -> str:
        return self._add("relu", "relu", (x,))

    def gelu(self, x: str) -> str:
        return self._add("gelu", "gelu", (x,))

    def dropout(self, x: str) -> str:
        return self._add("dropout", "dropout", (x,))

    def scale(self, x: str, factor: float) -> str:
        return self._add("scale", "scale", (x,), factor=factor)

    def softmax(self, x: str, axis: int = -1) -> str:
        return self._add("softmax", "softmax", (x,), axis=axis)

    def layernorm(self, x: str, axis: int = -1) -> str:
        return self._add("layernorm", "layernorm", (x,), axis=axis)

    def reshape(self, x: str, shape: Sequence[int]) -> str:
        return self._add("reshape", "reshape", (x,), shape=tuple(shape))

    def transpose(self, x: str, perm: Sequence[int]) -> str:
        return self._add("transpose", "transpose", (x,), perm=tuple(perm))

    def flatten(self, x: str) -> str:
        return self._add("flatten", "flatten", (x,))

    def reduce_sum(self, x: str) -> str:
        return self._add("sum", "reduce_sum", (x,))

    def reduce_mean(self, x: str) -> str:
        return self._add("mean", "reduce_mean", (x,))

    def embedding(self, ids: str, table: str) -> str:
        return self._add("embed", "embedding", (ids, table))

    def conv2d(self, x: str, weight: str, stride: int = 1, padding: int = 0) -> str:
        return self._add("conv", "conv2d", (x, weight), stride=stride, padding=padding)

    def maxpool2d(self, x: str, kernel: int = 2, stride: Optional[int] = None) -> str:
        return self._add("maxpool", "maxpool2d", (x,), kernel=kernel, stride=stride or kernel)

    def avgpool2d(self, x: str, kernel: int = 2, stride: Optional[int] = None) -> str:
        return self._add("avgpool", "avgpool2d", (x,), kernel=kernel, stride=stride or kernel)

    def cross_entropy(self, logits: str, labels: str) -> str:
        return self._add("xent", "cross_entropy", (logits, labels))

    def moe_dispatch(self, tokens: str, gates: str, capacity_factor: float = 1.25) -> str:
        return self._add("dispatch", "moe_dispatch", (tokens, gates), capacity_factor=capacity_factor)

    def moe_combine(self, expert_out: str, gates: str, capacity_factor: float = 1.25) -> str:
        return self._add(
            "combine", "moe_combine", (expert_out, gates), capacity_factor=capacity_factor
        )

    # -- composite layers --------------------------------------------------------
    def spec(self, name: str) -> TensorSpec:
        """Output spec of an existing node."""
        return self.graph[name].spec

    def linear(self, x: str, out_features: int, bias: bool = True, prefix: str = "linear") -> str:
        """Fully-connected layer ``y = x @ W (+ b)`` along the last dimension.

        Inputs of rank 3 ``[B, S, H]`` are multiplied by a ``[H, F]`` weight.
        """
        in_features = self.spec(x).shape[-1]
        weight = self.parameter((in_features, out_features), name=self._fresh(f"{prefix}_w"))
        out = self.matmul(x, weight)
        if bias:
            b = self.parameter((out_features,), name=self._fresh(f"{prefix}_b"))
            out = self.bias_add(out, b)
        return out

    def mlp(self, x: str, hidden: int, out_features: Optional[int] = None, activation: str = "gelu") -> str:
        """Two-layer feed-forward block used by Transformer models."""
        out_features = out_features or self.spec(x).shape[-1]
        h = self.linear(x, hidden, prefix="ffn_in")
        h = self._add(activation, activation, (h,))
        return self.linear(h, out_features, prefix="ffn_out")

    def self_attention(self, x: str, num_heads: int, prefix: str = "attn") -> str:
        """Multi-head self-attention over a ``[B, S, H]`` input.

        Heads are folded into the batch dimension via reshape/transpose so the
        core computation is expressed with plain batched matmuls — the same
        decomposition Megatron-style SPMD sharding operates on.
        """
        b, s, h = self.spec(x).shape
        if h % num_heads:
            raise ValueError(f"hidden size {h} not divisible by {num_heads} heads")
        head_dim = h // num_heads

        q = self.linear(x, h, prefix=f"{prefix}_q")
        k = self.linear(x, h, prefix=f"{prefix}_k")
        v = self.linear(x, h, prefix=f"{prefix}_v")

        def split_heads(t: str) -> str:
            t = self.reshape(t, (b, s, num_heads, head_dim))
            t = self.transpose(t, (0, 2, 1, 3))
            return self.reshape(t, (b * num_heads, s, head_dim))

        qh, kh, vh = split_heads(q), split_heads(k), split_heads(v)
        kt = self.transpose(kh, (0, 2, 1))
        scores = self.matmul(qh, kt)
        scores = self.scale(scores, 1.0 / math.sqrt(head_dim))
        probs = self.softmax(scores, axis=-1)
        ctx = self.matmul(probs, vh)
        ctx = self.reshape(ctx, (b, num_heads, s, head_dim))
        ctx = self.transpose(ctx, (0, 2, 1, 3))
        ctx = self.reshape(ctx, (b, s, h))
        return self.linear(ctx, h, prefix=f"{prefix}_proj")

    def transformer_layer(self, x: str, num_heads: int, ffn_hidden: int, prefix: str = "layer") -> str:
        """Pre-norm Transformer encoder layer (attention + MLP, residuals)."""
        normed = self.layernorm(x)
        attn = self.self_attention(normed, num_heads, prefix=f"{prefix}_attn")
        x = self.add(x, attn)
        normed = self.layernorm(x)
        ffn = self.mlp(normed, ffn_hidden)
        return self.add(x, ffn)

    def moe_layer(
        self,
        x: str,
        num_experts: int,
        ffn_hidden: int,
        capacity_factor: float = 1.25,
        prefix: str = "moe",
    ) -> str:
        """GShard-style MoE feed-forward layer over a ``[B, S, H]`` input.

        Tokens are flattened to ``[B*S, H]``, routed top-1 to experts whose
        weights are stored as ``[E, H, F]`` / ``[E, F, H]`` grouped matrices,
        and combined back.
        """
        b, s, h = self.spec(x).shape
        tokens = self.reshape(x, (b * s, h))
        gate_w = self.parameter((h, num_experts), name=self._fresh(f"{prefix}_gate_w"))
        gates = self.matmul(tokens, gate_w)
        dispatched = self.moe_dispatch(tokens, gates, capacity_factor=capacity_factor)
        w_in = self.parameter((num_experts, h, ffn_hidden), name=self._fresh(f"{prefix}_w_in"))
        w_out = self.parameter((num_experts, ffn_hidden, h), name=self._fresh(f"{prefix}_w_out"))
        hidden = self.matmul(dispatched, w_in)
        hidden = self._add("gelu", "gelu", (hidden,))
        expert_out = self.matmul(hidden, w_out)
        combined = self.moe_combine(expert_out, gates, capacity_factor=capacity_factor)
        out = self.reshape(combined, (b, s, h))
        return self.add(x, out)

    # -- outputs ---------------------------------------------------------------
    def output(self, name: str) -> None:
        """Mark a node as a graph output."""
        self.graph.mark_output(name)

    def loss(self, name: str) -> None:
        """Mark the scalar loss node."""
        self.graph.mark_loss(name)

    def build(self) -> ComputationGraph:
        """Validate and return the constructed graph."""
        self.graph.validate()
        return self.graph
