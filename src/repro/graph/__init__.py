"""Single-device tensor-program IR: specs, operators, graphs and analyses."""

from .analysis import (
    GraphStats,
    PipelineCut,
    compute_nodes,
    consumers_map,
    cut_bytes,
    cut_transfer_bytes,
    interleaved_pipeline_cut,
    last_use,
    node_flops_map,
    pipeline_cut,
    segment_flops,
    segment_graph,
)
from .builder import GraphBuilder
from .canonical import (
    BlockRun,
    canonical_order,
    canonical_rename_map,
    find_repeated_blocks,
    fingerprint_with_order,
    graph_fingerprint,
    structural_hashes,
)
from .graph import ComputationGraph, GraphError, Node
from .ops import OpDef, OpKind, get_op, register_op, registered_ops
from .tensor import DType, TensorSpec, scalar, shard_offsets, shard_sizes

__all__ = [
    "DType",
    "TensorSpec",
    "scalar",
    "shard_sizes",
    "shard_offsets",
    "OpDef",
    "OpKind",
    "get_op",
    "register_op",
    "registered_ops",
    "ComputationGraph",
    "GraphError",
    "Node",
    "GraphBuilder",
    "GraphStats",
    "PipelineCut",
    "compute_nodes",
    "consumers_map",
    "cut_bytes",
    "cut_transfer_bytes",
    "interleaved_pipeline_cut",
    "last_use",
    "node_flops_map",
    "pipeline_cut",
    "segment_flops",
    "segment_graph",
    "BlockRun",
    "canonical_order",
    "canonical_rename_map",
    "find_repeated_blocks",
    "fingerprint_with_order",
    "graph_fingerprint",
    "structural_hashes",
]
