"""Single-device tensor-program IR: specs, operators, graphs and analyses."""

from .tensor import DType, TensorSpec, scalar, shard_offsets, shard_sizes
from .ops import OpDef, OpKind, get_op, register_op, registered_ops
from .graph import ComputationGraph, GraphError, Node
from .builder import GraphBuilder
from .analysis import (
    GraphStats,
    compute_nodes,
    consumers_map,
    cut_bytes,
    last_use,
    node_flops_map,
    segment_flops,
    segment_graph,
)

__all__ = [
    "DType",
    "TensorSpec",
    "scalar",
    "shard_sizes",
    "shard_offsets",
    "OpDef",
    "OpKind",
    "get_op",
    "register_op",
    "registered_ops",
    "ComputationGraph",
    "GraphError",
    "Node",
    "GraphBuilder",
    "GraphStats",
    "compute_nodes",
    "consumers_map",
    "cut_bytes",
    "last_use",
    "node_flops_map",
    "segment_flops",
    "segment_graph",
]
