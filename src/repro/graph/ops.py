"""Operator registry of the single-device tensor IR.

Every operator used by the model zoo is described by an :class:`OpDef` that
bundles:

* shape inference (``infer``),
* a floating-point-operation estimate (``flops``) used by the cost model,
* a numpy reference implementation (``execute``) used by the runtime, and
* an :class:`OpKind` category consumed by the HAP rule generator
  (:mod:`repro.core.rules`) to derive sharding semantics.

The operator set intentionally mirrors the subset of PyTorch ops exercised by
the paper's four benchmark models (VGG19, ViT, BERT-Base, BERT-MoE): dense and
batched matmuls, elementwise math, softmax/layer-norm, embeddings, 2-D
convolutions and pooling, cross-entropy, and the Mixture-of-Experts dispatch
and combine primitives, plus an ``sgd_update`` terminal that represents the
optimizer step applied to each parameter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from .tensor import DType, TensorSpec


class OpKind(Enum):
    """Semantic category of an operator, used for sharding-rule generation."""

    SOURCE = "source"            # placeholder / parameter / constant
    ELEMENTWISE = "elementwise"  # shape-preserving map (unary or binary)
    BROADCAST_BIAS = "bias"      # add a vector along the last dimension
    MATMUL = "matmul"            # dense or batched matrix multiplication
    REDUCTION = "reduction"      # full reduction to a scalar
    NORMALIZATION = "norm"       # softmax / layernorm along one axis
    RESHAPE = "reshape"          # metadata-only shape change
    TRANSPOSE = "transpose"      # permutation of dimensions
    EMBEDDING = "embedding"      # table lookup
    CONV = "conv"                # 2-D convolution
    POOL = "pool"                # 2-D pooling
    FLATTEN = "flatten"          # collapse all but the batch dimension
    CROSS_ENTROPY = "xent"       # classification loss
    MOE_DISPATCH = "moe_dispatch"
    MOE_COMBINE = "moe_combine"
    OPTIMIZER = "optimizer"      # sgd_update terminal
    # Backward-pass specific kinds (see repro.graph.grad_ops).
    BROADCAST = "broadcast"          # scalar -> full tensor (grad of reduce_sum)
    SUM_LEADING = "sum_leading"      # reduce all leading dims (grad of bias_add)
    EMBEDDING_GRAD = "embedding_grad"
    CONV_GRAD_INPUT = "conv_grad_input"
    CONV_GRAD_WEIGHT = "conv_grad_weight"


Attrs = Mapping[str, object]


@dataclass
class OpDef:
    """Definition of one operator type.

    Attributes:
        name: unique operator name.
        kind: semantic category.
        infer: ``(input_specs, attrs) -> TensorSpec`` shape inference.
        flops: ``(input_specs, output_spec, attrs) -> float`` flop estimate.
        execute: ``(inputs, attrs) -> np.ndarray`` reference implementation.
        num_inputs: expected arity (``None`` for variadic).
    """

    name: str
    kind: OpKind
    infer: Callable[[Sequence[TensorSpec], Attrs], TensorSpec]
    flops: Callable[[Sequence[TensorSpec], TensorSpec, Attrs], float]
    execute: Callable[[Sequence[np.ndarray], Attrs], np.ndarray]
    num_inputs: Optional[int] = None


_REGISTRY: Dict[str, OpDef] = {}


def register_op(op: OpDef) -> OpDef:
    """Add an operator to the global registry (name must be unique)."""
    if op.name in _REGISTRY:
        raise ValueError(f"operator {op.name!r} is already registered")
    _REGISTRY[op.name] = op
    return op


def get_op(name: str) -> OpDef:
    """Look up an operator definition by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown operator {name!r}") from None


def registered_ops() -> List[str]:
    """Names of all registered operators (sorted)."""
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _same_dtype(specs: Sequence[TensorSpec]) -> DType:
    return specs[0].dtype if specs else DType.FLOAT32


def _check_arity(name: str, specs: Sequence[TensorSpec], expected: int) -> None:
    if len(specs) != expected:
        raise ValueError(f"{name} expects {expected} inputs, got {len(specs)}")


def _zero_flops(_specs, _out, _attrs) -> float:
    return 0.0


def _elementwise_flops(factor: float) -> Callable:
    def fn(_specs, out: TensorSpec, _attrs) -> float:
        return factor * out.numel

    return fn


# ---------------------------------------------------------------------------
# source ops
# ---------------------------------------------------------------------------

def _source_infer(specs: Sequence[TensorSpec], attrs: Attrs) -> TensorSpec:
    if specs:
        raise ValueError("source operators take no inputs")
    shape = attrs["shape"]
    dtype = attrs.get("dtype", DType.FLOAT32)
    if isinstance(dtype, str):
        dtype = DType(dtype)
    return TensorSpec(tuple(shape), dtype)


def _source_execute(_inputs: Sequence[np.ndarray], attrs: Attrs) -> np.ndarray:
    raise RuntimeError(
        "source operators are bound to external data by the runtime; "
        "they cannot be executed directly"
    )


register_op(OpDef("placeholder", OpKind.SOURCE, _source_infer, _zero_flops, _source_execute, 0))
register_op(OpDef("parameter", OpKind.SOURCE, _source_infer, _zero_flops, _source_execute, 0))
register_op(OpDef("constant", OpKind.SOURCE, _source_infer, _zero_flops, _source_execute, 0))


# ---------------------------------------------------------------------------
# elementwise ops
# ---------------------------------------------------------------------------

def _unary_infer(specs: Sequence[TensorSpec], _attrs: Attrs) -> TensorSpec:
    _check_arity("unary op", specs, 1)
    return specs[0]


def _binary_infer(specs: Sequence[TensorSpec], _attrs: Attrs) -> TensorSpec:
    _check_arity("binary op", specs, 2)
    if specs[0].shape != specs[1].shape:
        raise ValueError(
            f"elementwise binary op requires equal shapes, got {specs[0].shape} vs {specs[1].shape}"
        )
    return TensorSpec(specs[0].shape, _same_dtype(specs))


def _register_unary(name: str, fn: Callable[[np.ndarray], np.ndarray], cost: float = 1.0) -> None:
    register_op(
        OpDef(
            name,
            OpKind.ELEMENTWISE,
            _unary_infer,
            _elementwise_flops(cost),
            lambda inputs, attrs, _fn=fn: _fn(inputs[0]),
            1,
        )
    )


def _register_binary(name: str, fn: Callable[[np.ndarray, np.ndarray], np.ndarray]) -> None:
    register_op(
        OpDef(
            name,
            OpKind.ELEMENTWISE,
            _binary_infer,
            _elementwise_flops(1.0),
            lambda inputs, attrs, _fn=fn: _fn(inputs[0], inputs[1]),
            2,
        )
    )


def _gelu(x: np.ndarray) -> np.ndarray:
    return 0.5 * x * (1.0 + np.tanh(math.sqrt(2.0 / math.pi) * (x + 0.044715 * x ** 3)))


_register_unary("identity", lambda x: x, cost=0.0)
_register_unary("relu", lambda x: np.maximum(x, 0.0))
_register_unary("gelu", _gelu, cost=8.0)
_register_unary("sigmoid", lambda x: 1.0 / (1.0 + np.exp(-x)), cost=4.0)
_register_unary("tanh", np.tanh, cost=4.0)
_register_unary("neg", lambda x: -x)
_register_unary("square", lambda x: x * x)
_register_unary("dropout", lambda x: x, cost=1.0)  # modelled as identity (inference-mode cost)

_register_binary("add", lambda a, b: a + b)
_register_binary("sub", lambda a, b: a - b)
_register_binary("mul", lambda a, b: a * b)
_register_binary("div", lambda a, b: a / b)
_register_binary("maximum", np.maximum)


def _scale_execute(inputs: Sequence[np.ndarray], attrs: Attrs) -> np.ndarray:
    return inputs[0] * float(attrs.get("factor", 1.0))


register_op(
    OpDef("scale", OpKind.ELEMENTWISE, _unary_infer, _elementwise_flops(1.0), _scale_execute, 1)
)


# ---------------------------------------------------------------------------
# bias add (broadcast along the last dimension)
# ---------------------------------------------------------------------------

def _bias_infer(specs: Sequence[TensorSpec], _attrs: Attrs) -> TensorSpec:
    _check_arity("bias_add", specs, 2)
    data, bias = specs
    if bias.rank != 1 or bias.shape[0] != data.shape[-1]:
        raise ValueError(
            f"bias_add expects bias of shape ({data.shape[-1]},), got {bias.shape}"
        )
    return data


register_op(
    OpDef(
        "bias_add",
        OpKind.BROADCAST_BIAS,
        _bias_infer,
        _elementwise_flops(1.0),
        lambda inputs, attrs: inputs[0] + inputs[1],
        2,
    )
)


# ---------------------------------------------------------------------------
# matmul (2-D and batched 3-D)
# ---------------------------------------------------------------------------

def _matmul_infer(specs: Sequence[TensorSpec], _attrs: Attrs) -> TensorSpec:
    _check_arity("matmul", specs, 2)
    a, b = specs
    if a.rank < 2 or b.rank < 2:
        raise ValueError("matmul requires rank >= 2 inputs")
    if a.shape[-1] != b.shape[-2]:
        raise ValueError(
            f"matmul contraction mismatch: {a.shape} x {b.shape}"
        )
    if a.rank == 2 and b.rank == 2:
        out_shape = (a.shape[0], b.shape[1])
    elif a.rank == 3 and b.rank == 3:
        if a.shape[0] != b.shape[0]:
            raise ValueError(f"batched matmul batch mismatch: {a.shape} x {b.shape}")
        out_shape = (a.shape[0], a.shape[1], b.shape[2])
    elif a.rank == 3 and b.rank == 2:
        out_shape = (a.shape[0], a.shape[1], b.shape[1])
    else:
        raise ValueError(f"unsupported matmul ranks: {a.rank} and {b.rank}")
    return TensorSpec(out_shape, _same_dtype(specs))


def _matmul_flops(specs: Sequence[TensorSpec], out: TensorSpec, _attrs: Attrs) -> float:
    a, b = specs
    k = a.shape[-1]
    return 2.0 * out.numel * k


def _matmul_execute(inputs: Sequence[np.ndarray], _attrs: Attrs) -> np.ndarray:
    return np.matmul(inputs[0], inputs[1])


register_op(OpDef("matmul", OpKind.MATMUL, _matmul_infer, _matmul_flops, _matmul_execute, 2))


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------

def _reduce_infer(specs: Sequence[TensorSpec], _attrs: Attrs) -> TensorSpec:
    _check_arity("reduction", specs, 1)
    return TensorSpec((), specs[0].dtype)


def _reduce_flops(specs: Sequence[TensorSpec], _out: TensorSpec, _attrs: Attrs) -> float:
    return float(specs[0].numel)


register_op(
    OpDef(
        "reduce_sum",
        OpKind.REDUCTION,
        _reduce_infer,
        _reduce_flops,
        lambda inputs, attrs: np.asarray(np.sum(inputs[0])),
        1,
    )
)
register_op(
    OpDef(
        "reduce_mean",
        OpKind.REDUCTION,
        _reduce_infer,
        _reduce_flops,
        lambda inputs, attrs: np.asarray(np.mean(inputs[0])),
        1,
    )
)


# ---------------------------------------------------------------------------
# normalisation ops (softmax / layer-norm over one axis)
# ---------------------------------------------------------------------------

def _norm_infer(specs: Sequence[TensorSpec], _attrs: Attrs) -> TensorSpec:
    _check_arity("normalisation", specs, 1)
    return specs[0]


def _softmax_execute(inputs: Sequence[np.ndarray], attrs: Attrs) -> np.ndarray:
    axis = int(attrs.get("axis", -1))
    x = inputs[0]
    x = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(x)
    return e / np.sum(e, axis=axis, keepdims=True)


def _layernorm_execute(inputs: Sequence[np.ndarray], attrs: Attrs) -> np.ndarray:
    axis = int(attrs.get("axis", -1))
    eps = float(attrs.get("eps", 1e-5))
    x = inputs[0]
    mean = np.mean(x, axis=axis, keepdims=True)
    var = np.var(x, axis=axis, keepdims=True)
    return (x - mean) / np.sqrt(var + eps)


register_op(
    OpDef("softmax", OpKind.NORMALIZATION, _norm_infer, _elementwise_flops(5.0), _softmax_execute, 1)
)
register_op(
    OpDef(
        "layernorm", OpKind.NORMALIZATION, _norm_infer, _elementwise_flops(8.0), _layernorm_execute, 1
    )
)


# ---------------------------------------------------------------------------
# reshape / transpose / flatten
# ---------------------------------------------------------------------------

def _reshape_infer(specs: Sequence[TensorSpec], attrs: Attrs) -> TensorSpec:
    _check_arity("reshape", specs, 1)
    new_shape = tuple(int(d) for d in attrs["shape"])
    if math.prod(new_shape) != specs[0].numel:
        raise ValueError(
            f"reshape element count mismatch: {specs[0].shape} -> {new_shape}"
        )
    return TensorSpec(new_shape, specs[0].dtype)


register_op(
    OpDef(
        "reshape",
        OpKind.RESHAPE,
        _reshape_infer,
        _zero_flops,
        lambda inputs, attrs: np.reshape(inputs[0], tuple(int(d) for d in attrs["shape"])),
        1,
    )
)


def _transpose_infer(specs: Sequence[TensorSpec], attrs: Attrs) -> TensorSpec:
    _check_arity("transpose", specs, 1)
    perm = tuple(int(p) for p in attrs["perm"])
    if sorted(perm) != list(range(specs[0].rank)):
        raise ValueError(f"invalid permutation {perm} for rank {specs[0].rank}")
    return TensorSpec(tuple(specs[0].shape[p] for p in perm), specs[0].dtype)


register_op(
    OpDef(
        "transpose",
        OpKind.TRANSPOSE,
        _transpose_infer,
        _zero_flops,
        lambda inputs, attrs: np.transpose(inputs[0], tuple(int(p) for p in attrs["perm"])),
        1,
    )
)


def _flatten_infer(specs: Sequence[TensorSpec], _attrs: Attrs) -> TensorSpec:
    _check_arity("flatten", specs, 1)
    spec = specs[0]
    if spec.rank < 2:
        raise ValueError("flatten requires rank >= 2")
    rest = math.prod(spec.shape[1:])
    return TensorSpec((spec.shape[0], rest), spec.dtype)


register_op(
    OpDef(
        "flatten",
        OpKind.FLATTEN,
        _flatten_infer,
        _zero_flops,
        lambda inputs, attrs: np.reshape(inputs[0], (inputs[0].shape[0], -1)),
        1,
    )
)


# ---------------------------------------------------------------------------
# embedding lookup
# ---------------------------------------------------------------------------

def _embedding_infer(specs: Sequence[TensorSpec], _attrs: Attrs) -> TensorSpec:
    _check_arity("embedding", specs, 2)
    ids, table = specs
    if table.rank != 2:
        raise ValueError("embedding table must be rank 2")
    return TensorSpec(ids.shape + (table.shape[1],), table.dtype)


def _embedding_flops(specs: Sequence[TensorSpec], out: TensorSpec, _attrs: Attrs) -> float:
    return float(out.numel)


register_op(
    OpDef(
        "embedding",
        OpKind.EMBEDDING,
        _embedding_infer,
        _embedding_flops,
        lambda inputs, attrs: inputs[1][inputs[0].astype(np.int64)],
        2,
    )
)


# ---------------------------------------------------------------------------
# conv2d / pooling
# ---------------------------------------------------------------------------

def _conv_out_hw(h: int, w: int, kernel: int, stride: int, padding: int) -> tuple:
    oh = (h + 2 * padding - kernel) // stride + 1
    ow = (w + 2 * padding - kernel) // stride + 1
    return oh, ow


def _conv2d_infer(specs: Sequence[TensorSpec], attrs: Attrs) -> TensorSpec:
    _check_arity("conv2d", specs, 2)
    x, w = specs
    if x.rank != 4 or w.rank != 4:
        raise ValueError("conv2d expects NCHW input and OIKK weight")
    if x.shape[1] != w.shape[1]:
        raise ValueError(f"conv2d channel mismatch: {x.shape} x {w.shape}")
    stride = int(attrs.get("stride", 1))
    padding = int(attrs.get("padding", 0))
    kernel = w.shape[2]
    oh, ow = _conv_out_hw(x.shape[2], x.shape[3], kernel, stride, padding)
    if oh <= 0 or ow <= 0:
        raise ValueError("conv2d output spatial size is non-positive")
    return TensorSpec((x.shape[0], w.shape[0], oh, ow), x.dtype)


def _conv2d_flops(specs: Sequence[TensorSpec], out: TensorSpec, _attrs: Attrs) -> float:
    x, w = specs
    k = w.shape[1] * w.shape[2] * w.shape[3]
    return 2.0 * out.numel * k


def im2col(x: np.ndarray, kernel: int, stride: int, padding: int) -> np.ndarray:
    """Unfold NCHW input into (N, OH*OW, C*K*K) patches."""
    n, c, h, w = x.shape
    oh, ow = _conv_out_hw(h, w, kernel, stride, padding)
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    cols = np.empty((n, oh * ow, c * kernel * kernel), dtype=x.dtype)
    idx = 0
    for i in range(oh):
        for j in range(ow):
            patch = xp[:, :, i * stride : i * stride + kernel, j * stride : j * stride + kernel]
            cols[:, idx, :] = patch.reshape(n, -1)
            idx += 1
    return cols


def col2im(
    cols: np.ndarray, x_shape: tuple, kernel: int, stride: int, padding: int
) -> np.ndarray:
    """Fold (N, OH*OW, C*K*K) patches back, accumulating overlaps (adjoint of im2col)."""
    n, c, h, w = x_shape
    oh, ow = _conv_out_hw(h, w, kernel, stride, padding)
    xp = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    idx = 0
    for i in range(oh):
        for j in range(ow):
            patch = cols[:, idx, :].reshape(n, c, kernel, kernel)
            xp[:, :, i * stride : i * stride + kernel, j * stride : j * stride + kernel] += patch
            idx += 1
    if padding:
        return xp[:, :, padding:-padding, padding:-padding]
    return xp


def _conv2d_execute(inputs: Sequence[np.ndarray], attrs: Attrs) -> np.ndarray:
    x, w = inputs
    stride = int(attrs.get("stride", 1))
    padding = int(attrs.get("padding", 0))
    kernel = w.shape[2]
    n = x.shape[0]
    oh, ow = _conv_out_hw(x.shape[2], x.shape[3], kernel, stride, padding)
    cols = im2col(x, kernel, stride, padding)  # (N, OH*OW, C*K*K)
    wmat = w.reshape(w.shape[0], -1)  # (O, C*K*K)
    out = np.matmul(cols, wmat.T)  # (N, OH*OW, O)
    return np.transpose(out, (0, 2, 1)).reshape(n, w.shape[0], oh, ow)


register_op(OpDef("conv2d", OpKind.CONV, _conv2d_infer, _conv2d_flops, _conv2d_execute, 2))


def _pool_infer(specs: Sequence[TensorSpec], attrs: Attrs) -> TensorSpec:
    _check_arity("pool", specs, 1)
    x = specs[0]
    if x.rank != 4:
        raise ValueError("pooling expects NCHW input")
    kernel = int(attrs.get("kernel", 2))
    stride = int(attrs.get("stride", kernel))
    oh, ow = _conv_out_hw(x.shape[2], x.shape[3], kernel, stride, 0)
    return TensorSpec((x.shape[0], x.shape[1], oh, ow), x.dtype)


def _pool_flops(specs: Sequence[TensorSpec], out: TensorSpec, attrs: Attrs) -> float:
    kernel = int(attrs.get("kernel", 2))
    return float(out.numel * kernel * kernel)


def _pool_execute(inputs: Sequence[np.ndarray], attrs: Attrs, reducer=np.max) -> np.ndarray:
    x = inputs[0]
    kernel = int(attrs.get("kernel", 2))
    stride = int(attrs.get("stride", kernel))
    n, c, h, w = x.shape
    oh, ow = _conv_out_hw(h, w, kernel, stride, 0)
    out = np.empty((n, c, oh, ow), dtype=x.dtype)
    for i in range(oh):
        for j in range(ow):
            window = x[:, :, i * stride : i * stride + kernel, j * stride : j * stride + kernel]
            out[:, :, i, j] = reducer(window, axis=(2, 3))
    return out


register_op(OpDef("maxpool2d", OpKind.POOL, _pool_infer, _pool_flops, _pool_execute, 1))
register_op(
    OpDef(
        "avgpool2d",
        OpKind.POOL,
        _pool_infer,
        _pool_flops,
        lambda inputs, attrs: _pool_execute(inputs, attrs, reducer=np.mean),
        1,
    )
)


# ---------------------------------------------------------------------------
# cross-entropy loss
# ---------------------------------------------------------------------------

def _xent_infer(specs: Sequence[TensorSpec], _attrs: Attrs) -> TensorSpec:
    _check_arity("cross_entropy", specs, 2)
    logits, labels = specs
    if logits.rank != 2 or labels.rank != 1 or logits.shape[0] != labels.shape[0]:
        raise ValueError(
            f"cross_entropy expects logits [N, C] and labels [N], got {logits.shape}, {labels.shape}"
        )
    return TensorSpec((), logits.dtype)


def _xent_flops(specs: Sequence[TensorSpec], _out: TensorSpec, _attrs: Attrs) -> float:
    return 6.0 * specs[0].numel


def _xent_execute(inputs: Sequence[np.ndarray], _attrs: Attrs) -> np.ndarray:
    logits, labels = inputs
    labels = labels.astype(np.int64)
    shifted = logits - np.max(logits, axis=1, keepdims=True)
    logsumexp = np.log(np.sum(np.exp(shifted), axis=1))
    picked = shifted[np.arange(logits.shape[0]), labels]
    # Sum (not mean): keeps the loss additive across batch shards so that the
    # partial losses computed under data parallelism All-Reduce to the
    # single-device value exactly.
    return np.asarray(np.sum(logsumexp - picked))


register_op(
    OpDef("cross_entropy", OpKind.CROSS_ENTROPY, _xent_infer, _xent_flops, _xent_execute, 2)
)


# ---------------------------------------------------------------------------
# Mixture-of-Experts primitives (GShard-style top-1 routing)
# ---------------------------------------------------------------------------

def _moe_capacity(num_tokens: int, num_experts: int, capacity_factor: float) -> int:
    return max(1, int(math.ceil(num_tokens / num_experts * capacity_factor)))


def _moe_dispatch_infer(specs: Sequence[TensorSpec], attrs: Attrs) -> TensorSpec:
    _check_arity("moe_dispatch", specs, 2)
    tokens, gates = specs
    if tokens.rank != 2 or gates.rank != 2 or tokens.shape[0] != gates.shape[0]:
        raise ValueError(
            f"moe_dispatch expects tokens [N, H] and gates [N, E], got {tokens.shape}, {gates.shape}"
        )
    num_experts = gates.shape[1]
    capacity = _moe_capacity(tokens.shape[0], num_experts, float(attrs.get("capacity_factor", 1.25)))
    return TensorSpec((num_experts, capacity, tokens.shape[1]), tokens.dtype)


def _moe_dispatch_flops(specs: Sequence[TensorSpec], out: TensorSpec, _attrs: Attrs) -> float:
    return float(specs[0].numel + out.numel)


def moe_routing(gates: np.ndarray, capacity: int) -> np.ndarray:
    """Top-1 routing table.

    Returns an int array ``route`` of shape (N, 3): expert index, slot within
    the expert's capacity buffer (or -1 if dropped), and a flag.  Routing is
    deterministic given the gate values.
    """
    num_tokens, _num_experts = gates.shape
    choice = np.argmax(gates, axis=1)
    route = np.full((num_tokens, 2), -1, dtype=np.int64)
    counts: Dict[int, int] = {}
    for t in range(num_tokens):
        e = int(choice[t])
        slot = counts.get(e, 0)
        if slot < capacity:
            route[t, 0] = e
            route[t, 1] = slot
            counts[e] = slot + 1
    return route


def _moe_dispatch_execute(inputs: Sequence[np.ndarray], attrs: Attrs) -> np.ndarray:
    tokens, gates = inputs
    num_experts = gates.shape[1]
    capacity = _moe_capacity(tokens.shape[0], num_experts, float(attrs.get("capacity_factor", 1.25)))
    route = moe_routing(gates, capacity)
    out = np.zeros((num_experts, capacity, tokens.shape[1]), dtype=tokens.dtype)
    for t in range(tokens.shape[0]):
        e, slot = route[t]
        if e >= 0:
            out[e, slot] = tokens[t]
    return out


register_op(
    OpDef(
        "moe_dispatch",
        OpKind.MOE_DISPATCH,
        _moe_dispatch_infer,
        _moe_dispatch_flops,
        _moe_dispatch_execute,
        2,
    )
)


def _moe_combine_infer(specs: Sequence[TensorSpec], attrs: Attrs) -> TensorSpec:
    _check_arity("moe_combine", specs, 2)
    expert_out, gates = specs
    if expert_out.rank != 3 or gates.rank != 2:
        raise ValueError(
            f"moe_combine expects expert output [E, C, H] and gates [N, E], got {expert_out.shape}, {gates.shape}"
        )
    return TensorSpec((gates.shape[0], expert_out.shape[2]), expert_out.dtype)


def _moe_combine_flops(specs: Sequence[TensorSpec], out: TensorSpec, _attrs: Attrs) -> float:
    return float(2 * out.numel)


def _moe_combine_execute(inputs: Sequence[np.ndarray], attrs: Attrs) -> np.ndarray:
    expert_out, gates = inputs
    capacity = expert_out.shape[1]
    route = moe_routing(gates, capacity)
    num_tokens = gates.shape[0]
    out = np.zeros((num_tokens, expert_out.shape[2]), dtype=expert_out.dtype)
    # Softmax-normalised gate weight of the selected expert.
    shifted = gates - np.max(gates, axis=1, keepdims=True)
    probs = np.exp(shifted) / np.sum(np.exp(shifted), axis=1, keepdims=True)
    for t in range(num_tokens):
        e, slot = route[t]
        if e >= 0:
            out[t] = expert_out[e, slot] * probs[t, e]
    return out


register_op(
    OpDef(
        "moe_combine",
        OpKind.MOE_COMBINE,
        _moe_combine_infer,
        _moe_combine_flops,
        _moe_combine_execute,
        2,
    )
)


# ---------------------------------------------------------------------------
# optimizer terminal
# ---------------------------------------------------------------------------

def _sgd_infer(specs: Sequence[TensorSpec], _attrs: Attrs) -> TensorSpec:
    _check_arity("sgd_update", specs, 2)
    param, grad = specs
    if param.shape != grad.shape:
        raise ValueError(
            f"sgd_update expects matching param/grad shapes, got {param.shape} vs {grad.shape}"
        )
    return param


def _sgd_execute(inputs: Sequence[np.ndarray], attrs: Attrs) -> np.ndarray:
    lr = float(attrs.get("lr", 0.01))
    return inputs[0] - lr * inputs[1]


register_op(
    OpDef("sgd_update", OpKind.OPTIMIZER, _sgd_infer, _elementwise_flops(2.0), _sgd_execute, 2)
)
