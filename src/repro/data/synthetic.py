"""Synthetic data generators.

The paper trains on CIFAR-10 (image classification) and WikiText-2 (language
modelling).  Training *time* experiments only depend on tensor shapes, not on
the pixel or token values, so this reproduction generates random batches with
the same shapes and label/vocabulary statistics.  The generators are
deterministic given their seed, which keeps the SPMD-equivalence tests and the
examples reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

import numpy as np

from ..graph.graph import ComputationGraph
from ..graph.tensor import DType


@dataclass
class SyntheticDataset:
    """Base synthetic dataset: yields dictionaries of named numpy arrays."""

    batch_size: int
    seed: int = 0

    def batch(self, index: int) -> Dict[str, np.ndarray]:  # pragma: no cover - abstract
        raise NotImplementedError

    def __iter__(self) -> Iterator[Dict[str, np.ndarray]]:
        index = 0
        while True:
            yield self.batch(index)
            index += 1


@dataclass
class Cifar10Like(SyntheticDataset):
    """CIFAR-10-shaped batches: float images and 10-class labels.

    Attributes:
        image_size: image resolution (CIFAR-10 is 32, the VGG19 configuration
            of Table 1 upscales to 224).
        num_classes: number of label classes.
    """

    image_size: int = 32
    num_classes: int = 10
    image_key: str = "images"
    label_key: str = "labels"

    def batch(self, index: int) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(self.seed + index)
        images = rng.normal(0.0, 1.0, size=(self.batch_size, 3, self.image_size, self.image_size))
        labels = rng.integers(0, self.num_classes, size=(self.batch_size,))
        return {
            self.image_key: images.astype(np.float32),
            self.label_key: labels.astype(np.int64),
        }


@dataclass
class WikiText2Like(SyntheticDataset):
    """WikiText-2-shaped batches: token ids and next-token labels.

    Attributes:
        seq_len: tokens per sequence.
        vocab_size: vocabulary size (WikiText-2 has ~33k word-level tokens;
            BERT's WordPiece vocabulary has 30522 entries).
    """

    seq_len: int = 128
    vocab_size: int = 30522
    input_key: str = "input_ids"
    label_key: str = "labels"

    def batch(self, index: int) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(self.seed + index)
        ids = rng.integers(0, self.vocab_size, size=(self.batch_size, self.seq_len))
        labels = np.roll(ids, shift=-1, axis=1)
        return {
            self.input_key: ids.astype(np.int64),
            self.label_key: labels.astype(np.int64),
        }


def batches_for_graph(
    graph: ComputationGraph, seed: int = 0, num_classes: Optional[int] = None
) -> Dict[str, np.ndarray]:
    """Generate one batch whose shapes match a graph's placeholders.

    Works for both image-style and token-style models by inspecting the
    placeholder dtypes; integer placeholders named like labels receive values
    bounded by ``num_classes`` (or by the classifier width when it can be
    inferred from the graph).
    """
    rng = np.random.default_rng(seed)
    batch: Dict[str, np.ndarray] = {}
    inferred_classes = num_classes or _infer_num_classes(graph)
    for node in graph.placeholders():
        spec = node.spec
        if spec.dtype in (DType.INT64, DType.INT32):
            if "label" in node.name:
                high = inferred_classes
            else:
                high = _infer_vocab(graph) or inferred_classes
            batch[node.name] = rng.integers(0, max(high, 2), size=spec.shape).astype(
                spec.dtype.numpy_name
            )
        else:
            batch[node.name] = rng.normal(0.0, 1.0, size=spec.shape).astype(np.float32)
    return batch


def _infer_num_classes(graph: ComputationGraph) -> int:
    """Number of classes implied by the cross-entropy logits, if any."""
    for node in graph:
        if node.op == "cross_entropy":
            logits = graph[node.inputs[0]]
            return logits.spec.shape[-1]
    return 10


def _infer_vocab(graph: ComputationGraph) -> Optional[int]:
    """Vocabulary size implied by an embedding table, if any."""
    for node in graph:
        if node.op == "embedding":
            table = graph[node.inputs[1]]
            return table.spec.shape[0]
    return None
