"""Synthetic datasets standing in for CIFAR-10 and WikiText-2."""

from .synthetic import Cifar10Like, SyntheticDataset, WikiText2Like, batches_for_graph

__all__ = ["SyntheticDataset", "Cifar10Like", "WikiText2Like", "batches_for_graph"]
