"""Construction of the training graph (forward + backward + optimizer step).

HAP's input is the full per-iteration program: forward pass, loss, backward
pass, and the parameter update for every trainable tensor (Sec. 6 of the
paper: each worker applies gradients to its own parameter shards after running
``Q``).  The paper obtains this program by tracing PyTorch autograd; here we
construct it ourselves with reverse-mode differentiation over the IR.

The entry point is :func:`build_training_graph`, which copies the forward
graph, seeds the loss gradient with a constant ``1.0``, emits vector-Jacobian
products for every operator in reverse topological order, sums gradient
contributions from multiple consumers, and finally appends an ``sgd_update``
node per parameter.  The updated parameters and the loss are the outputs of
the resulting graph — they are exactly the tensors whose distributed
properties the synthesizer must establish.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..graph import grad_ops  # noqa: F401  (registers the backward operators)
from ..graph.graph import ComputationGraph, GraphError, Node
from ..graph.tensor import DType


@dataclass
class TrainingGraphInfo:
    """Book-keeping produced alongside a training graph.

    Attributes:
        graph: the constructed training graph.
        loss: name of the loss node.
        gradients: map from parameter name to its gradient node name.
        updates: map from parameter name to its ``sgd_update`` node name.
        skipped_parameters: parameters with no gradient path (e.g. MoE gate
            weights under straight-through routing); they receive no update.
    """

    graph: ComputationGraph
    loss: str
    gradients: Dict[str, str] = field(default_factory=dict)
    updates: Dict[str, str] = field(default_factory=dict)
    skipped_parameters: List[str] = field(default_factory=list)


class _GradBuilder:
    """Helper that adds backward nodes with unique names."""

    def __init__(self, graph: ComputationGraph) -> None:
        self.graph = graph
        self._counter = 0

    def add(self, prefix: str, op: str, inputs: Tuple[str, ...], **attrs) -> str:
        name = f"{prefix}__g{self._counter}"
        self._counter += 1
        self.graph.add_node(name, op, inputs, attrs)
        return name


def _copy_forward(forward: ComputationGraph) -> ComputationGraph:
    graph = ComputationGraph(f"{forward.name}_train")
    for node in forward:
        graph.add_node(node.name, node.op, node.inputs, dict(node.attrs))
    return graph


def build_training_graph(
    forward: ComputationGraph, lr: float = 0.01
) -> TrainingGraphInfo:
    """Expand a forward graph with a marked loss into a full training graph.

    Args:
        forward: single-device forward graph; ``forward.loss`` must be set.
        lr: learning rate stored on the ``sgd_update`` nodes.

    Returns:
        A :class:`TrainingGraphInfo` whose ``graph`` contains the forward
        nodes, all gradient nodes, and one ``sgd_update`` per parameter that
        receives a gradient.  The loss and the updated parameters are marked
        as outputs.

    Raises:
        GraphError: if the forward graph has no loss or uses an operator with
            no differentiation rule on the path to a parameter.
    """
    if forward.loss is None:
        raise GraphError("build_training_graph requires a graph with a marked loss")
    forward.validate()

    graph = _copy_forward(forward)
    b = _GradBuilder(graph)
    loss = forward.loss

    # Gradient accumulation buckets: node name -> list of grad node names.
    pending: Dict[str, List[str]] = {}

    seed = b.add("grad_seed", "constant", (), shape=(), dtype=DType.FLOAT32, value=1.0)
    pending[loss] = [seed]

    def grad_of(name: str) -> Optional[str]:
        """Sum accumulated gradient contributions of a node (or None)."""
        contribs = pending.get(name)
        if not contribs:
            return None
        total = contribs[0]
        for extra in contribs[1:]:
            total = b.add(f"grad_{name}_acc", "add", (total, extra))
        pending[name] = [total]
        return total

    def push(name: str, grad: Optional[str]) -> None:
        if grad is not None:
            pending.setdefault(name, []).append(grad)

    # Reverse topological sweep of the forward nodes.
    for node in reversed(forward.nodes):
        dy = grad_of(node.name)
        if dy is None:
            continue
        for inp, grad in _vjp(b, forward, node, dy).items():
            push(inp, grad)

    gradients: Dict[str, str] = {}
    updates: Dict[str, str] = {}
    skipped: List[str] = []
    for param in forward.parameters():
        grad = grad_of(param.name)
        if grad is None:
            skipped.append(param.name)
            continue
        gradients[param.name] = grad
        upd = b.add(f"{param.name}_new", "sgd_update", (param.name, grad), lr=lr)
        updates[param.name] = upd
        graph.mark_output(upd)

    graph.mark_loss(loss)
    # The eager VJP sweep materialises gradients for every input, including
    # data placeholders nobody updates; drop those dead sinks so the planner
    # never pays (or shards) compute whose result is unobservable.
    graph.prune_dead()
    graph.validate()
    return TrainingGraphInfo(
        graph=graph, loss=loss, gradients=gradients, updates=updates, skipped_parameters=skipped
    )


#: Suffix of the gradient-seed placeholders of a pipeline-stage graph.
GRAD_SEED_SUFFIX = "__grad_in"


@dataclass
class StageTrainingInfo:
    """A pipeline stage's training graph plus its boundary book-keeping.

    Attributes:
        graph: the stage's training graph (stage forward + backward + SGD
            updates for the stage's own parameters).
        loss: loss node name (last stage only).
        gradients / updates / skipped_parameters: as in
            :class:`TrainingGraphInfo`, restricted to the stage's parameters.
        forward_nodes: names of the stage-forward nodes (including the
            placeholder stand-ins for incoming activations) — everything else
            in ``graph`` is backward or optimizer work.
        boundary_outputs: activations this stage sends downstream; each is a
            graph output and has a matching gradient-seed placeholder.
        grad_input_of: boundary-output ref -> its gradient-seed placeholder
            (bound by the runtime to the gradient received from downstream).
        grad_output_of: incoming-activation ref -> node holding the gradient
            this stage sends back upstream (a graph output).
    """

    graph: ComputationGraph
    loss: Optional[str]
    gradients: Dict[str, str] = field(default_factory=dict)
    updates: Dict[str, str] = field(default_factory=dict)
    skipped_parameters: List[str] = field(default_factory=list)
    forward_nodes: List[str] = field(default_factory=list)
    boundary_outputs: List[str] = field(default_factory=list)
    grad_input_of: Dict[str, str] = field(default_factory=dict)
    grad_output_of: Dict[str, str] = field(default_factory=dict)


def build_stage_training_graph(
    stage_forward: ComputationGraph,
    boundary_inputs: Tuple[str, ...] = (),
    boundary_outputs: Tuple[str, ...] = (),
    lr: float = 0.01,
) -> StageTrainingInfo:
    """Differentiate one pipeline stage of a forward graph.

    The last stage (the one holding the loss) is differentiated exactly like
    :func:`build_training_graph`.  Earlier stages have no loss; instead, each
    ``boundary_outputs`` activation gets a gradient-seed *placeholder* (named
    ``<ref>__grad_in``) standing in for the gradient that arrives from the
    downstream stage at run time, and the accumulated gradient of each
    ``boundary_inputs`` activation is marked as a graph output so it can be
    sent upstream.  Chaining the stage graphs through these placeholders
    reproduces the single-device backward pass.

    Args:
        stage_forward: the stage's forward subgraph.  Incoming activations
            must already be placeholder nodes carrying the original node
            names; the loss must be marked on the last stage.
        boundary_inputs: incoming-activation refs whose gradients this stage
            must export upstream.
        boundary_outputs: activation refs this stage exports downstream (the
            gradient seeds of its backward pass).
        lr: learning rate stored on the ``sgd_update`` nodes.

    Returns:
        A :class:`StageTrainingInfo`; the graph's outputs are the updated
        parameters, the boundary activations, the upstream gradients, and the
        loss when present.
    """
    if stage_forward.loss is None and not boundary_outputs:
        raise GraphError(
            "a stage graph needs a marked loss or at least one boundary output "
            "to seed its backward pass"
        )
    stage_forward.validate()

    graph = _copy_forward(stage_forward)
    forward_nodes = list(stage_forward.node_names)
    b = _GradBuilder(graph)
    pending: Dict[str, List[str]] = {}

    if stage_forward.loss is not None:
        seed = b.add("grad_seed", "constant", (), shape=(), dtype=DType.FLOAT32, value=1.0)
        pending[stage_forward.loss] = [seed]

    grad_input_of: Dict[str, str] = {}
    for ref in boundary_outputs:
        spec = stage_forward[ref].spec
        seed_name = f"{ref}{GRAD_SEED_SUFFIX}"
        graph.add_node(seed_name, "placeholder", (), {"shape": spec.shape, "dtype": spec.dtype})
        pending.setdefault(ref, []).append(seed_name)
        grad_input_of[ref] = seed_name

    def grad_of(name: str) -> Optional[str]:
        contribs = pending.get(name)
        if not contribs:
            return None
        total = contribs[0]
        for extra in contribs[1:]:
            total = b.add(f"grad_{name}_acc", "add", (total, extra))
        pending[name] = [total]
        return total

    def push(name: str, grad: Optional[str]) -> None:
        if grad is not None:
            pending.setdefault(name, []).append(grad)

    for node in reversed(stage_forward.nodes):
        dy = grad_of(node.name)
        if dy is None:
            continue
        for inp, grad in _vjp(b, stage_forward, node, dy).items():
            push(inp, grad)

    gradients: Dict[str, str] = {}
    updates: Dict[str, str] = {}
    skipped: List[str] = []
    for param in stage_forward.parameters():
        grad = grad_of(param.name)
        if grad is None:
            skipped.append(param.name)
            continue
        gradients[param.name] = grad
        upd = b.add(f"{param.name}_new", "sgd_update", (param.name, grad), lr=lr)
        updates[param.name] = upd
        graph.mark_output(upd)

    for ref in boundary_outputs:
        graph.mark_output(ref)
    grad_output_of: Dict[str, str] = {}
    for ref in boundary_inputs:
        grad = grad_of(ref)
        if grad is not None:
            graph.mark_output(grad)
            grad_output_of[ref] = grad

    if stage_forward.loss is not None:
        graph.mark_loss(stage_forward.loss)
    # Same dead-sink pruning as build_training_graph: boundary activations
    # and exported upstream gradients are outputs, so only unobservable
    # gradient compute (e.g. towards data placeholders) is removed.
    graph.prune_dead()
    graph.validate()
    return StageTrainingInfo(
        graph=graph,
        loss=stage_forward.loss,
        gradients=gradients,
        updates=updates,
        skipped_parameters=skipped,
        forward_nodes=[n for n in forward_nodes if n in graph],
        boundary_outputs=list(boundary_outputs),
        grad_input_of=grad_input_of,
        grad_output_of=grad_output_of,
    )


# ---------------------------------------------------------------------------
# per-operator vector-Jacobian products
# ---------------------------------------------------------------------------

def _vjp(b: _GradBuilder, fwd: ComputationGraph, node: Node, dy: str) -> Dict[str, Optional[str]]:
    """Gradient contributions of node ``node`` to each of its inputs.

    ``dy`` is the (already accumulated) gradient of the node's output.
    Returns a map input-name -> grad node name (``None`` entries are ignored).
    """
    op = node.op
    ins = node.inputs
    specs = fwd.input_specs(node)

    if op in ("placeholder", "parameter", "constant"):
        return {}

    if op in ("identity", "dropout"):
        return {ins[0]: dy}
    if op == "neg":
        return {ins[0]: b.add(f"d_{ins[0]}", "neg", (dy,))}
    if op == "scale":
        return {ins[0]: b.add(f"d_{ins[0]}", "scale", (dy,), factor=node.attrs.get("factor", 1.0))}
    if op in ("relu", "gelu", "sigmoid", "tanh", "square"):
        return {ins[0]: b.add(f"d_{ins[0]}", f"{op}_grad", (dy, ins[0]))}
    if op == "add":
        return {ins[0]: dy, ins[1]: dy}
    if op == "sub":
        return {ins[0]: dy, ins[1]: b.add(f"d_{ins[1]}", "neg", (dy,))}
    if op == "mul":
        return {
            ins[0]: b.add(f"d_{ins[0]}", "mul", (dy, ins[1])),
            ins[1]: b.add(f"d_{ins[1]}", "mul", (dy, ins[0])),
        }
    if op == "div":
        da = b.add(f"d_{ins[0]}", "div", (dy, ins[1]))
        num = b.add("div_grad_num", "mul", (dy, ins[0]))
        den = b.add("div_grad_den", "mul", (ins[1], ins[1]))
        db = b.add(f"d_{ins[1]}", "neg", (b.add("div_grad_q", "div", (num, den)),))
        return {ins[0]: da, ins[1]: db}
    if op == "bias_add":
        return {ins[0]: dy, ins[1]: b.add(f"d_{ins[1]}", "sum_leading", (dy,))}

    if op == "matmul":
        return _matmul_vjp(b, node, dy, specs)

    if op == "softmax":
        return {ins[0]: b.add(f"d_{ins[0]}", "softmax_grad", (dy, node.name), axis=node.attrs.get("axis", -1))}
    if op == "layernorm":
        return {
            ins[0]: b.add(
                f"d_{ins[0]}",
                "layernorm_grad",
                (dy, ins[0]),
                axis=node.attrs.get("axis", -1),
                eps=node.attrs.get("eps", 1e-5),
            )
        }

    if op in ("reshape", "flatten"):
        return {ins[0]: b.add(f"d_{ins[0]}", "reshape", (dy,), shape=specs[0].shape)}
    if op == "transpose":
        perm = tuple(int(p) for p in node.attrs["perm"])
        inverse = tuple(perm.index(i) for i in range(len(perm)))
        return {ins[0]: b.add(f"d_{ins[0]}", "transpose", (dy,), perm=inverse)}

    if op == "reduce_sum":
        return {ins[0]: b.add(f"d_{ins[0]}", "broadcast_to", (dy,), shape=specs[0].shape)}
    if op == "reduce_mean":
        bc = b.add("mean_grad_bc", "broadcast_to", (dy,), shape=specs[0].shape)
        return {ins[0]: b.add(f"d_{ins[0]}", "scale", (bc,), factor=1.0 / specs[0].numel)}

    if op == "cross_entropy":
        return {ins[0]: b.add(f"d_{ins[0]}", "cross_entropy_grad", (dy, ins[0], ins[1])), ins[1]: None}
    if op == "embedding":
        vocab = specs[1].shape[0]
        return {ins[1]: b.add(f"d_{ins[1]}", "embedding_grad", (dy, ins[0]), vocab_size=vocab), ins[0]: None}

    if op == "conv2d":
        stride = int(node.attrs.get("stride", 1))
        padding = int(node.attrs.get("padding", 0))
        dx = b.add(
            f"d_{ins[0]}",
            "conv2d_grad_input",
            (dy, ins[1]),
            stride=stride,
            padding=padding,
            input_shape=specs[0].shape,
        )
        dw = b.add(
            f"d_{ins[1]}",
            "conv2d_grad_weight",
            (dy, ins[0]),
            stride=stride,
            padding=padding,
            weight_shape=specs[1].shape,
        )
        return {ins[0]: dx, ins[1]: dw}

    if op in ("maxpool2d", "avgpool2d"):
        return {
            ins[0]: b.add(
                f"d_{ins[0]}",
                f"{op}_grad",
                (dy, ins[0]),
                kernel=node.attrs.get("kernel", 2),
                stride=node.attrs.get("stride", node.attrs.get("kernel", 2)),
            )
        }

    if op == "moe_dispatch":
        return {ins[0]: b.add(f"d_{ins[0]}", "moe_dispatch_grad", (dy, ins[1])), ins[1]: None}
    if op == "moe_combine":
        capacity = fwd[ins[0]].spec.shape[1]
        return {
            ins[0]: b.add(
                f"d_{ins[0]}",
                "moe_combine_grad",
                (dy, ins[1]),
                capacity=capacity,
                capacity_factor=node.attrs.get("capacity_factor", 1.25),
            ),
            ins[1]: None,
        }

    raise GraphError(f"no differentiation rule for operator {op!r} (node {node.name!r})")


def _matmul_vjp(b: _GradBuilder, node: Node, dy: str, specs) -> Dict[str, Optional[str]]:
    a_name, w_name = node.inputs
    a, w = specs
    if a.rank == 2 and w.rank == 2:
        wt = b.add("matmul_wt", "transpose", (w_name,), perm=(1, 0))
        da = b.add(f"d_{a_name}", "matmul", (dy, wt))
        at = b.add("matmul_at", "transpose", (a_name,), perm=(1, 0))
        dw = b.add(f"d_{w_name}", "matmul", (at, dy))
        return {a_name: da, w_name: dw}
    if a.rank == 3 and w.rank == 3:
        wt = b.add("matmul_wt", "transpose", (w_name,), perm=(0, 2, 1))
        da = b.add(f"d_{a_name}", "matmul", (dy, wt))
        at = b.add("matmul_at", "transpose", (a_name,), perm=(0, 2, 1))
        dw = b.add(f"d_{w_name}", "matmul", (at, dy))
        return {a_name: da, w_name: dw}
    if a.rank == 3 and w.rank == 2:
        # a: [B, M, K], w: [K, N], y: [B, M, N]
        batch, m, k = a.shape
        n = w.shape[1]
        wt = b.add("matmul_wt", "transpose", (w_name,), perm=(1, 0))
        da = b.add(f"d_{a_name}", "matmul", (dy, wt))
        a2 = b.add("matmul_a2", "reshape", (a_name,), shape=(batch * m, k))
        dy2 = b.add("matmul_dy2", "reshape", (dy,), shape=(batch * m, n))
        a2t = b.add("matmul_a2t", "transpose", (a2,), perm=(1, 0))
        dw = b.add(f"d_{w_name}", "matmul", (a2t, dy2))
        return {a_name: da, w_name: dw}
    raise GraphError(f"unsupported matmul ranks in autodiff: {a.rank} x {w.rank}")
