"""Reverse-mode autodiff over the single-device IR."""

from .backward import TrainingGraphInfo, build_training_graph

__all__ = ["build_training_graph", "TrainingGraphInfo"]
