"""Reverse-mode autodiff over the single-device IR."""

from .backward import (
    GRAD_SEED_SUFFIX,
    StageTrainingInfo,
    TrainingGraphInfo,
    build_stage_training_graph,
    build_training_graph,
)

__all__ = [
    "build_training_graph",
    "build_stage_training_graph",
    "TrainingGraphInfo",
    "StageTrainingInfo",
    "GRAD_SEED_SUFFIX",
]
