"""Discrete (stage-level) execution simulator.

The paper measures per-iteration wall-clock time on a real cluster; this
reproduction replaces the cluster with a simulator that replays a distributed
program stage by stage on the cluster model.  The simulator is intentionally
*richer* than the planner's cost model (Sec. 3.2): it adds kernel-launch
overheads, memory-bandwidth limits for element-wise operators, an intra-machine
synchronisation penalty and multiplicative run-to-run noise.  As a result the
planner's estimates systematically *under-estimate* the simulated time while
remaining strongly linearly correlated with it — exactly the relationship the
paper reports for its cost model in Fig. 18.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cluster.spec import ClusterSpec
from ..collectives.cost import CollectiveCostModel
from ..core.costmodel import CostModel
from ..core.instructions import CommInstruction, CompInstruction
from ..core.program import DistributedProgram
from ..graph.ops import OpKind


@dataclass(frozen=True)
class OverheadModel:
    """Secondary effects included by the simulator but not by the cost model.

    Attributes:
        kernel_launch: host-side launch latency per computation instruction.
        collective_launch: extra launch latency per collective call.
        memory_bandwidth: per-GPU HBM bandwidth (bytes/s) bounding element-wise
            operators that perform almost no arithmetic.
        framework_per_stage: per-stage framework/synchronisation overhead.
        noise: standard deviation of the multiplicative run-to-run noise.
        congestion: multiplier on collective times (shared-network slowdown).
    """

    kernel_launch: float = 6e-6
    collective_launch: float = 18e-6
    memory_bandwidth: float = 600e9
    framework_per_stage: float = 30e-6
    noise: float = 0.02
    congestion: float = 1.12


@dataclass
class SimulationResult:
    """Per-iteration time observed on the simulated cluster."""

    total: float
    communication: float
    computation: float
    overhead: float
    stage_times: List[float] = field(default_factory=list)
    per_device_busy: List[float] = field(default_factory=list)

    @property
    def throughput_samples_per_second(self) -> float:
        """Convenience for throughput-style plots (samples normalised to 1)."""
        return 1.0 / self.total if self.total > 0 else float("inf")


class ExecutionSimulator:
    """Replays distributed programs on the modelled cluster."""

    def __init__(
        self,
        cluster: ClusterSpec,
        overheads: Optional[OverheadModel] = None,
        seed: int = 0,
    ) -> None:
        self.cluster = cluster
        self.overheads = overheads or OverheadModel()
        self.collectives = CollectiveCostModel(cluster)
        self.rng = np.random.default_rng(seed)

    # -- per-instruction times ------------------------------------------------------
    def _comp_time(
        self,
        cost_model: CostModel,
        instr: CompInstruction,
        device_idx: int,
        ratio: float,
    ) -> float:
        node = cost_model.graph[instr.node]
        share = ratio if instr.flops_sharded else 1.0
        flops = cost_model.node_flops(instr.node) * share
        device = self.cluster.virtual_devices[device_idx]
        compute_bound = flops / device.flops if flops else 0.0
        # Element-wise / data-movement operators are bound by memory bandwidth.
        bytes_touched = 3.0 * node.spec.size_bytes * share
        memory_bound = bytes_touched / (self.overheads.memory_bandwidth * device.num_gpus)
        kind = node.kind
        if kind in (OpKind.MATMUL, OpKind.CONV, OpKind.CONV_GRAD_INPUT, OpKind.CONV_GRAD_WEIGHT):
            base = compute_bound
        elif kind is OpKind.SOURCE:
            base = 0.0
        else:
            base = max(compute_bound, memory_bound)
        base += cost_model._intra_sync_time(instr, device_idx, share)
        if kind is not OpKind.SOURCE:
            base += self.overheads.kernel_launch
        return base

    def _comm_time(self, cost_model: CostModel, instr: CommInstruction, ratios: Sequence[float]) -> float:
        base = cost_model.comm_time(instr, ratios)
        return base * self.overheads.congestion + self.overheads.collective_launch

    # -- main entry point --------------------------------------------------------------
    def simulate(
        self,
        program: DistributedProgram,
        ratios: Sequence[float],
        iterations: int = 1,
    ) -> SimulationResult:
        """Simulate ``iterations`` training iterations and return the mean time.

        Args:
            program: the distributed program to replay.
            ratios: sharding ratios used for data/parameter partitioning.
            iterations: number of iterations to average over (noise reduction).
        """
        cost_model = CostModel(program.graph, self.cluster)
        m = self.cluster.num_devices
        totals = []
        comm_total = comp_total = overhead_total = 0.0
        stage_times: List[float] = []
        busy = [0.0] * m
        for _ in range(max(1, iterations)):
            iter_comm = iter_comp = iter_overhead = 0.0
            iter_stages: List[float] = []
            for stage in program.stages():
                comm = 0.0
                if stage.comm is not None:
                    comm = self._comm_time(cost_model, stage.comm, ratios)
                device_time = [0.0] * m
                for comp in stage.comps:
                    if isinstance(comp, CommInstruction):
                        continue  # local slice pseudo-collective
                    for j in range(m):
                        t = self._comp_time(cost_model, comp, j, ratios[j])
                        device_time[j] += t
                        busy[j] += t
                noise = float(self.rng.normal(1.0, self.overheads.noise))
                comp = max(device_time) * max(noise, 0.5)
                stage_total = comm + comp + self.overheads.framework_per_stage
                iter_comm += comm
                iter_comp += comp
                iter_overhead += self.overheads.framework_per_stage
                iter_stages.append(stage_total)
            totals.append(iter_comm + iter_comp + iter_overhead)
            comm_total += iter_comm
            comp_total += iter_comp
            overhead_total += iter_overhead
            stage_times = iter_stages
        n = max(1, iterations)
        return SimulationResult(
            total=float(np.mean(totals)),
            communication=comm_total / n,
            computation=comp_total / n,
            overhead=overhead_total / n,
            stage_times=stage_times,
            per_device_busy=[b / n for b in busy],
        )


def simulate_plan(plan, cluster: ClusterSpec, iterations: int = 3, seed: int = 0) -> SimulationResult:
    """Simulate an :class:`~repro.core.pipeline.HAPPlan` on a cluster."""
    sim = ExecutionSimulator(cluster, seed=seed)
    return sim.simulate(plan.program, plan.flat_ratios, iterations=iterations)
