"""Discrete (stage-level) execution simulator.

The paper measures per-iteration wall-clock time on a real cluster; this
reproduction replaces the cluster with a simulator that replays a distributed
program stage by stage on the cluster model.  The simulator is intentionally
*richer* than the planner's cost model (Sec. 3.2): it adds kernel-launch
overheads, memory-bandwidth limits for element-wise operators, an intra-machine
synchronisation penalty and multiplicative run-to-run noise.  As a result the
planner's estimates systematically *under-estimate* the simulated time while
remaining strongly linearly correlated with it — exactly the relationship the
paper reports for its cost model in Fig. 18.

Timing is **event-driven and dual-stream**: devices have a compute stream and
a communication stream.  The replay runs two timelines — the fully serialized
one (every sync stage costs ``comm + comp``) and the ideal dual-stream one,
where each collective enters the communication stream as soon as its input
tensor has been produced and only the compute that (transitively) consumes a
collective's output waits for it.  On real synthesized programs this is what
hides the gradient all-reduce tail behind the tail of the backward pass and
the parameter updates behind later collectives.  The
:class:`~repro.cluster.spec.CommOverlapModel` efficiency interpolates between
the two timelines: 0 reproduces the additive model bit-for-bit, 1 is the
perfect dual-stream execution; results report busy/idle/exposed-communication
breakdowns per stream either way.  (The planner's cost model keeps the
LP-expressible per-stage window approximation of the same idea — the
simulator, as everywhere else, is the richer of the two.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.spec import ClusterSpec, CommOverlapModel
from ..collectives.cost import CollectiveCostModel
from ..core.costmodel import CostModel
from ..core.instructions import CommInstruction, CompInstruction
from ..core.program import DistributedProgram
from ..graph.ops import OpKind
from .schedule import ChunkTimes, ScheduleResult, StageTimes, simulate_pipeline


@dataclass(frozen=True)
class OverheadModel:
    """Secondary effects included by the simulator but not by the cost model.

    Attributes:
        kernel_launch: host-side launch latency per computation instruction.
        collective_launch: extra launch latency per collective call.
        memory_bandwidth: per-GPU HBM bandwidth (bytes/s) bounding element-wise
            operators that perform almost no arithmetic.
        framework_per_stage: per-stage framework/synchronisation overhead.
        noise: standard deviation of the multiplicative run-to-run noise.
        congestion: multiplier on collective times (shared-network slowdown).
    """

    kernel_launch: float = 6e-6
    collective_launch: float = 18e-6
    memory_bandwidth: float = 600e9
    framework_per_stage: float = 30e-6
    noise: float = 0.02
    congestion: float = 1.12


@dataclass
class SimulationResult:
    """Per-iteration time observed on the simulated cluster.

    Attributes:
        total: per-iteration wall-clock time,
            ``computation + exposed_communication + overhead``.
        communication: raw collective seconds (communication-stream busy).
        computation: per-stage bottleneck compute seconds (compute stream).
        overhead: per-stage framework/synchronisation overhead.
        exposed_communication: collective seconds left on the critical path
            after hiding behind independent compute; equals
            ``communication`` when the overlap efficiency is 0.
        hidden_communication: collective seconds overlapped with compute
            (``communication - exposed_communication``).
        stage_times: per-sync-stage wall-clock times of the last iteration.
        per_device_busy: per-device compute-stream busy seconds.
        per_device_comm_busy: per-device communication-stream busy seconds
            (collectives involve every device for their full duration).
        per_device_idle: per-device compute-stream idle seconds
            (``total - busy``, floored at 0).
    """

    total: float
    communication: float
    computation: float
    overhead: float
    stage_times: List[float] = field(default_factory=list)
    per_device_busy: List[float] = field(default_factory=list)
    exposed_communication: float = 0.0
    hidden_communication: float = 0.0
    per_device_comm_busy: List[float] = field(default_factory=list)
    per_device_idle: List[float] = field(default_factory=list)

    @property
    def throughput_samples_per_second(self) -> float:
        """Convenience for throughput-style plots (samples normalised to 1)."""
        return 1.0 / self.total if self.total > 0 else float("inf")


class ExecutionSimulator:
    """Replays distributed programs on the modelled cluster.

    Args:
        cluster: the cluster model to replay on.
        overheads: secondary-effect model (launch latencies, noise, ...).
        seed: RNG seed for the run-to-run noise.
        overlap: communication/computation overlap efficiency; ``None``
            takes the cluster's ``comm_overlap_efficiency``, 0.0 forces the
            serialized single-stream replay.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        overheads: Optional[OverheadModel] = None,
        seed: int = 0,
        overlap: Optional[float] = None,
    ) -> None:
        self.cluster = cluster
        self.overheads = overheads or OverheadModel()
        self.collectives = CollectiveCostModel(cluster)
        self.rng = np.random.default_rng(seed)
        self.overlap_model = (
            CommOverlapModel.from_cluster(cluster)
            if overlap is None
            else CommOverlapModel(efficiency=overlap)
        )
        self.overlap = self.overlap_model.efficiency

    # -- per-instruction times ------------------------------------------------------
    def _comp_time(
        self,
        cost_model: CostModel,
        instr: CompInstruction,
        device_idx: int,
        ratio: float,
    ) -> float:
        node = cost_model.graph[instr.node]
        share = ratio if instr.flops_sharded else 1.0
        flops = cost_model.node_flops(instr.node) * share
        device = self.cluster.virtual_devices[device_idx]
        compute_bound = flops / device.flops if flops else 0.0
        # Element-wise / data-movement operators are bound by memory bandwidth.
        bytes_touched = 3.0 * node.spec.size_bytes * share
        memory_bound = bytes_touched / (self.overheads.memory_bandwidth * device.num_gpus)
        kind = node.kind
        if kind in (OpKind.MATMUL, OpKind.CONV, OpKind.CONV_GRAD_INPUT, OpKind.CONV_GRAD_WEIGHT):
            base = compute_bound
        elif kind is OpKind.SOURCE:
            base = 0.0
        else:
            base = max(compute_bound, memory_bound)
        base += cost_model._intra_sync_time(instr, device_idx, share)
        if kind is not OpKind.SOURCE:
            base += self.overheads.kernel_launch
        return base

    def _comm_time(self, cost_model: CostModel, instr: CommInstruction, ratios: Sequence[float]) -> float:
        base = cost_model.comm_time(instr, ratios)
        return base * self.overheads.congestion + self.overheads.collective_launch

    # -- per-program replay (shared by simulate() and profile_program()) -----------------
    def _replay_stages(
        self,
        cost_model: CostModel,
        program: DistributedProgram,
        ratios: Sequence[float],
    ):
        """Yield ``(stage, comm_time, per_device_comp, per_comp_times)``.

        This is the deterministic core of the simulator: every secondary
        effect (kernel launches, memory-bandwidth bounds, congestion) is
        applied, but run-to-run noise is left to the caller so the same
        replay can back both the noisy :meth:`simulate` and the
        noise-free :meth:`profile_program`.  ``per_comp_times`` aligns with
        ``stage.comps`` and holds each computation's per-device times
        (``None`` for zero-cost local slice pseudo-collectives), so the
        dual-stream event timeline can replay individual instructions
        without re-pricing them.
        """
        m = self.cluster.num_devices
        for stage in program.stages():
            comm = 0.0
            if stage.comm is not None:
                comm = self._comm_time(cost_model, stage.comm, ratios)
            device_time = [0.0] * m
            per_comp: List[Optional[List[float]]] = []
            for comp in stage.comps:
                if isinstance(comp, CommInstruction):
                    per_comp.append(None)  # local slice pseudo-collective
                    continue
                times = [
                    self._comp_time(cost_model, comp, j, ratios[j]) for j in range(m)
                ]
                per_comp.append(times)
                for j, t in enumerate(times):
                    device_time[j] += t
            yield stage, comm, device_time, per_comp

    # -- main entry point --------------------------------------------------------------
    def simulate(
        self,
        program: DistributedProgram,
        ratios: Sequence[float],
        iterations: int = 1,
    ) -> SimulationResult:
        """Simulate ``iterations`` training iterations and return the mean time.

        Args:
            program: the distributed program to replay.
            ratios: sharding ratios used for data/parameter partitioning.
            iterations: number of iterations to average over (noise reduction).
        """
        cost_model = CostModel(program.graph, self.cluster, overlap=self.overlap)
        e = self.overlap
        totals = []
        comm_total = comp_total = overhead_total = exposed_total = 0.0
        stage_times: List[float] = []
        busy = [0.0] * self.cluster.num_devices
        for _ in range(max(1, iterations)):
            iter_comm = iter_comp = iter_overhead = 0.0
            replay = []
            for stage, comm, device_time, per_comp in self._replay_stages(
                cost_model, program, ratios
            ):
                for j, t in enumerate(device_time):
                    busy[j] += t
                noise = float(self.rng.normal(1.0, self.overheads.noise))
                factor = max(noise, 0.5)
                comp = max(device_time) * factor
                replay.append((stage, comm, device_time, per_comp, factor, comp))
                iter_comm += comm
                iter_comp += comp
                iter_overhead += self.overheads.framework_per_stage
            if e == 0.0:
                iter_exposed = iter_comm
            else:
                hidden = iter_comp + iter_comm - self._ideal_dual_stream_time(replay)
                iter_exposed = iter_comm - e * max(min(hidden, iter_comm), 0.0)
            # Serialized stage walls, with the iteration's hidden seconds
            # attributed to each stage's collective pro rata (the event
            # timeline has no per-stage walls to report).
            scale = iter_exposed / iter_comm if iter_comm > 0 else 1.0
            iter_stages = [
                comp + comm * scale + self.overheads.framework_per_stage
                for _stage, comm, _dt, _pc, _f, comp in replay
            ]
            totals.append(iter_comp + iter_exposed + iter_overhead)
            comm_total += iter_comm
            comp_total += iter_comp
            exposed_total += iter_exposed
            overhead_total += iter_overhead
            stage_times = iter_stages
        n = max(1, iterations)
        total = float(np.mean(totals))
        return SimulationResult(
            total=total,
            communication=comm_total / n,
            computation=comp_total / n,
            overhead=overhead_total / n,
            stage_times=stage_times,
            per_device_busy=[b / n for b in busy],
            exposed_communication=exposed_total / n,
            hidden_communication=(comm_total - exposed_total) / n,
            per_device_comm_busy=[comm_total / n] * self.cluster.num_devices,
            per_device_idle=[max(total - b / n, 0.0) for b in busy],
        )

    def _ideal_dual_stream_time(self, replay) -> float:
        """Length of the perfectly overlapped (dual-stream) event timeline.

        Replays the program once with the compute stream and the
        communication stream decoupled: a collective starts when the stream
        is free and its input tensor has been produced; a computation starts
        when the stream is free and every input it consumes — collective
        outputs included — is available.  Everything runs on the critical
        device of its stage (so the compute stream's busy time equals the
        serialized replay's compute time exactly), reusing the per-comp
        times and noise factors the serialized replay already produced; the
        difference between the serialized total and this timeline is the
        communication the dual-stream execution hides — gradient
        all-reduces start mid-backward as their gradients appear, and
        parameter updates run under later collectives.
        """
        t_comp = 0.0
        t_comm = 0.0
        finish: Dict[str, float] = {}
        for stage, comm, device_time, per_comp, factor, _comp in replay:
            crit = max(range(len(device_time)), key=device_time.__getitem__)
            if stage.comm is not None:
                ready = finish.get(stage.comm.input.ref, 0.0)
                end_c = max(t_comm, ready) + comm
                t_comm = end_c
                finish[stage.comm.output.ref] = end_c
            for comp_instr, times in zip(stage.comps, per_comp):
                if times is None:
                    # Local slice pseudo-collective: free, but its output
                    # availability still follows its input's.
                    finish[comp_instr.output.ref] = max(
                        t_comp, finish.get(comp_instr.input.ref, 0.0)
                    )
                    continue
                ready = max(
                    (finish.get(p.ref, 0.0) for p in comp_instr.inputs), default=0.0
                )
                t_comp = max(t_comp, ready) + times[crit] * factor
                finish[comp_instr.output.ref] = t_comp
        return max(t_comp, t_comm)

    def profile_program(
        self,
        program: DistributedProgram,
        ratios: Sequence[float],
        forward_nodes,
        send_bytes: float = 0.0,
        activation_bytes: float = 0.0,
        weight_bytes: float = 0.0,
    ) -> StageTimes:
        """Measured (overhead-rich, noise-free) pipeline profile of a program.

        Splits the simulated per-iteration time of a pipeline-stage program
        into the forward / backward / once-per-iteration-sync phases the
        pipeline-schedule simulator consumes, using the same per-instruction
        time models as :meth:`simulate` via
        :meth:`~repro.core.costmodel.CostModel.phase_profile`.  The phases
        carry **exposed** communication: the part of each collective the
        simulator's dual-stream replay hides behind independent compute is
        subtracted from the collective's phase.
        """
        cost_model = CostModel(program.graph, self.cluster, overlap=self.overlap)
        buckets = cost_model.phase_profile(
            program,
            ratios,
            forward_nodes,
            comp_times_fn=lambda instr, r: [
                self._comp_time(cost_model, instr, j, r[j])
                for j in range(self.cluster.num_devices)
            ],
            comm_time_fn=lambda instr, r: self._comm_time(cost_model, instr, r),
            per_stage_overhead=self.overheads.framework_per_stage,
            overlap=self.overlap,
        )
        return StageTimes(
            forward=buckets["forward"],
            backward=buckets["backward"],
            sync=buckets["sync"],
            send_bytes=send_bytes,
            activation_bytes=activation_bytes,
            weight_bytes=weight_bytes,
        )


def simulate_plan(plan, cluster: ClusterSpec, iterations: int = 3, seed: int = 0) -> SimulationResult:
    """Simulate an :class:`~repro.core.pipeline.HAPPlan` on a cluster."""
    sim = ExecutionSimulator(cluster, seed=seed)
    return sim.simulate(plan.program, plan.flat_ratios, iterations=iterations)


@dataclass
class HierarchicalSimulationResult:
    """Simulated per-iteration time of a pipelined (hierarchical) plan.

    Attributes:
        total: mean pipelined iteration time across the simulated iterations.
        schedule: the noise-free schedule behind the mean.
        stage_times: per-stage measured profiles fed to the schedule.
        samples: per-iteration noisy totals.
    """

    total: float
    schedule: ScheduleResult
    stage_times: List[StageTimes] = field(default_factory=list)
    samples: List[float] = field(default_factory=list)


def simulate_hierarchical(
    plan,
    iterations: int = 3,
    seed: int = 0,
    overheads: Optional[OverheadModel] = None,
    overlap: Optional[float] = None,
) -> HierarchicalSimulationResult:
    """Simulate a :class:`~repro.core.hierarchical.HierarchicalPlan`.

    Every chunk program is profiled on its machine group with the full
    overhead model (interleaved stages host several chunk programs; their
    per-chunk profiles and true per-virtual-boundary bytes — wrap hops
    included — are handed to the schedule), the plan's pipeline schedule
    (GPipe, 1F1B or interleaved 1F1B, with the plan's microbatch count and
    recomputation choice) combines the stages over the partition's
    inter-group link with the plan's communication-overlap efficiency
    (boundary transfers expose only their non-hidden part), and the
    run-to-run noise the flat simulator applies per stage is applied to the
    pipelined iteration total.  A 1-stage plan reduces to the flat
    simulation of its single program (whole batch, no transfers).

    ``overlap`` overrides the plan's own overlap efficiency for the whole
    simulation — chunk profiling and the schedule alike — so callers can
    measure the fully blocking baseline of an overlap-priced plan
    (``overlap=0.0``) or a what-if efficiency without replanning.
    """
    overheads = overheads or OverheadModel()
    if overlap is None:
        overlap = getattr(plan, "overlap", None)
    if overlap is None:  # legacy plans: fall back to the cluster's default
        overlap = CommOverlapModel.from_cluster(plan.cluster).efficiency
    stage_times: List[StageTimes] = []
    # (forward, backward, sync) per chunk content key — see the loop below.
    profile_memo: Dict[str, Tuple[float, float, float]] = {}
    for stage in plan.stages:
        sim = ExecutionSimulator(
            stage.subcluster, overheads=overheads, seed=seed, overlap=overlap
        )
        chunk_times: List[ChunkTimes] = []
        fwd = bwd = sync = 0.0
        for chunk in stage.chunks:
            # profile_program is noise-free, and chunks sharing a content key
            # (isomorphic program, same group signature) profile identically —
            # the cost model never reads node names — so each distinct key is
            # profiled once; per-chunk bytes stay per-chunk.
            key = getattr(chunk, "content_key", None)
            phases = profile_memo.get(key) if key is not None else None
            if phases is None:
                profile = sim.profile_program(
                    chunk.program,
                    chunk.ratios,
                    chunk.forward_nodes,
                    send_bytes=chunk.send_bytes,
                    activation_bytes=float(chunk.activation_bytes),
                    weight_bytes=chunk.weight_bytes_total(),
                )
                phases = (profile.forward, profile.backward, profile.sync)
                if key is not None:
                    profile_memo[key] = phases
            chunk_times.append(
                ChunkTimes(
                    forward=phases[0],
                    backward=phases[1],
                    send_bytes=float(chunk.send_bytes),
                    activation_bytes=float(chunk.activation_bytes),
                )
            )
            fwd += phases[0]
            bwd += phases[1]
            sync += phases[2]
        stage_times.append(
            StageTimes(
                forward=fwd,
                backward=bwd,
                sync=sync,
                send_bytes=float(stage.send_bytes),
                activation_bytes=float(stage.activation_bytes),
                weight_bytes=stage.weight_bytes_total(),
                chunks=tuple(chunk_times),
            )
        )
    network = plan.partition.inter_group_network
    schedule = simulate_pipeline(
        stage_times,
        num_microbatches=plan.num_microbatches,
        inter_group_bandwidth=network.bandwidth,
        inter_group_latency=network.latency,
        microbatch_overhead=plan.microbatch_overhead,
        schedule=plan.schedule_name,
        num_model_chunks=plan.num_model_chunks,
        recompute=plan.recompute,
        overlap=overlap,
    )
    rng = np.random.default_rng(seed)
    samples = [
        schedule.total * max(float(rng.normal(1.0, overheads.noise)), 0.5)
        for _ in range(max(1, iterations))
    ]
    return HierarchicalSimulationResult(
        total=float(np.mean(samples)),
        schedule=schedule,
        stage_times=stage_times,
        samples=samples,
    )
