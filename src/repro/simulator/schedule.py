"""Pipeline-schedule subsystem: time *and* memory of pipelined SPMD stages.

Flat HAP executes one SPMD program on the whole cluster; the hierarchical
planner instead runs one SPMD program per machine group and pipelines
microbatches through them.  This module simulates such an iteration for three
schedules sharing one fill/steady/drain dependency engine:

* ``gpipe`` — all microbatch forwards fill the pipeline front to back, all
  backwards drain it in reverse microbatch order.  Simple, but every stage
  stashes the activations of all ``m`` in-flight microbatches, so the
  activation footprint grows linearly with the microbatch count.
* ``1f1b`` — PipeDream-style one-forward-one-backward: stage ``i`` warms up
  with ``min(s - 1 - i, m)`` forwards and then alternates one forward with
  one backward, so at most ``min(s - i, m)`` microbatches are ever in flight.
  On balanced stages with negligible transfers it matches GPipe's fill/drain
  critical path exactly (with heavy transfers or skewed stages the strict
  alternation can serialise slightly differently, in either direction); its
  real win is that the activation footprint is bounded by the pipeline depth
  ``s`` instead of ``m`` — which is what makes large microbatch counts
  feasible at all.
* ``interleaved-1f1b`` — Megatron-LM's interleaved schedule: each stage hosts
  ``v`` model chunks of roughly ``1/v`` of its work, shrinking the warm-up
  bubble by roughly ``v`` at the price of ``v`` times more boundary
  crossings.  The warm-up depth follows Megatron's
  ``2*(s - i - 1) + (v - 1)*s`` formula (the in-flight peak is one more).

Each :class:`StageTimes` may carry **per-chunk profiles**
(:class:`ChunkTimes`): real forward/backward times, boundary bytes and
activation bytes for every model chunk resident on the stage, as produced by
the hierarchical planner's per-chunk flat-HAP programs.  The dependency
engine then times every virtual stage with its own chunk's numbers, and every
virtual boundary — including the wrap-around hop from the last physical stage
back to stage 0 between chunks — with the true bytes of that cut.  (Earlier
revisions modelled chunks as ``v`` equal slices and faked the wrap hop with
the mean interior boundary; that approximation is gone.)  When per-chunk
profiles are absent the chunks fall back to equal slices of the stage
aggregate and every hop of stage ``i`` — wrap hops included — carries the
stage's own ``send_bytes``; exact interleaved estimates require real chunks.

Every schedule reports per-stage **peak memory**: the peak bytes of the
activation stash actually observed during the dependency simulation (each
in-flight task stashes *its own chunk's* bytes, so unbalanced chunks are
accounted exactly), plus the stage's resident weight/optimizer-state bytes.
An optional activation-recomputation mode re-runs the forward before each
backward (one extra forward per microbatch), shrinking the per-task stash to
the chunk's boundary input.

Boundary transfers are modelled as **asynchronous events on the sender's
communication stream**: a stage's compute stream is free the moment a task
ends — its next task runs while the previous microbatch's output is still in
flight — and an ``overlap`` efficiency lets each send stream out during the
tail of its producing task, shrinking the exposed latency on the dependency
edge to ``xfer - overlap * min(xfer, producer_time)`` (1F1B steady state and
interleaved wrap hops alike).  ``overlap = 0`` reproduces the fully blocking
results exactly; results report exposed vs hidden transfer seconds and
per-stage communication-stream load.

This module is deliberately free of imports from the rest of the package: it
consumes plain per-stage timings (:class:`StageTimes`) that either the cost
model (planning estimates) or the execution simulator (measurements) can
produce, so the planner and the simulator share one schedule implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union


@dataclass(frozen=True)
class ChunkTimes:
    """Timing and memory of *one model chunk* of a stage, full mini-batch.

    Attributes:
        forward: forward time of the chunk program for the whole mini-batch
            (scaled by ``1/num_microbatches`` per microbatch).
        backward: backward (gradient) time for the whole mini-batch.
        send_bytes: activation bytes this chunk hands to the **next virtual
            stage** for the whole mini-batch — for a chunk on the last
            physical stage that is the wrap-around hop back to physical
            stage 0 (the backward pass returns gradients of the same size).
        activation_bytes: forward activation bytes the chunk stashes for its
            backward pass, for the whole mini-batch.
    """

    forward: float
    backward: float
    send_bytes: float = 0.0
    activation_bytes: float = 0.0


@dataclass(frozen=True)
class StageTimes:
    """Timing and memory inputs of one pipeline stage, for the *full* mini-batch.

    Attributes:
        forward: forward time of the stage program for the whole mini-batch
            (scaled by ``1/num_microbatches`` per microbatch), summed over
            the stage's model chunks.
        backward: backward (gradient) time for the whole mini-batch.
        sync: once-per-iteration work — parameter collectives, gradient
            all-reduce and optimizer updates — paid after the stage drains.
        send_bytes: activation bytes this stage sends to the next stage for
            the whole mini-batch (the backward pass returns gradients of the
            same size).
        activation_bytes: forward activation bytes the stage must stash for
            its backward pass, for the whole mini-batch (each in-flight
            microbatch holds one chunk's share of this).
        weight_bytes: resident parameter + gradient + optimizer-state bytes
            of the stage, independent of the schedule.
        chunks: optional per-model-chunk profiles.  When an interleaved
            schedule runs with ``v`` chunks, either every stage provides
            exactly ``v`` :class:`ChunkTimes` (exact per-chunk simulation) or
            none does (equal-slice fallback, see the module docstring).
    """

    forward: float
    backward: float
    sync: float = 0.0
    send_bytes: float = 0.0
    activation_bytes: float = 0.0
    weight_bytes: float = 0.0
    chunks: Optional[Tuple[ChunkTimes, ...]] = None

    @property
    def total(self) -> float:
        return self.forward + self.backward + self.sync


@dataclass
class ScheduleResult:
    """Outcome of one pipelined iteration.

    Attributes:
        total: per-iteration wall-clock time.
        num_microbatches: microbatch count the schedule ran with.
        schedule: name of the schedule that produced this result.
        stage_finish: per-stage time at which the stage (including its
            gradient sync) finished.
        stage_busy: per-stage busy seconds (compute + sync, excluding idle).
        bubble: mean per-stage idle time within the iteration, in seconds.
        bubble_fraction: ``bubble / total`` (0 for a single stage).
        transfer: total activation+gradient transfer seconds on the critical
            path accounting (sum over boundaries and microbatches).
        peak_inflight: per-stage maximum number of in-flight tasks
            (microbatch x chunk forwards without a matching backward yet)
            observed during the simulated iteration.
        peak_stash: per-stage peak bytes of the activation stash alone —
            every in-flight task contributes its own chunk's per-microbatch
            activation bytes (or boundary-input bytes under recomputation,
            plus the chunk being rematerialised during its backward).
        peak_memory: per-stage peak bytes — ``weight_bytes + peak_stash``.
        recompute: whether activation recomputation was modelled.
        num_model_chunks: model chunks per stage (1 unless interleaved).
        overlap: communication/computation overlap efficiency the schedule
            ran with (0 = fully blocking boundary transfers).
        exposed_transfer: transfer seconds left on the dependency edges after
            overlapping each send with the tail of its producing task.
        hidden_transfer: transfer seconds hidden behind producing compute
            (``exposed_transfer + hidden_transfer == transfer``).
        comm_busy: per-physical-stage seconds the stage's communication
            stream spends sending activations/gradients downstream/upstream.
    """

    total: float
    num_microbatches: int
    schedule: str = "gpipe"
    stage_finish: List[float] = field(default_factory=list)
    stage_busy: List[float] = field(default_factory=list)
    bubble: float = 0.0
    bubble_fraction: float = 0.0
    transfer: float = 0.0
    peak_inflight: List[int] = field(default_factory=list)
    peak_stash: List[float] = field(default_factory=list)
    peak_memory: List[float] = field(default_factory=list)
    recompute: bool = False
    num_model_chunks: int = 1
    overlap: float = 0.0
    exposed_transfer: float = 0.0
    hidden_transfer: float = 0.0
    comm_busy: List[float] = field(default_factory=list)


#: A task is (kind, chunk, microbatch); kind is "F" or "B".
_Task = Tuple[str, int, int]


def _chunk_profiles(
    stages: Sequence[StageTimes], num_chunks: int
) -> List[Tuple[ChunkTimes, ...]]:
    """Per-stage tuples of exactly ``num_chunks`` chunk profiles.

    Stages carrying real per-chunk profiles must match the schedule's chunk
    count exactly; a stage without profiles falls back to ``num_chunks``
    equal slices of its aggregates, every slice sending the stage's own
    ``send_bytes`` on its outgoing hop (wrap hops included — there is no
    synthetic wrap boundary any more, so exact interleaved estimates need
    real chunk data).
    """
    profiles: List[Tuple[ChunkTimes, ...]] = []
    for i, st in enumerate(stages):
        if st.chunks is not None:
            if len(st.chunks) != num_chunks:
                raise ValueError(
                    f"stage {i} provides {len(st.chunks)} chunk profiles but the "
                    f"schedule runs {num_chunks} model chunks per stage"
                )
            profiles.append(tuple(st.chunks))
        else:
            profiles.append(
                tuple(
                    ChunkTimes(
                        forward=st.forward / num_chunks,
                        backward=st.backward / num_chunks,
                        send_bytes=st.send_bytes,
                        activation_bytes=st.activation_bytes / num_chunks,
                    )
                    for _ in range(num_chunks)
                )
            )
    return profiles


def _validate_inputs(
    stages: Sequence[StageTimes], num_microbatches: int, inter_group_bandwidth: float
) -> None:
    if num_microbatches < 1:
        raise ValueError("num_microbatches must be >= 1")
    if not stages:
        raise ValueError("stages must be non-empty")
    if len(stages) > 1 and inter_group_bandwidth <= 0:
        raise ValueError(
            "inter_group_bandwidth must be > 0 for multi-stage pipelines "
            f"(got {inter_group_bandwidth!r}); activations cannot cross a "
            "zero-bandwidth inter-group link"
        )


class PipelineSchedule:
    """Base class: one microbatch schedule over ``s`` pipeline stages.

    Subclasses provide :meth:`task_orders` — for every physical stage, the
    sequence of per-microbatch forward/backward tasks in execution order —
    and the shared dependency engine in :meth:`simulate` computes start and
    finish times, transfer load, bubble and peak memory from it.
    """

    name: str = "abstract"
    num_model_chunks: int = 1

    # -- schedule-specific pieces -------------------------------------------------
    def task_orders(
        self, num_stages: int, num_microbatches: int, num_chunks: int
    ) -> List[List[_Task]]:
        raise NotImplementedError

    def validate(self, num_stages: int, num_microbatches: int) -> None:
        """Reject (s, m) combinations the schedule cannot run."""

    # -- shared dependency engine -------------------------------------------------
    def simulate(
        self,
        stages: Sequence[StageTimes],
        num_microbatches: int,
        inter_group_bandwidth: float,
        inter_group_latency: float = 0.0,
        microbatch_overhead: float = 0.0,
        recompute: bool = False,
        overlap: float = 0.0,
    ) -> ScheduleResult:
        """Simulate one pipelined iteration over the given stages.

        Per-microbatch forward/backward times of virtual stage ``k`` are its
        chunk's full-batch times divided by ``num_microbatches`` plus a fixed
        ``microbatch_overhead`` (kernel-launch / scheduling cost that does
        not shrink with the microbatch).  A transfer of the producing chunk's
        ``send_bytes / num_microbatches`` over the inter-group link separates
        adjacent virtual stages in both directions — interleaved wrap hops
        (physical ``s-1 -> 0``) carry their chunk's true boundary bytes.
        With one stage and one microbatch the schedule degenerates to
        ``forward + backward + sync`` — the flat SPMD time.

        Boundary transfers are asynchronous events on the sender's
        communication stream: the sender's compute stream is free as soon as
        the producing task ends (its next task runs while the output is in
        flight), and with ``overlap > 0`` the send additionally streams out
        during the tail of the producing task itself, so only
        ``xfer - overlap * min(xfer, producer_time)`` separates the producer
        from its consumer on the dependency edge.  ``overlap = 0`` reduces
        exactly to the blocking model (the consumer waits the full transfer
        after the producer finishes).
        """
        _validate_inputs(stages, num_microbatches, inter_group_bandwidth)
        if not 0.0 <= overlap <= 1.0:
            raise ValueError(f"overlap must be in [0, 1], got {overlap!r}")
        s = len(stages)
        m = num_microbatches
        v = self.num_model_chunks if s > 1 else 1
        self.validate(s, m)
        total_virtual = s * v
        chunks = _chunk_profiles(stages, v)

        def chunk_of(k: int) -> ChunkTimes:
            return chunks[k % s][k // s]

        fwd = [chunk_of(k).forward / m + microbatch_overhead for k in range(total_virtual)]
        bwd = [chunk_of(k).backward / m + microbatch_overhead for k in range(total_virtual)]
        if recompute:
            # Gradient checkpointing: re-run the chunk forward before each
            # backward so only the boundary input has to stay resident.
            bwd = [b + f for b, f in zip(bwd, fwd)]

        # Per-microbatch transfer time after virtual stage k (k -> k+1),
        # carrying the producing chunk's boundary bytes.
        xfer = [
            inter_group_latency + (chunk_of(k).send_bytes / m) / inter_group_bandwidth
            for k in range(total_virtual - 1)
        ]
        # Exposed per-microbatch transfer on each dependency edge: the part of
        # hop k's send that cannot stream out during its producing task.  The
        # forward producer of hop k is virtual stage k; the backward producer
        # is virtual stage k+1's backward.
        hidden_f = [overlap * min(xfer[k], fwd[k]) for k in range(total_virtual - 1)]
        hidden_b = [overlap * min(xfer[k], bwd[k + 1]) for k in range(total_virtual - 1)]
        exposed_f = [x - h for x, h in zip(xfer, hidden_f)]
        exposed_b = [x - h for x, h in zip(xfer, hidden_b)]

        # Per-task stash bytes: without recomputation an in-flight task holds
        # its chunk's activations; with recomputation only the chunk's
        # boundary input (the previous virtual stage's send) stays, and the
        # chunk's activations are transiently rematerialised in its backward.
        def act_task(k: int) -> float:
            return chunk_of(k).activation_bytes / m

        def recv_task(k: int) -> float:
            return chunk_of(k - 1).send_bytes / m if k > 0 else 0.0

        stash_task = recv_task if recompute else act_task

        orders = self.task_orders(s, m, v)
        finish_f: Dict[Tuple[int, int], float] = {}
        finish_b: Dict[Tuple[int, int], float] = {}
        heads = [0] * s
        busy = [0.0] * s
        inflight = [0] * s
        peak_inflight = [1 if m > 0 else 0 for _ in range(s)]
        stash = [0.0] * s
        peak_stash = [0.0] * s
        remaining = sum(len(o) for o in orders)

        def _ready_time(phys: int, task: _Task) -> Optional[float]:
            kind, chunk, j = task
            k = chunk * s + phys
            if kind == "F":
                if k == 0:
                    return 0.0
                dep = finish_f.get((k - 1, j))
                return None if dep is None else dep + exposed_f[k - 1]
            own = finish_f.get((k, j))
            if own is None:
                return None
            if k == total_virtual - 1:
                return own
            dep = finish_b.get((k + 1, j))
            return None if dep is None else max(own, dep + exposed_b[k])

        while remaining:
            best: Optional[Tuple[float, int, _Task]] = None
            for i in range(s):
                if heads[i] >= len(orders[i]):
                    continue
                task = orders[i][heads[i]]
                ready = _ready_time(i, task)
                if ready is None:
                    continue
                start = max(ready, busy[i])
                if best is None or start < best[0]:
                    best = (start, i, task)
            if best is None:  # pragma: no cover - defensive (orders are valid)
                raise RuntimeError(
                    f"pipeline schedule {self.name!r} deadlocked with "
                    f"{remaining} tasks left (s={s}, m={m}, v={v})"
                )
            start, i, (kind, chunk, j) = best
            k = chunk * s + i
            if kind == "F":
                end = start + fwd[k]
                finish_f[(k, j)] = end
                inflight[i] += 1
                peak_inflight[i] = max(peak_inflight[i], inflight[i])
                stash[i] += stash_task(k)
                peak_stash[i] = max(peak_stash[i], stash[i])
            else:
                end = start + bwd[k]
                finish_b[(k, j)] = end
                inflight[i] -= 1
                if recompute:
                    # The chunk's activations live again while its backward
                    # rematerialises them on top of the boundary stashes.
                    peak_stash[i] = max(peak_stash[i], stash[i] + act_task(k))
                stash[i] -= stash_task(k)
            busy[i] = end
            heads[i] += 1
            remaining -= 1

        stage_finish = [busy[i] + stages[i].sync for i in range(s)]
        total = max(stage_finish)
        stage_busy = [
            m * sum(fwd[c * s + i] + bwd[c * s + i] for c in range(v)) + stages[i].sync
            for i in range(s)
        ]
        bubble = sum(max(total - b, 0.0) for b in stage_busy) / s
        transfer = 2.0 * m * sum(xfer) if s > 1 else 0.0
        hidden = m * (sum(hidden_f) + sum(hidden_b)) if s > 1 else 0.0
        # Sender-side communication-stream load: virtual stage k ships its
        # forward output from physical stage k % s, and its backward gradient
        # for hop k - 1 from physical stage k % s as well.
        comm_busy = [0.0] * s
        if s > 1:
            for k in range(total_virtual - 1):
                comm_busy[k % s] += m * xfer[k]  # forward sends of hop k
                comm_busy[(k + 1) % s] += m * xfer[k]  # gradient sends of hop k

        peak_memory = [st.weight_bytes + peak_stash[i] for i, st in enumerate(stages)]

        return ScheduleResult(
            total=total,
            num_microbatches=m,
            schedule=self.name,
            stage_finish=stage_finish,
            stage_busy=stage_busy,
            bubble=bubble,
            bubble_fraction=bubble / total if total > 0 else 0.0,
            transfer=transfer,
            peak_inflight=peak_inflight,
            peak_stash=list(peak_stash),
            peak_memory=peak_memory,
            recompute=recompute,
            num_model_chunks=v,
            overlap=overlap,
            exposed_transfer=transfer - hidden,
            hidden_transfer=hidden,
            comm_busy=comm_busy,
        )


class GPipeSchedule(PipelineSchedule):
    """GPipe: fill with all forwards, drain with all backwards (reversed)."""

    name = "gpipe"

    def task_orders(self, s: int, m: int, v: int) -> List[List[_Task]]:
        return [
            [("F", 0, j) for j in range(m)] + [("B", 0, j) for j in reversed(range(m))]
            for _ in range(s)
        ]


class OneFOneBSchedule(PipelineSchedule):
    """PipeDream-flush / Megatron 1F1B: bounded-depth steady state."""

    name = "1f1b"

    def task_orders(self, s: int, m: int, v: int) -> List[List[_Task]]:
        orders: List[List[_Task]] = []
        for i in range(s):
            warmup = min(s - 1 - i, m)
            order: List[_Task] = [("F", 0, j) for j in range(warmup)]
            for j in range(m - warmup):
                order.append(("F", 0, warmup + j))
                order.append(("B", 0, j))
            order.extend(("B", 0, j) for j in range(m - warmup, m))
            orders.append(order)
        return orders


class InterleavedOneFOneBSchedule(PipelineSchedule):
    """Megatron-LM interleaved 1F1B over ``num_model_chunks`` chunks per stage.

    Requires ``num_microbatches`` to be a multiple of the stage count (the
    same restriction as Megatron-LM); the planner snaps its candidates
    accordingly.  Task enumeration follows Megatron's ``schedules.py``:
    forwards advance in groups of ``s`` microbatches chunk by chunk, the
    warm-up depth of stage ``i`` is ``2*(s - i - 1) + (v - 1)*s``, and
    backwards mirror the forwards with the chunk order reversed.
    """

    name = "interleaved-1f1b"

    def __init__(self, num_model_chunks: int = 2) -> None:
        if num_model_chunks < 1:
            raise ValueError("num_model_chunks must be >= 1")
        self.num_model_chunks = num_model_chunks

    def validate(self, s: int, m: int) -> None:
        # Megatron's grouped microbatch enumeration needs m % s == 0; with a
        # single chunk the schedule *is* plain 1F1B (see task_orders), which
        # runs any microbatch count.
        if self.num_model_chunks > 1 and s > 1 and m % s != 0:
            raise ValueError(
                f"interleaved-1f1b needs num_microbatches divisible by the "
                f"stage count (got m={m}, s={s})"
            )

    def _enumerate(self, s: int, m: int, v: int, forward: bool) -> List[Tuple[int, int]]:
        """(chunk, microbatch) pairs in Megatron execution order."""
        pairs: List[Tuple[int, int]] = []
        group = 0
        while group * s < m:
            width = min(s, m - group * s)
            chunks = range(v) if forward else reversed(range(v))
            for c in chunks:
                for slot in range(width):
                    pairs.append((c, group * s + slot))
            group += 1
        return pairs

    def task_orders(self, s: int, m: int, v: int) -> List[List[_Task]]:
        if v == 1:
            # One chunk per stage is exactly plain 1F1B; emit its task order
            # (Megatron's 2*(s - i - 1) warm-up depth is an artefact of the
            # grouped enumeration and would stash twice as much) so that the
            # degenerate case reduces to the 1F1B path instead of a deeper
            # lookalike.
            return OneFOneBSchedule().task_orders(s, m, v)
        orders: List[List[_Task]] = []
        for i in range(s):
            fs = self._enumerate(s, m, v, forward=True)
            bs = self._enumerate(s, m, v, forward=False)
            warmup = min(2 * (s - i - 1) + (v - 1) * s, len(fs))
            order: List[_Task] = [("F", c, j) for c, j in fs[:warmup]]
            steady = len(fs) - warmup
            for n in range(steady):
                c, j = fs[warmup + n]
                order.append(("F", c, j))
                bc, bj = bs[n]
                order.append(("B", bc, bj))
            order.extend(("B", c, j) for c, j in bs[steady:])
            orders.append(order)
        return orders


#: Registry of the schedules the planner searches over.
SCHEDULE_NAMES = ["gpipe", "1f1b", "interleaved-1f1b"]


def get_schedule(name: str, num_model_chunks: int = 2) -> PipelineSchedule:
    """Look up a schedule implementation by name."""
    if name == "gpipe":
        return GPipeSchedule()
    if name == "1f1b":
        return OneFOneBSchedule()
    if name == "interleaved-1f1b":
        return InterleavedOneFOneBSchedule(num_model_chunks=num_model_chunks)
    raise KeyError(f"unknown pipeline schedule {name!r}; known: {SCHEDULE_NAMES}")


def simulate_pipeline(
    stages: Sequence[StageTimes],
    num_microbatches: int,
    inter_group_bandwidth: float,
    inter_group_latency: float = 0.0,
    microbatch_overhead: float = 0.0,
    schedule: Union[str, PipelineSchedule] = "gpipe",
    num_model_chunks: int = 1,
    recompute: bool = False,
    overlap: float = 0.0,
) -> ScheduleResult:
    """Simulate one pipelined iteration (GPipe by default, for compatibility).

    Args:
        stages: per-stage full-batch timings and memory inputs; attach
            :class:`ChunkTimes` profiles (``StageTimes.chunks``) for exact
            per-chunk interleaved simulation.
        num_microbatches: microbatches per iteration.
        inter_group_bandwidth: point-to-point bytes/s between adjacent stages;
            must be positive when there is more than one stage.
        inter_group_latency: per-transfer latency in seconds.
        microbatch_overhead: fixed per-microbatch (per-chunk) launch cost.
        schedule: schedule name (see :data:`SCHEDULE_NAMES`) or instance.
        num_model_chunks: chunks per stage for ``interleaved-1f1b``.
        recompute: model activation recomputation (one extra forward per
            microbatch, O(1) activation stash per in-flight microbatch).
        overlap: communication/computation overlap efficiency in ``[0, 1]``;
            each boundary transfer streams out during the tail of its
            producing task, exposing only ``xfer - overlap * min(xfer,
            producer_time)`` on the dependency edge.  0 (the default here;
            the hierarchical planner passes the cluster's efficiency) is the
            blocking model.

    Returns:
        The :class:`ScheduleResult`; ``total`` is the iteration time.
    """
    if isinstance(schedule, PipelineSchedule):
        impl = schedule
    else:
        impl = get_schedule(schedule, num_model_chunks=max(1, num_model_chunks))
    return impl.simulate(
        stages,
        num_microbatches,
        inter_group_bandwidth,
        inter_group_latency=inter_group_latency,
        microbatch_overhead=microbatch_overhead,
        recompute=recompute,
        overlap=overlap,
    )
