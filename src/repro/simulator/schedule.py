"""Pipeline-schedule simulator: iteration time of pipelined SPMD stages.

Flat HAP executes one SPMD program on the whole cluster; the hierarchical
planner instead runs one SPMD program per machine group and pipelines
microbatches through them.  This module computes the per-iteration time of
such a plan with a discrete GPipe-style schedule: microbatch forwards fill the
pipeline front to back, backwards drain it in reverse microbatch order
(1F1B's steady state has the same per-stage work and the same drain critical
path, so the fill/drain accounting below covers both), and each stage finally
performs its once-per-iteration gradient synchronisation.  Bubble (idle ramp
time), activation/gradient point-to-point transfers over the inter-group link
and per-microbatch launch overheads are all modelled explicitly.

This module is deliberately free of imports from the rest of the package: it
consumes plain per-stage timings (:class:`StageTimes`) that either the cost
model (planning estimates) or the execution simulator (measurements) can
produce, so the planner and the simulator share one schedule implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass(frozen=True)
class StageTimes:
    """Timing inputs of one pipeline stage, for the *full* mini-batch.

    Attributes:
        forward: forward time of the stage program for the whole mini-batch
            (scaled by ``1/num_microbatches`` per microbatch).
        backward: backward (gradient) time for the whole mini-batch.
        sync: once-per-iteration work — parameter collectives, gradient
            all-reduce and optimizer updates — paid after the stage drains.
        send_bytes: activation bytes this stage sends to the next stage for
            the whole mini-batch (the backward pass returns gradients of the
            same size).
    """

    forward: float
    backward: float
    sync: float = 0.0
    send_bytes: float = 0.0

    @property
    def total(self) -> float:
        return self.forward + self.backward + self.sync


@dataclass
class ScheduleResult:
    """Outcome of one pipelined iteration.

    Attributes:
        total: per-iteration wall-clock time.
        num_microbatches: microbatch count the schedule ran with.
        stage_finish: per-stage time at which the stage (including its
            gradient sync) finished.
        stage_busy: per-stage busy seconds (compute + sync, excluding idle).
        bubble: mean per-stage idle time within the iteration, in seconds.
        bubble_fraction: ``bubble / total`` (0 for a single stage).
        transfer: total activation+gradient transfer seconds on the critical
            path accounting (sum over boundaries and microbatches).
    """

    total: float
    num_microbatches: int
    stage_finish: List[float] = field(default_factory=list)
    stage_busy: List[float] = field(default_factory=list)
    bubble: float = 0.0
    bubble_fraction: float = 0.0
    transfer: float = 0.0


def simulate_pipeline(
    stages: Sequence[StageTimes],
    num_microbatches: int,
    inter_group_bandwidth: float,
    inter_group_latency: float = 0.0,
    microbatch_overhead: float = 0.0,
) -> ScheduleResult:
    """Simulate one GPipe iteration over the given stages.

    Per-microbatch forward/backward times are the full-batch times divided by
    ``num_microbatches`` plus a fixed ``microbatch_overhead`` (kernel-launch /
    scheduling cost that does not shrink with the microbatch).  A transfer of
    ``send_bytes / num_microbatches`` over the inter-group link separates
    adjacent stages in both directions.  With one stage the schedule
    degenerates to ``forward + backward + sync`` — the flat SPMD time.

    Returns:
        The :class:`ScheduleResult`; ``total`` is the iteration time.
    """
    if num_microbatches < 1:
        raise ValueError("num_microbatches must be >= 1")
    if not stages:
        raise ValueError("stages must be non-empty")
    s = len(stages)
    m = num_microbatches
    fwd = [st.forward / m + microbatch_overhead for st in stages]
    bwd = [st.backward / m + microbatch_overhead for st in stages]
    # Per-microbatch transfer time from stage i to stage i+1 (and back).
    xfer = [
        0.0
        if i == s - 1
        else inter_group_latency + (stages[i].send_bytes / m) / inter_group_bandwidth
        for i in range(s)
    ]

    # Forward fill: stage i starts microbatch j when its previous microbatch
    # is done and the activation from stage i-1 has arrived.
    finish_f = [[0.0] * m for _ in range(s)]
    busy_until = [0.0] * s
    for j in range(m):
        for i in range(s):
            ready = finish_f[i - 1][j] + xfer[i - 1] if i > 0 else 0.0
            start = max(ready, busy_until[i])
            finish_f[i][j] = start + fwd[i]
            busy_until[i] = finish_f[i][j]

    # Backward drain in reverse microbatch order: stage i starts microbatch j
    # when the gradient from stage i+1 has arrived (last stage: when its own
    # forward is done).
    finish_b = [[0.0] * m for _ in range(s)]
    for j in reversed(range(m)):
        for i in reversed(range(s)):
            if i == s - 1:
                ready = finish_f[i][j]
            else:
                ready = finish_b[i + 1][j] + xfer[i]
            start = max(ready, busy_until[i])
            finish_b[i][j] = start + bwd[i]
            busy_until[i] = finish_b[i][j]

    stage_finish = [busy_until[i] + stages[i].sync for i in range(s)]
    total = max(stage_finish)
    stage_busy = [m * (fwd[i] + bwd[i]) + stages[i].sync for i in range(s)]
    bubble = sum(max(total - b, 0.0) for b in stage_busy) / s
    transfer = 2.0 * m * sum(xfer[:-1]) if s > 1 else 0.0
    return ScheduleResult(
        total=total,
        num_microbatches=m,
        stage_finish=stage_finish,
        stage_busy=stage_busy,
        bubble=bubble,
        bubble_fraction=bubble / total if total > 0 else 0.0,
        transfer=transfer,
    )
