"""Pipeline-schedule subsystem: time *and* memory of pipelined SPMD stages.

Flat HAP executes one SPMD program on the whole cluster; the hierarchical
planner instead runs one SPMD program per machine group and pipelines
microbatches through them.  This module simulates such an iteration for three
schedules sharing one fill/steady/drain dependency engine:

* ``gpipe`` — all microbatch forwards fill the pipeline front to back, all
  backwards drain it in reverse microbatch order.  Simple, but every stage
  stashes the activations of all ``m`` in-flight microbatches, so the
  activation footprint grows linearly with the microbatch count.
* ``1f1b`` — PipeDream-style one-forward-one-backward: stage ``i`` warms up
  with ``min(s - 1 - i, m)`` forwards and then alternates one forward with
  one backward, so at most ``min(s - i, m)`` microbatches are ever in flight.
  On balanced stages with negligible transfers it matches GPipe's fill/drain
  critical path exactly (with heavy transfers or skewed stages the strict
  alternation can serialise slightly differently, in either direction); its
  real win is that the activation footprint is bounded by the pipeline depth
  ``s`` instead of ``m`` — which is what makes large microbatch counts
  feasible at all.
* ``interleaved-1f1b`` — Megatron-LM's interleaved schedule: each stage hosts
  ``v`` model chunks of ``1/v`` of its work, shrinking the warm-up bubble by
  roughly ``v`` at the price of ``v`` times more boundary crossings.  The
  warm-up depth follows Megatron's ``2*(s - i - 1) + (v - 1)*s`` formula
  (the in-flight peak is one more).  The per-chunk boundary bytes
  are approximated by the adjacent physical cut (wrap-around hops use the
  mean interior boundary), since the planner only cuts the model ``s`` ways.

Every schedule reports per-stage **peak memory**: the maximum number of
concurrently stashed microbatches observed during the dependency simulation,
times the per-microbatch activation bytes, plus the stage's resident
weight/optimizer-state bytes.  An optional activation-recomputation mode
re-runs the forward before each backward (one extra forward per microbatch),
shrinking the per-microbatch stash to the stage's boundary input.

This module is deliberately free of imports from the rest of the package: it
consumes plain per-stage timings (:class:`StageTimes`) that either the cost
model (planning estimates) or the execution simulator (measurements) can
produce, so the planner and the simulator share one schedule implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union


@dataclass(frozen=True)
class StageTimes:
    """Timing and memory inputs of one pipeline stage, for the *full* mini-batch.

    Attributes:
        forward: forward time of the stage program for the whole mini-batch
            (scaled by ``1/num_microbatches`` per microbatch).
        backward: backward (gradient) time for the whole mini-batch.
        sync: once-per-iteration work — parameter collectives, gradient
            all-reduce and optimizer updates — paid after the stage drains.
        send_bytes: activation bytes this stage sends to the next stage for
            the whole mini-batch (the backward pass returns gradients of the
            same size).
        activation_bytes: forward activation bytes the stage must stash for
            its backward pass, for the whole mini-batch (each in-flight
            microbatch holds ``1/num_microbatches`` of this).
        weight_bytes: resident parameter + gradient + optimizer-state bytes
            of the stage, independent of the schedule.
    """

    forward: float
    backward: float
    sync: float = 0.0
    send_bytes: float = 0.0
    activation_bytes: float = 0.0
    weight_bytes: float = 0.0

    @property
    def total(self) -> float:
        return self.forward + self.backward + self.sync


@dataclass
class ScheduleResult:
    """Outcome of one pipelined iteration.

    Attributes:
        total: per-iteration wall-clock time.
        num_microbatches: microbatch count the schedule ran with.
        schedule: name of the schedule that produced this result.
        stage_finish: per-stage time at which the stage (including its
            gradient sync) finished.
        stage_busy: per-stage busy seconds (compute + sync, excluding idle).
        bubble: mean per-stage idle time within the iteration, in seconds.
        bubble_fraction: ``bubble / total`` (0 for a single stage).
        transfer: total activation+gradient transfer seconds on the critical
            path accounting (sum over boundaries and microbatches).
        peak_inflight: per-stage maximum number of microbatches whose
            activations (or boundary stashes under recomputation) were alive
            at once during the simulated iteration.
        peak_memory: per-stage peak bytes — ``weight_bytes`` plus the
            activation stash at the in-flight peak (see module docstring).
        recompute: whether activation recomputation was modelled.
        num_model_chunks: model chunks per stage (1 unless interleaved).
    """

    total: float
    num_microbatches: int
    schedule: str = "gpipe"
    stage_finish: List[float] = field(default_factory=list)
    stage_busy: List[float] = field(default_factory=list)
    bubble: float = 0.0
    bubble_fraction: float = 0.0
    transfer: float = 0.0
    peak_inflight: List[int] = field(default_factory=list)
    peak_memory: List[float] = field(default_factory=list)
    recompute: bool = False
    num_model_chunks: int = 1


#: A task is (kind, chunk, microbatch); kind is "F" or "B".
_Task = Tuple[str, int, int]


def peak_stage_memory(
    weight_bytes: float,
    activation_bytes: float,
    recv_bytes: float,
    inflight: int,
    num_microbatches: int,
    num_chunks: int,
    recompute: bool,
) -> float:
    """Peak resident bytes of one stage under a schedule's in-flight count.

    The single source of truth for the memory model: resident weight state
    plus the activation stash at the in-flight peak.  Without recomputation
    every in-flight microbatch holds one chunk's activations
    (``activation_bytes / (m * v)``); with recomputation only the boundary
    input (``recv_bytes / m``) stays per in-flight microbatch, plus one
    chunk's activations being rematerialised during its backward.  The
    planner calls this per device with ratio-weighted byte counts; the
    schedule simulator calls it with group aggregates.
    """
    m = max(1, num_microbatches)
    v = max(1, num_chunks)
    act_task = activation_bytes / (m * v)
    if recompute:
        return weight_bytes + inflight * (recv_bytes / m) + act_task
    return weight_bytes + inflight * act_task


def _validate_inputs(
    stages: Sequence[StageTimes], num_microbatches: int, inter_group_bandwidth: float
) -> None:
    if num_microbatches < 1:
        raise ValueError("num_microbatches must be >= 1")
    if not stages:
        raise ValueError("stages must be non-empty")
    if len(stages) > 1 and inter_group_bandwidth <= 0:
        raise ValueError(
            "inter_group_bandwidth must be > 0 for multi-stage pipelines "
            f"(got {inter_group_bandwidth!r}); activations cannot cross a "
            "zero-bandwidth inter-group link"
        )


class PipelineSchedule:
    """Base class: one microbatch schedule over ``s`` pipeline stages.

    Subclasses provide :meth:`task_orders` — for every physical stage, the
    sequence of per-microbatch forward/backward tasks in execution order —
    and the shared dependency engine in :meth:`simulate` computes start and
    finish times, transfer load, bubble and peak memory from it.
    """

    name: str = "abstract"
    num_model_chunks: int = 1

    # -- schedule-specific pieces -------------------------------------------------
    def task_orders(
        self, num_stages: int, num_microbatches: int, num_chunks: int
    ) -> List[List[_Task]]:
        raise NotImplementedError

    def validate(self, num_stages: int, num_microbatches: int) -> None:
        """Reject (s, m) combinations the schedule cannot run."""

    # -- shared dependency engine -------------------------------------------------
    def simulate(
        self,
        stages: Sequence[StageTimes],
        num_microbatches: int,
        inter_group_bandwidth: float,
        inter_group_latency: float = 0.0,
        microbatch_overhead: float = 0.0,
        recompute: bool = False,
    ) -> ScheduleResult:
        """Simulate one pipelined iteration over the given stages.

        Per-microbatch (and per-chunk) forward/backward times are the
        full-batch times divided by ``num_microbatches * num_model_chunks``
        plus a fixed ``microbatch_overhead`` (kernel-launch / scheduling cost
        that does not shrink with the microbatch).  A transfer of
        ``send_bytes / num_microbatches`` over the inter-group link separates
        adjacent stages in both directions.  With one stage and one
        microbatch the schedule degenerates to ``forward + backward + sync``
        — the flat SPMD time.
        """
        _validate_inputs(stages, num_microbatches, inter_group_bandwidth)
        s = len(stages)
        m = num_microbatches
        v = self.num_model_chunks if s > 1 else 1
        self.validate(s, m)
        total_virtual = s * v

        fwd = [st.forward / (m * v) + microbatch_overhead for st in stages]
        bwd = [st.backward / (m * v) + microbatch_overhead for st in stages]
        if recompute:
            # Gradient checkpointing: re-run the chunk forward before each
            # backward so only the boundary input has to stay resident.
            bwd = [b + f for b, f in zip(bwd, fwd)]

        # Per-microbatch transfer time after virtual stage k (k -> k+1).  The
        # interior hop (physical i -> i+1) carries the i-th cut's bytes; the
        # interleaved wrap hop (physical s-1 -> 0, next chunk) is approximated
        # with the mean interior boundary.
        interior = [st.send_bytes for st in stages[:-1]]
        wrap_bytes = (sum(interior) / len(interior)) if interior else 0.0
        xfer: List[float] = []
        for k in range(total_virtual - 1):
            i = k % s
            nbytes = interior[i] if i < s - 1 else wrap_bytes
            xfer.append(inter_group_latency + (nbytes / m) / inter_group_bandwidth)

        orders = self.task_orders(s, m, v)
        finish_f: Dict[Tuple[int, int], float] = {}
        finish_b: Dict[Tuple[int, int], float] = {}
        heads = [0] * s
        busy = [0.0] * s
        inflight = [0] * s
        peak_inflight = [1 if m > 0 else 0 for _ in range(s)]
        remaining = sum(len(o) for o in orders)

        def _ready_time(phys: int, task: _Task) -> Optional[float]:
            kind, chunk, j = task
            k = chunk * s + phys
            if kind == "F":
                if k == 0:
                    return 0.0
                dep = finish_f.get((k - 1, j))
                return None if dep is None else dep + xfer[k - 1]
            own = finish_f.get((k, j))
            if own is None:
                return None
            if k == total_virtual - 1:
                return own
            dep = finish_b.get((k + 1, j))
            return None if dep is None else max(own, dep + xfer[k])

        while remaining:
            best: Optional[Tuple[float, int, _Task]] = None
            for i in range(s):
                if heads[i] >= len(orders[i]):
                    continue
                task = orders[i][heads[i]]
                ready = _ready_time(i, task)
                if ready is None:
                    continue
                start = max(ready, busy[i])
                if best is None or start < best[0]:
                    best = (start, i, task)
            if best is None:  # pragma: no cover - defensive (orders are valid)
                raise RuntimeError(
                    f"pipeline schedule {self.name!r} deadlocked with "
                    f"{remaining} tasks left (s={s}, m={m}, v={v})"
                )
            start, i, (kind, chunk, j) = best
            k = chunk * s + i
            if kind == "F":
                end = start + fwd[i]
                finish_f[(k, j)] = end
                inflight[i] += 1
                peak_inflight[i] = max(peak_inflight[i], inflight[i])
            else:
                end = start + bwd[i]
                finish_b[(k, j)] = end
                inflight[i] -= 1
            busy[i] = end
            heads[i] += 1
            remaining -= 1

        stage_finish = [busy[i] + stages[i].sync for i in range(s)]
        total = max(stage_finish)
        stage_busy = [m * v * (fwd[i] + bwd[i]) + stages[i].sync for i in range(s)]
        bubble = sum(max(total - b, 0.0) for b in stage_busy) / s
        transfer = 2.0 * m * sum(xfer) if s > 1 else 0.0

        peak_memory = [
            peak_stage_memory(
                weight_bytes=st.weight_bytes,
                activation_bytes=st.activation_bytes,
                recv_bytes=stages[i - 1].send_bytes if i > 0 else 0.0,
                inflight=peak_inflight[i],
                num_microbatches=m,
                num_chunks=v,
                recompute=recompute,
            )
            for i, st in enumerate(stages)
        ]

        return ScheduleResult(
            total=total,
            num_microbatches=m,
            schedule=self.name,
            stage_finish=stage_finish,
            stage_busy=stage_busy,
            bubble=bubble,
            bubble_fraction=bubble / total if total > 0 else 0.0,
            transfer=transfer,
            peak_inflight=peak_inflight,
            peak_memory=peak_memory,
            recompute=recompute,
            num_model_chunks=v,
        )


class GPipeSchedule(PipelineSchedule):
    """GPipe: fill with all forwards, drain with all backwards (reversed)."""

    name = "gpipe"

    def task_orders(self, s: int, m: int, v: int) -> List[List[_Task]]:
        return [
            [("F", 0, j) for j in range(m)] + [("B", 0, j) for j in reversed(range(m))]
            for _ in range(s)
        ]


class OneFOneBSchedule(PipelineSchedule):
    """PipeDream-flush / Megatron 1F1B: bounded-depth steady state."""

    name = "1f1b"

    def task_orders(self, s: int, m: int, v: int) -> List[List[_Task]]:
        orders: List[List[_Task]] = []
        for i in range(s):
            warmup = min(s - 1 - i, m)
            order: List[_Task] = [("F", 0, j) for j in range(warmup)]
            for j in range(m - warmup):
                order.append(("F", 0, warmup + j))
                order.append(("B", 0, j))
            order.extend(("B", 0, j) for j in range(m - warmup, m))
            orders.append(order)
        return orders


class InterleavedOneFOneBSchedule(PipelineSchedule):
    """Megatron-LM interleaved 1F1B over ``num_model_chunks`` chunks per stage.

    Requires ``num_microbatches`` to be a multiple of the stage count (the
    same restriction as Megatron-LM); the planner snaps its candidates
    accordingly.  Task enumeration follows Megatron's ``schedules.py``:
    forwards advance in groups of ``s`` microbatches chunk by chunk, the
    warm-up depth of stage ``i`` is ``2*(s - i - 1) + (v - 1)*s``, and
    backwards mirror the forwards with the chunk order reversed.
    """

    name = "interleaved-1f1b"

    def __init__(self, num_model_chunks: int = 2) -> None:
        if num_model_chunks < 1:
            raise ValueError("num_model_chunks must be >= 1")
        self.num_model_chunks = num_model_chunks

    def validate(self, s: int, m: int) -> None:
        if s > 1 and m % s != 0:
            raise ValueError(
                f"interleaved-1f1b needs num_microbatches divisible by the "
                f"stage count (got m={m}, s={s})"
            )

    def _enumerate(self, s: int, m: int, v: int, forward: bool) -> List[Tuple[int, int]]:
        """(chunk, microbatch) pairs in Megatron execution order."""
        pairs: List[Tuple[int, int]] = []
        group = 0
        while group * s < m:
            width = min(s, m - group * s)
            chunks = range(v) if forward else reversed(range(v))
            for c in chunks:
                for slot in range(width):
                    pairs.append((c, group * s + slot))
            group += 1
        return pairs

    def task_orders(self, s: int, m: int, v: int) -> List[List[_Task]]:
        orders: List[List[_Task]] = []
        for i in range(s):
            fs = self._enumerate(s, m, v, forward=True)
            bs = self._enumerate(s, m, v, forward=False)
            warmup = min(2 * (s - i - 1) + (v - 1) * s, len(fs))
            order: List[_Task] = [("F", c, j) for c, j in fs[:warmup]]
            steady = len(fs) - warmup
            for n in range(steady):
                c, j = fs[warmup + n]
                order.append(("F", c, j))
                bc, bj = bs[n]
                order.append(("B", bc, bj))
            order.extend(("B", c, j) for c, j in bs[steady:])
            orders.append(order)
        return orders


#: Registry of the schedules the planner searches over.
SCHEDULE_NAMES = ["gpipe", "1f1b", "interleaved-1f1b"]


def get_schedule(name: str, num_model_chunks: int = 2) -> PipelineSchedule:
    """Look up a schedule implementation by name."""
    if name == "gpipe":
        return GPipeSchedule()
    if name == "1f1b":
        return OneFOneBSchedule()
    if name == "interleaved-1f1b":
        return InterleavedOneFOneBSchedule(num_model_chunks=num_model_chunks)
    raise KeyError(f"unknown pipeline schedule {name!r}; known: {SCHEDULE_NAMES}")


def simulate_pipeline(
    stages: Sequence[StageTimes],
    num_microbatches: int,
    inter_group_bandwidth: float,
    inter_group_latency: float = 0.0,
    microbatch_overhead: float = 0.0,
    schedule: Union[str, PipelineSchedule] = "gpipe",
    num_model_chunks: int = 1,
    recompute: bool = False,
) -> ScheduleResult:
    """Simulate one pipelined iteration (GPipe by default, for compatibility).

    Args:
        stages: per-stage full-batch timings and memory inputs.
        num_microbatches: microbatches per iteration.
        inter_group_bandwidth: point-to-point bytes/s between adjacent stages;
            must be positive when there is more than one stage.
        inter_group_latency: per-transfer latency in seconds.
        microbatch_overhead: fixed per-microbatch (per-chunk) launch cost.
        schedule: schedule name (see :data:`SCHEDULE_NAMES`) or instance.
        num_model_chunks: chunks per stage for ``interleaved-1f1b``.
        recompute: model activation recomputation (one extra forward per
            microbatch, O(1) activation stash per in-flight microbatch).

    Returns:
        The :class:`ScheduleResult`; ``total`` is the iteration time.
    """
    if isinstance(schedule, PipelineSchedule):
        impl = schedule
    else:
        impl = get_schedule(schedule, num_model_chunks=max(1, num_model_chunks))
    return impl.simulate(
        stages,
        num_microbatches,
        inter_group_bandwidth,
        inter_group_latency=inter_group_latency,
        microbatch_overhead=microbatch_overhead,
        recompute=recompute,
    )
