"""Execution simulator: the reproduction's stand-in for running on GPUs."""

from .engine import (
    ExecutionSimulator,
    HierarchicalSimulationResult,
    OverheadModel,
    SimulationResult,
    simulate_hierarchical,
    simulate_plan,
)
from .schedule import ScheduleResult, StageTimes, simulate_pipeline

__all__ = [
    "ExecutionSimulator",
    "OverheadModel",
    "SimulationResult",
    "simulate_plan",
    "HierarchicalSimulationResult",
    "simulate_hierarchical",
    "ScheduleResult",
    "StageTimes",
    "simulate_pipeline",
]
