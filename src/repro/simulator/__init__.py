"""Execution simulator: the reproduction's stand-in for running on GPUs."""

from ..cluster.spec import DEFAULT_COMM_OVERLAP_EFFICIENCY, CommOverlapModel
from .engine import (
    ExecutionSimulator,
    HierarchicalSimulationResult,
    OverheadModel,
    SimulationResult,
    simulate_hierarchical,
    simulate_plan,
)
from .schedule import (
    SCHEDULE_NAMES,
    ChunkTimes,
    GPipeSchedule,
    InterleavedOneFOneBSchedule,
    OneFOneBSchedule,
    PipelineSchedule,
    ScheduleResult,
    StageTimes,
    get_schedule,
    simulate_pipeline,
)

__all__ = [
    "CommOverlapModel",
    "DEFAULT_COMM_OVERLAP_EFFICIENCY",
    "ExecutionSimulator",
    "OverheadModel",
    "SimulationResult",
    "simulate_plan",
    "HierarchicalSimulationResult",
    "simulate_hierarchical",
    "SCHEDULE_NAMES",
    "PipelineSchedule",
    "GPipeSchedule",
    "OneFOneBSchedule",
    "InterleavedOneFOneBSchedule",
    "get_schedule",
    "ScheduleResult",
    "StageTimes",
    "ChunkTimes",
    "simulate_pipeline",
]
