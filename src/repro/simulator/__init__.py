"""Execution simulator: the reproduction's stand-in for running on GPUs."""

from .engine import ExecutionSimulator, OverheadModel, SimulationResult, simulate_plan

__all__ = ["ExecutionSimulator", "OverheadModel", "SimulationResult", "simulate_plan"]
