"""Reproduction of HAP: SPMD DNN training on heterogeneous GPU clusters with
automated program synthesis (EuroSys 2024).

The top-level package exposes the user-facing API (:func:`repro.hap.hap`,
analogous to the paper's ``hap.HAP`` entry point) plus the main building
blocks: the tensor-program IR (:mod:`repro.graph`), the cluster model
(:mod:`repro.cluster`), the program synthesizer and load balancer
(:mod:`repro.core`), baselines (:mod:`repro.baselines`) and the experiment
harness (:mod:`repro.experiments`).
"""

__version__ = "1.0.0"

__all__ = [
    "graph",
    "autodiff",
    "runtime",
    "cluster",
    "collectives",
    "core",
    "models",
    "baselines",
    "experiments",
    "hap",
]
