"""Comparison harness: plan and simulate HAP and the baselines on one workload.

This module is the reproduction of the paper's ``run_all worker.py`` /
``ddp.py`` / ``run_all_deepspeed`` scripts: for a given model and cluster it
produces one per-iteration training time per system.  Planning happens with
the corresponding planner (full HAP or a restricted baseline) and "measured"
times come from the execution simulator, which plays the role of the real
64-GPU testbed (see DESIGN.md for the substitution argument).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence

from ..autodiff import build_training_graph
from ..baselines import BaselinePlan, plan_baseline
from ..cluster.spec import ClusterSpec
from ..core.config import PlannerConfig, SynthesisConfig
from ..core.hierarchical import HierarchicalConfig, HierarchicalPlan
from ..graph.graph import ComputationGraph
from ..models import BenchmarkScale, build_model
from ..simulator import ExecutionSimulator, simulate_hierarchical

#: Systems compared in Figs. 13-14 (TAG only supports VGG19 and BERT-Base in
#: the paper; DP baselines go out of memory on BERT-MoE).  ``HAP-Pipeline``
#: (hierarchical pipeline-over-SPMD planning) is opt-in: it additionally needs
#: the forward graph, which the harness builds from ``model_name``.
DEFAULT_SYSTEMS = ["HAP", "DP-EV", "DP-CP", "DeepSpeed", "TAG"]


def default_planner_config(beam_width: Optional[int] = None, max_rounds: int = 2) -> PlannerConfig:
    """Planner configuration used by the experiment harness.

    The beam width can be overridden with the ``REPRO_BEAM_WIDTH`` environment
    variable and the number of (Q, B) rounds with ``REPRO_MAX_ROUNDS`` so that
    the benchmark suite can trade fidelity for runtime.
    """
    beam = beam_width or int(os.environ.get("REPRO_BEAM_WIDTH", "16"))
    rounds = int(os.environ.get("REPRO_MAX_ROUNDS", str(max_rounds)))
    config = PlannerConfig(max_rounds=rounds)
    config.synthesis.beam_width = beam
    return config


@dataclass
class SystemResult:
    """Outcome of one system on one workload.

    Attributes:
        system: system name (HAP or a baseline).
        simulated_time: per-iteration time on the simulated cluster, in
            seconds (None when the configuration runs out of memory).
        estimated_time: the planner's own cost-model estimate.
        out_of_memory: True if the per-device memory estimate exceeds capacity.
        num_collectives: number of collective instructions in the program.
        comm_kinds: histogram of collective kinds.
        planning_seconds: wall-clock planning time.
    """

    system: str
    simulated_time: Optional[float]
    estimated_time: float
    out_of_memory: bool
    num_collectives: int
    comm_kinds: Dict[str, int] = field(default_factory=dict)
    planning_seconds: float = 0.0

    @property
    def throughput(self) -> float:
        """Iterations per second (0 when OOM)."""
        if self.simulated_time is None or self.simulated_time <= 0:
            return 0.0
        return 1.0 / self.simulated_time


@dataclass
class ComparisonResult:
    """All systems' results for one (model, cluster) workload."""

    model: str
    num_gpus: int
    cluster: str
    results: Dict[str, SystemResult]

    def time_of(self, system: str) -> Optional[float]:
        result = self.results.get(system)
        return result.simulated_time if result else None

    def best_baseline(self) -> Optional[SystemResult]:
        """The fastest non-HAP system that does not run out of memory."""
        candidates = [
            r
            for name, r in self.results.items()
            if name not in ("HAP", "HAP-Pipeline")
            and r.simulated_time is not None
            and not r.out_of_memory
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda r: r.simulated_time)

    def hap_speedup(self) -> Optional[float]:
        """Speed-up of HAP over the best baseline (the paper's headline metric)."""
        hap = self.results.get("HAP")
        best = self.best_baseline()
        if hap is None or best is None or hap.simulated_time in (None, 0.0):
            return None
        return best.simulated_time / hap.simulated_time


def compare_systems(
    model_name: str,
    cluster: ClusterSpec,
    num_gpus: Optional[int] = None,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    scale: Optional[BenchmarkScale] = None,
    planner_config: Optional[PlannerConfig] = None,
    synthesis_config: Optional[SynthesisConfig] = None,
    training_graph: Optional[ComputationGraph] = None,
    forward_graph: Optional[ComputationGraph] = None,
    hierarchical_config: Optional[HierarchicalConfig] = None,
    simulator_seed: int = 0,
    simulation_iterations: int = 3,
) -> ComparisonResult:
    """Plan and simulate every requested system on one workload.

    Args:
        model_name: benchmark model name or paper alias.
        cluster: target cluster.
        num_gpus: number of GPUs for weak scaling (defaults to the cluster's).
        systems: which systems to evaluate.
        scale: model scale (paper or reduced).
        planner_config: configuration for the HAP planner.
        synthesis_config: configuration shared by baseline planners.
        training_graph: pre-built training graph (overrides ``model_name``
            construction; used to avoid rebuilding across systems).
        forward_graph: pre-built forward graph (required for ``HAP-Pipeline``
            when ``training_graph`` is supplied; stages are differentiated
            individually from it).
        hierarchical_config: configuration of the ``HAP-Pipeline`` planner;
            defaults to ``HierarchicalConfig(planner=planner_config)``.
        simulator_seed: RNG seed of the execution simulator.
        simulation_iterations: iterations averaged by the simulator.

    Returns:
        A :class:`ComparisonResult` with one entry per system.
    """
    import time as _time

    num_gpus = num_gpus or cluster.num_gpus
    if training_graph is None:
        if forward_graph is None:
            forward_graph = build_model(model_name, num_gpus=num_gpus, scale=scale)
        training_graph = build_training_graph(forward_graph).graph
    planner_config = planner_config or default_planner_config()
    synthesis_config = synthesis_config or replace(
        planner_config.synthesis, force_data_parallel=False
    )
    simulator = ExecutionSimulator(cluster, seed=simulator_seed)

    results: Dict[str, SystemResult] = {}
    for system in systems:
        start = _time.perf_counter()
        if system == "HAP-Pipeline":
            if forward_graph is None:
                raise ValueError(
                    "HAP-Pipeline needs the forward graph; pass forward_graph= "
                    "alongside training_graph="
                )
            config = hierarchical_config or HierarchicalConfig(planner=planner_config)
            hplan: HierarchicalPlan = plan_baseline(system, forward_graph, cluster, config)
            planning_seconds = _time.perf_counter() - start
            oom = _hierarchical_out_of_memory(hplan)
            simulated = None
            if not oom:
                simulated = simulate_hierarchical(
                    hplan, iterations=simulation_iterations, seed=simulator_seed
                ).total
            results[system] = SystemResult(
                system=system,
                simulated_time=simulated,
                estimated_time=hplan.estimated_time,
                out_of_memory=oom,
                num_collectives=hplan.num_communications,
                comm_kinds=hplan.communication_kinds(),
                planning_seconds=planning_seconds,
            )
            continue
        if system == "HAP":
            plan: BaselinePlan = plan_baseline(system, training_graph, cluster, planner_config)
        else:
            plan = plan_baseline(system, training_graph, cluster, synthesis_config)
        planning_seconds = _time.perf_counter() - start
        simulated = None
        if not plan.out_of_memory:
            simulated = simulator.simulate(
                plan.program, plan.flat_ratios, iterations=simulation_iterations
            ).total
        results[system] = SystemResult(
            system=system,
            simulated_time=simulated,
            estimated_time=plan.estimated_time.total,
            out_of_memory=plan.out_of_memory,
            num_collectives=plan.program.num_communications,
            comm_kinds=plan.program.communication_kinds(),
            planning_seconds=planning_seconds,
        )
    return ComparisonResult(
        model=model_name,
        num_gpus=num_gpus,
        cluster=cluster.name,
        results=results,
    )


def _hierarchical_out_of_memory(plan: HierarchicalPlan) -> bool:
    """True if any pipeline stage exceeds its machine group's memory.

    The hierarchical planner performs schedule-aware accounting (in-flight
    microbatch activations plus resident parameter state, per device) for
    every candidate and records the verdict on the plan; a plan flagged
    infeasible means *no* (schedule, microbatch, recomputation) combination
    fit, so the workload is reported as OOM like the flat baselines.

    Note the model is deliberately stricter than the flat baselines'
    :func:`~repro.baselines.planners.estimate_memory_per_device`, whose 0.25
    activation discount approximates fusion/rematerialisation: pipeline
    stages must genuinely stash in-flight activations until their backward,
    so near the boundary a 1-stage pipeline plan can be flagged OOM where
    the discounted flat estimate is not.
    """
    return not plan.fits_memory


def format_comparison(comparison: ComparisonResult) -> str:
    """Render one comparison as the per-iteration-time table of Fig. 13/14."""
    lines = [
        f"{comparison.model} on {comparison.cluster} ({comparison.num_gpus} GPUs)",
        f"  {'system':12s} {'sim time (ms)':>14s} {'est time (ms)':>14s} {'collectives':>12s}",
    ]
    for name, result in comparison.results.items():
        sim = "OOM" if result.simulated_time is None else f"{result.simulated_time * 1e3:.1f}"
        lines.append(
            f"  {name:12s} {sim:>14s} {result.estimated_time * 1e3:>14.1f} "
            f"{result.num_collectives:>12d}"
        )
    speedup = comparison.hap_speedup()
    if speedup is not None:
        lines.append(f"  HAP speed-up over best baseline: {speedup:.2f}x")
    return "\n".join(lines)
