"""Regenerators for every table and figure of the paper's evaluation.

Each ``figNN_*`` function returns a list of row dictionaries (one per plotted
point / table cell) so the benchmark harness can both print them and assert
the qualitative shape the paper reports.  All functions accept size parameters
so the full paper-scale sweep and a CI-sized sweep share the same code path.
"""

from __future__ import annotations

import time as _time
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..autodiff import build_training_graph
from ..baselines import plan_baseline
from ..cluster.spec import (
    ClusterSpec,
    a100_p100_pair,
    a100_pair,
    heterogeneous_testbed,
    homogeneous_testbed,
    p100_a100_mixed,
)
from ..collectives.cost import CollectiveCostModel, CollectiveKind
from ..core.config import PlannerConfig, SynthesisConfig
from ..core.costmodel import CostModel
from ..core.pipeline import HAPPlanner
from ..core.synthesizer import ProgramSynthesizer
from ..graph.builder import GraphBuilder
from ..graph.tensor import DType
from ..models import (
    BenchmarkScale,
    BERTConfig,
    BERTMoEConfig,
    ViTConfig,
    build_bert,
    build_bert_moe,
    build_model,
    build_vit,
    table1_inventory,
)
from ..simulator import ExecutionSimulator
from .harness import ComparisonResult, compare_systems, default_planner_config

Row = Dict[str, object]


def format_rows(rows: Sequence[Row], title: str = "") -> str:
    """Render rows as an aligned text table."""
    if not rows:
        return f"{title}\n  (no rows)"
    columns = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), max(len(_fmt(r.get(c))) for r in rows)) for c in columns
    }
    lines = []
    if title:
        lines.append(title)
    lines.append("  " + "  ".join(str(c).ljust(widths[c]) for c in columns))
    for row in rows:
        lines.append("  " + "  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


# ---------------------------------------------------------------------------
# Table 1 — benchmark models
# ---------------------------------------------------------------------------

def table1_models(num_gpus: int = 8) -> List[Row]:
    """Table 1: benchmark models and their parameter counts."""
    paper = {"vgg19": 133.0, "vit": 54.0, "bert_base": 102.0, "bert_moe": 84.0 + 36.0 * num_gpus}
    rows: List[Row] = []
    for info in table1_inventory(num_gpus=num_gpus):
        rows.append(
            {
                "model": info.name,
                "task": info.task,
                "parameters_millions": round(info.parameters_millions, 1),
                "paper_parameters_millions": paper.get(info.name, float("nan")),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Fig. 2 — CP vs EV sharding ratios while varying the comp/comm ratio
# ---------------------------------------------------------------------------

def _model_parallel_transformer(batch: int, seq: int, hidden: int, heads: int):
    """One-layer transformer used by the Fig. 2 motivation experiment."""
    b = GraphBuilder(f"fig2_transformer_h{hidden}")
    x = b.placeholder((batch, seq, hidden), name="activations")
    y = b.transformer_layer(x, num_heads=heads, ffn_hidden=hidden * 4)
    y = b.reshape(y, (batch * seq, hidden))
    logits = b.linear(y, 32)
    labels2d = b.placeholder((batch, seq), dtype=DType.INT64, name="labels")
    labels = b.reshape(labels2d, (batch * seq,))
    loss = b.cross_entropy(logits, labels)
    b.loss(loss)
    return b.build()


def fig2_sharding_ratio_tradeoff(
    hidden_sizes: Sequence[int] = (256, 1024, 2048, 4096),
    batch: int = 32,
    seq: int = 64,
    heads: int = 8,
    cluster: Optional[ClusterSpec] = None,
) -> List[Row]:
    """Fig. 2: computation-proportional (CP) vs even (EV) sharding ratios.

    A Transformer layer is trained with intra-op model parallelism on one
    P100 pair plus one A100 pair; sweeping the hidden size changes the
    computation-to-communication ratio.  CP should win when computation
    dominates and EV when communication dominates.

    The default cluster uses a 25 GB/s effective interconnect: the original
    experiment communicates mostly over NVLink/PCIe inside the two machines,
    which our flat network model folds into a single effective bandwidth (see
    DESIGN.md).
    """
    if cluster is None:
        from ..cluster.spec import NetworkSpec

        cluster = p100_a100_mixed()
        cluster = ClusterSpec(
            cluster.machines,
            network=NetworkSpec(bandwidth=25e9, latency=2e-5),
            group_by_machine=False,
            name="fig2-p100-a100",
        )
    config = SynthesisConfig(
        enable_replicated_sources=False, enable_sfb=False, beam_width=8
    )
    rows: List[Row] = []
    simulator = ExecutionSimulator(cluster, seed=0)
    for hidden in hidden_sizes:
        graph = build_training_graph(
            _model_parallel_transformer(batch, seq, hidden, heads)
        ).graph
        synthesizer = ProgramSynthesizer(graph, cluster, config)
        program = synthesizer.synthesize(cluster.proportional_ratios()).program
        cost_model = CostModel(graph, cluster)
        cp = cluster.proportional_ratios()
        ev = cluster.even_ratios()
        cp_cost = cost_model.evaluate(program, cp)
        time_cp = simulator.simulate(program, cp, iterations=2).total
        time_ev = simulator.simulate(program, ev, iterations=2).total
        comp_comm = cp_cost.computation / max(cp_cost.communication, 1e-12)
        rows.append(
            {
                "hidden": hidden,
                "comp_to_comm_ratio": round(comp_comm, 3),
                "time_cp_ms": time_cp * 1e3,
                "time_ev_ms": time_ev * 1e3,
                "winner": "CP" if time_cp < time_ev else "EV",
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Fig. 4 — padded All-Gather vs grouped Broadcast
# ---------------------------------------------------------------------------

def fig4_all_gather_variants(
    tensor_bytes: float = 4e6,
    max_ratios: Sequence[float] = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    cluster: Optional[ClusterSpec] = None,
) -> List[Row]:
    """Fig. 4: effective bandwidth of the two All-Gather implementations.

    The largest shard is placed on the first device and the rest is split
    evenly, exactly as in the paper's micro-benchmark on 2x2 A100 machines.
    """
    cluster = cluster or a100_pair()
    model = CollectiveCostModel(cluster)
    n = cluster.num_devices
    rows: List[Row] = []
    for max_ratio in max_ratios:
        max_ratio = min(max(max_ratio, 1.0 / n), 1.0)
        rest = (1.0 - max_ratio) / (n - 1) if n > 1 else 0.0
        ratios = [max_ratio] + [rest] * (n - 1)
        padded = model.effective_bandwidth(CollectiveKind.ALL_GATHER, tensor_bytes, ratios)
        grouped = model.effective_bandwidth(
            CollectiveKind.ALL_GATHER_GROUPED, tensor_bytes, ratios
        )
        rows.append(
            {
                "max_ratio": max_ratio,
                "padded_all_gather_gbps": padded / 1e9,
                "grouped_broadcast_gbps": grouped / 1e9,
                "winner": "padded" if padded >= grouped else "grouped",
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figs. 13 & 14 — end-to-end training time vs baselines
# ---------------------------------------------------------------------------

def fig13_heterogeneous_cluster(
    models: Sequence[str] = ("vgg19", "vit", "bert_base", "bert_moe"),
    gpu_counts: Sequence[int] = (8, 16, 32, 64),
    systems: Optional[Sequence[str]] = None,
    scale: Optional[BenchmarkScale] = None,
    planner_config: Optional[PlannerConfig] = None,
) -> List[Row]:
    """Fig. 13: per-iteration time on the heterogeneous V100+P100 cluster."""
    scale = scale or BenchmarkScale.reduced()
    rows: List[Row] = []
    for model in models:
        model_systems = list(systems) if systems else _systems_for(model)
        for gpus in gpu_counts:
            cluster = heterogeneous_testbed(gpus)
            comparison = compare_systems(
                model,
                cluster,
                num_gpus=gpus,
                systems=model_systems,
                scale=scale,
                planner_config=planner_config,
            )
            rows.extend(_comparison_rows(comparison))
    return rows


def fig14_homogeneous_cluster(
    models: Sequence[str] = ("vgg19", "vit", "bert_base", "bert_moe"),
    gpu_counts: Sequence[int] = (8, 16, 24, 32),
    systems: Optional[Sequence[str]] = None,
    scale: Optional[BenchmarkScale] = None,
    planner_config: Optional[PlannerConfig] = None,
) -> List[Row]:
    """Fig. 14: per-iteration time on the homogeneous P100 cluster.

    DP-CP equals DP-EV on a homogeneous cluster and is therefore omitted,
    matching the paper.
    """
    scale = scale or BenchmarkScale.reduced()
    rows: List[Row] = []
    for model in models:
        model_systems = [s for s in (systems or _systems_for(model)) if s != "DP-CP"]
        for gpus in gpu_counts:
            cluster = homogeneous_testbed(gpus)
            comparison = compare_systems(
                model,
                cluster,
                num_gpus=gpus,
                systems=model_systems,
                scale=scale,
                planner_config=planner_config,
            )
            rows.extend(_comparison_rows(comparison))
    return rows


def _systems_for(model: str) -> List[str]:
    """Which systems the paper evaluates for each model (Sec. 7.1)."""
    systems = ["HAP", "DP-EV", "DP-CP", "DeepSpeed"]
    if model in ("vgg19", "bert_base"):
        systems.append("TAG")
    return systems


def _comparison_rows(comparison: ComparisonResult) -> List[Row]:
    rows: List[Row] = []
    for system, result in comparison.results.items():
        rows.append(
            {
                "model": comparison.model,
                "gpus": comparison.num_gpus,
                "system": system,
                "per_iteration_ms": (
                    None if result.simulated_time is None else result.simulated_time * 1e3
                ),
                "oom": result.out_of_memory,
                "collectives": result.num_collectives,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Fig. 15 — ablation of HAP's components
# ---------------------------------------------------------------------------

def fig15_ablation(
    models: Sequence[str] = ("vgg19", "vit", "bert_base", "bert_moe"),
    num_gpus: int = 64,
    scale: Optional[BenchmarkScale] = None,
    beam_width: int = 16,
) -> List[Row]:
    """Fig. 15: throughput contribution of the synthesizer (Q), the load
    balancer (B) and the communication optimisations (C), relative to DP-EV."""
    scale = scale or BenchmarkScale.reduced()
    cluster = heterogeneous_testbed(num_gpus)
    simulator = ExecutionSimulator(cluster, seed=0)
    rows: List[Row] = []
    for model in models:
        forward = build_model(model, num_gpus=num_gpus, scale=scale)
        graph = build_training_graph(forward).graph
        throughputs: Dict[str, float] = {}

        # DP-EV reference.
        dp = plan_baseline("DP-EV", graph, cluster, SynthesisConfig(beam_width=beam_width))
        throughputs["DP-EV"] = _throughput(simulator, dp)

        # Q: synthesizer only (even ratios, no communication optimisation).
        q_cfg = PlannerConfig(max_rounds=1, enable_load_balancer=False)
        q_cfg.synthesis = SynthesisConfig(
            beam_width=beam_width, enable_sfb=False, enable_grouped_all_gather=False
        )
        q_plan = HAPPlanner(graph, cluster, q_cfg).plan()
        throughputs["Q"] = 1.0 / simulator.simulate(q_plan.program, cluster.even_ratios(), 2).total

        # Q+B: add the LP load balancer.
        qb_cfg = PlannerConfig(max_rounds=2)
        qb_cfg.synthesis = SynthesisConfig(
            beam_width=beam_width, enable_sfb=False, enable_grouped_all_gather=False
        )
        qb_plan = HAPPlanner(graph, cluster, qb_cfg).plan()
        throughputs["Q+B"] = 1.0 / simulator.simulate(qb_plan.program, qb_plan.flat_ratios, 2).total

        # Q+B+C: full HAP (adds SFB and the grouped All-Gather).
        full_cfg = PlannerConfig(max_rounds=2)
        full_cfg.synthesis = SynthesisConfig(beam_width=beam_width)
        full_plan = HAPPlanner(graph, cluster, full_cfg).plan()
        throughputs["Q+B+C"] = 1.0 / simulator.simulate(
            full_plan.program, full_plan.flat_ratios, 2
        ).total

        reference = throughputs["Q+B+C"]
        for config_name, value in throughputs.items():
            rows.append(
                {
                    "model": model,
                    "config": config_name,
                    "throughput_iter_per_s": value,
                    "relative_to_full_hap_pct": 100.0 * value / reference if reference else 0.0,
                }
            )
    return rows


def _throughput(simulator: ExecutionSimulator, plan) -> float:
    if plan.out_of_memory:
        return 0.0
    return 1.0 / simulator.simulate(plan.program, plan.flat_ratios, iterations=2).total


# ---------------------------------------------------------------------------
# Fig. 16 — concurrent training on homogeneous subsets vs HAP
# ---------------------------------------------------------------------------

def fig16_concurrent_training(
    models: Sequence[str] = ("vgg19", "vit", "bert_base", "bert_moe"),
    scale: Optional[BenchmarkScale] = None,
    planner_config: Optional[PlannerConfig] = None,
    gpus_per_machine: int = 8,
) -> List[Row]:
    """Fig. 16: total throughput of two concurrent jobs on homogeneous subsets
    (2 V100 machines + 6 P100 machines) vs one HAP job on the whole cluster.

    Throughput is measured in samples per second (global batch / iteration
    time) and normalised by the concurrent total, as in the paper.
    """
    scale = scale or BenchmarkScale.reduced()
    planner_config = planner_config or default_planner_config()
    whole = heterogeneous_testbed(8 * gpus_per_machine, gpus_per_machine=gpus_per_machine)
    v100_machines = [m for m in whole.machines if m.gpu.name == "V100"]
    p100_machines = [m for m in whole.machines if m.gpu.name == "P100"]
    v100_cluster = ClusterSpec(v100_machines, network=whole.network, name="v100-subset")
    p100_cluster = ClusterSpec(p100_machines, network=whole.network, name="p100-subset")

    rows: List[Row] = []
    for model in models:
        per_device_batch = {"bert_moe": 32}.get(model, 64)

        def job_throughput(
            cluster: ClusterSpec,
            model: str = model,
            per_device_batch: int = per_device_batch,
        ) -> float:
            gpus = cluster.num_gpus
            forward = build_model(model, num_gpus=gpus, scale=scale)
            graph = build_training_graph(forward).graph
            plan = plan_baseline("HAP", graph, cluster, planner_config)
            sim = ExecutionSimulator(cluster, seed=0).simulate(
                plan.program, plan.flat_ratios, iterations=2
            )
            return per_device_batch * gpus / sim.total

        concurrent_v100 = job_throughput(v100_cluster)
        concurrent_p100 = job_throughput(p100_cluster)
        hap_throughput = job_throughput(whole)
        concurrent_total = concurrent_v100 + concurrent_p100
        rows.append(
            {
                "model": model,
                "concurrent_v100_samples_per_s": concurrent_v100,
                "concurrent_p100_samples_per_s": concurrent_p100,
                "hap_samples_per_s": hap_throughput,
                "hap_relative_pct": 100.0 * hap_throughput / concurrent_total,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Fig. 17 — uneven placement of experts
# ---------------------------------------------------------------------------

def fig17_uneven_experts(
    expert_counts: Sequence[int] = (4, 8, 12, 16, 20, 24, 28, 32),
    tokens_per_expert: int = 64,
    hidden_size: int = 256,
    num_layers: int = 2,
    seq_len: int = 32,
    planner_config: Optional[PlannerConfig] = None,
) -> List[Row]:
    """Fig. 17: BERT-MoE with varying expert counts on 2 A100 + 2 P100 GPUs.

    The token count is kept proportional to the expert count (constant load
    per expert).  DeepSpeed-style expert parallelism pads the expert count to
    a multiple of the device count; HAP places experts unevenly without
    padding and gives more experts to the faster GPUs.
    """
    cluster = a100_p100_pair()
    planner_config = planner_config or default_planner_config()
    simulator = ExecutionSimulator(cluster, seed=0)
    num_devices = cluster.num_devices
    rows: List[Row] = []
    for experts in expert_counts:
        batch = max(1, tokens_per_expert * experts // seq_len)

        def moe_graph(num_experts: int):
            config = BERTMoEConfig(
                batch_size=batch,
                seq_len=seq_len,
                hidden_size=hidden_size,
                num_layers=num_layers,
                num_heads=4,
                mlp_ratio=4,
                vocab_size=8192,
                num_experts=num_experts,
            )
            return build_training_graph(build_bert_moe(config)).graph

        hap_plan = plan_baseline("HAP", moe_graph(experts), cluster, planner_config)
        hap_time = simulator.simulate(hap_plan.program, hap_plan.flat_ratios, 2).total

        padded = ((experts + num_devices - 1) // num_devices) * num_devices
        ds_plan = plan_baseline(
            "DeepSpeed", moe_graph(padded), cluster, planner_config.synthesis
        )
        ds_time = simulator.simulate(ds_plan.program, ds_plan.flat_ratios, 2).total

        rows.append(
            {
                "experts": experts,
                "padded_experts": padded,
                "hap_ms": hap_time * 1e3,
                "deepspeed_ms": ds_time * 1e3,
                "hap_speedup": ds_time / hap_time if hap_time else float("nan"),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Fig. 18 — cost-model accuracy
# ---------------------------------------------------------------------------

def fig18_cost_model_accuracy(
    layer_counts: Sequence[int] = (2, 4, 6),
    hidden_sizes: Sequence[int] = (256, 512, 768),
    seq_lens: Sequence[int] = (64, 128),
    num_gpus: int = 16,
    planner_config: Optional[PlannerConfig] = None,
) -> List[Row]:
    """Fig. 18: estimated vs simulated ("actual") per-iteration time.

    BERT variants with different layer counts, widths and sequence lengths are
    planned by HAP; the plan's cost-model estimate is compared against the
    execution simulator, and the Pearson correlation over all variants is
    attached to every row.
    """
    cluster = heterogeneous_testbed(num_gpus)
    planner_config = planner_config or default_planner_config()
    simulator = ExecutionSimulator(cluster, seed=0)
    rows: List[Row] = []
    estimates: List[float] = []
    actuals: List[float] = []
    for layers in layer_counts:
        for hidden in hidden_sizes:
            for seq in seq_lens:
                config = BERTConfig(
                    batch_size=32 * num_gpus,
                    seq_len=seq,
                    hidden_size=hidden,
                    num_layers=layers,
                    num_heads=max(4, hidden // 64),
                    vocab_size=8192,
                )
                graph = build_training_graph(build_bert(config, name=f"bert_{layers}l_{hidden}h_{seq}s")).graph
                plan = plan_baseline("HAP", graph, cluster, planner_config)
                actual = simulator.simulate(plan.program, plan.flat_ratios, 2).total
                estimates.append(plan.estimated_time.total)
                actuals.append(actual)
                rows.append(
                    {
                        "layers": layers,
                        "hidden": hidden,
                        "seq_len": seq,
                        "estimated_s": plan.estimated_time.total,
                        "actual_s": actual,
                    }
                )
    pearson = float(np.corrcoef(np.asarray(estimates), np.asarray(actuals))[0, 1])
    for row in rows:
        row["pearson_r"] = pearson
    return rows


# ---------------------------------------------------------------------------
# Fig. 19 — program-synthesis overhead
# ---------------------------------------------------------------------------

def fig19_synthesis_time(
    layer_counts: Sequence[int] = (1, 2, 4, 8, 12, 16, 20, 24),
    hidden_size: int = 384,
    batch_size: int = 64,
    beam_width: int = 16,
) -> List[Row]:
    """Fig. 19: wall-clock program-synthesis time vs ViT depth."""
    cluster = heterogeneous_testbed(64)
    config = SynthesisConfig(beam_width=beam_width)
    rows: List[Row] = []
    for layers in layer_counts:
        vit_config = ViTConfig(
            batch_size=batch_size,
            hidden_size=hidden_size,
            num_layers=layers,
            num_heads=6,
        )
        graph = build_training_graph(build_vit(vit_config)).graph
        synthesizer = ProgramSynthesizer(graph, cluster, config)
        start = _time.perf_counter()
        result = synthesizer.synthesize(cluster.proportional_ratios())
        elapsed = _time.perf_counter() - start
        rows.append(
            {
                "layers": layers,
                "graph_nodes": len(graph),
                "synthesis_seconds": elapsed,
                "expanded_states": result.expanded_states,
            }
        )
    return rows
