"""Experiment harness reproducing every table and figure of the evaluation."""

from .figures import (
    fig13_heterogeneous_cluster,
    fig14_homogeneous_cluster,
    fig15_ablation,
    fig16_concurrent_training,
    fig17_uneven_experts,
    fig18_cost_model_accuracy,
    fig19_synthesis_time,
    fig2_sharding_ratio_tradeoff,
    fig4_all_gather_variants,
    format_rows,
    table1_models,
)
from .harness import ComparisonResult, SystemResult, compare_systems, format_comparison

__all__ = [
    "ComparisonResult",
    "SystemResult",
    "compare_systems",
    "format_comparison",
    "table1_models",
    "fig2_sharding_ratio_tradeoff",
    "fig4_all_gather_variants",
    "fig13_heterogeneous_cluster",
    "fig14_homogeneous_cluster",
    "fig15_ablation",
    "fig16_concurrent_training",
    "fig17_uneven_experts",
    "fig18_cost_model_accuracy",
    "fig19_synthesis_time",
    "format_rows",
]
