"""Device and machine models for heterogeneous clusters.

The paper's testbed mixes NVIDIA V100 and P100 machines (plus A100/P100 pairs
in the case studies).  No GPUs are available to this reproduction, so devices
are modelled analytically: each :class:`DeviceType` carries the published peak
throughput and memory of the corresponding GPU, and the profiler
(:mod:`repro.cluster.profiler`) derates it to a sustained figure.  The cost
model only ever consumes flops-per-second, memory bytes and link bandwidth, so
these datasheet-derived numbers preserve the heterogeneity ratios that drive
HAP's decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


GB = 1024 ** 3


@dataclass(frozen=True)
class DeviceType:
    """A GPU model.

    Attributes:
        name: marketing name, e.g. ``"V100"``.
        peak_tflops: peak dense float32 (tensor-core-less) throughput in TFLOPS.
        memory_bytes: HBM capacity in bytes.
        sustained_fraction: fraction of peak reachable on DNN kernels; the
            profiler multiplies peak by this to obtain the flops-per-second
            figure used by the cost model.
    """

    name: str
    peak_tflops: float
    memory_bytes: int
    sustained_fraction: float = 0.55

    @property
    def flops(self) -> float:
        """Sustained flops-per-second used for cost modelling."""
        return self.peak_tflops * 1e12 * self.sustained_fraction


#: Catalogue of the GPU models that appear in the paper's experiments.
DEVICE_CATALOG: Dict[str, DeviceType] = {
    "V100": DeviceType("V100", peak_tflops=15.7, memory_bytes=32 * GB),
    "P100": DeviceType("P100", peak_tflops=9.3, memory_bytes=16 * GB),
    "A100": DeviceType("A100", peak_tflops=19.5, memory_bytes=40 * GB),
    "T4": DeviceType("T4", peak_tflops=8.1, memory_bytes=16 * GB),
    "A10": DeviceType("A10", peak_tflops=31.2, memory_bytes=24 * GB, sustained_fraction=0.45),
}


def device_type(name: str) -> DeviceType:
    """Look up a device type by name (case-insensitive)."""
    key = name.upper()
    if key not in DEVICE_CATALOG:
        raise KeyError(f"unknown device type {name!r}; known: {sorted(DEVICE_CATALOG)}")
    return DEVICE_CATALOG[key]


@dataclass(frozen=True)
class Machine:
    """A physical machine hosting one or more identical GPUs.

    Attributes:
        name: host name (``v1`` ... in the paper's scripts).
        gpu: the GPU model installed.
        num_gpus: number of GPUs on this machine.
        intra_bandwidth: intra-machine GPU-to-GPU bandwidth in bytes/s
            (NVLink for V100/A100 machines, PCIe otherwise).
        intra_latency: per-collective launch latency within the machine, in s.
    """

    name: str
    gpu: DeviceType
    num_gpus: int = 1
    intra_bandwidth: float = 130e9
    intra_latency: float = 10e-6

    @property
    def total_flops(self) -> float:
        """Aggregate sustained flops of all GPUs in the machine."""
        return self.gpu.flops * self.num_gpus

    @property
    def total_memory(self) -> int:
        """Aggregate GPU memory of the machine in bytes."""
        return self.gpu.memory_bytes * self.num_gpus


@dataclass(frozen=True)
class VirtualDevice:
    """HAP's unit of planning (Sec. 3): a GPU or a homogeneous GPU group.

    When a virtual device wraps a whole machine, data parallelism is assumed
    inside it and the cost model adds the internal gradient-synchronisation
    time to the per-stage computation time (Sec. 3.2).

    Attributes:
        index: position of this virtual device in the cluster.
        machine: the hosting machine.
        num_gpus: number of GPUs aggregated into this virtual device.
    """

    index: int
    machine: Machine
    num_gpus: int = 1

    @property
    def gpu(self) -> DeviceType:
        return self.machine.gpu

    @property
    def flops(self) -> float:
        """Sustained flops available to this virtual device."""
        return self.gpu.flops * self.num_gpus

    @property
    def memory_bytes(self) -> int:
        return self.gpu.memory_bytes * self.num_gpus

    @property
    def intra_bandwidth(self) -> float:
        return self.machine.intra_bandwidth

    @property
    def name(self) -> str:
        suffix = f"x{self.num_gpus}" if self.num_gpus > 1 else ""
        return f"{self.machine.name}:{self.gpu.name}{suffix}"
