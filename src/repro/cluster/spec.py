"""Cluster specifications and the paper's testbed configurations.

A :class:`ClusterSpec` gathers machines, the inter-machine network, and the
mapping to HAP virtual devices (one virtual device per GPU, or one per machine
when ``group_by_machine`` is requested — the configuration used for the paper's
64-GPU runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .device import Machine, VirtualDevice, device_type


#: Default fraction of a collective/transfer that hides behind independent
#: compute when both streams have work.  Real stacks (NCCL on a dedicated
#: stream, Megatron's overlapped pipeline sends) hide most but not all of a
#: transfer — launch gaps, stream synchronisation and PCIe contention expose
#: the rest.  Set a cluster's ``comm_overlap_efficiency`` to 0 to recover the
#: fully serialized (pre-overlap) cost model everywhere.
DEFAULT_COMM_OVERLAP_EFFICIENCY = 0.6


@dataclass(frozen=True)
class CommOverlapModel:
    """How much communication hides behind independent compute (dual-stream).

    Every device is modelled with a *compute stream* and a *communication
    stream*.  A transfer of duration ``C`` that is independent of ``I``
    seconds of concurrently available compute exposes only
    ``C - efficiency * min(C, I)`` seconds on the critical path; the rest is
    hidden behind the compute stream.  ``efficiency = 0`` reproduces the
    fully blocking (additive) model bit-for-bit, ``efficiency = 1`` is a
    perfect dual-stream timeline.

    Attributes:
        efficiency: fraction of the overlappable window actually hidden,
            in ``[0, 1]``.
    """

    efficiency: float = DEFAULT_COMM_OVERLAP_EFFICIENCY

    def __post_init__(self) -> None:
        if not 0.0 <= self.efficiency <= 1.0:
            raise ValueError(
                f"overlap efficiency must be in [0, 1], got {self.efficiency!r}"
            )

    @classmethod
    def from_cluster(cls, cluster) -> CommOverlapModel:
        """The overlap model a cluster's software stack achieves."""
        return cls(efficiency=getattr(
            cluster, "comm_overlap_efficiency", DEFAULT_COMM_OVERLAP_EFFICIENCY
        ))

    @classmethod
    def disabled(cls) -> CommOverlapModel:
        """Fully serialized streams (the pre-overlap blocking model)."""
        return cls(efficiency=0.0)

    def hidden(self, comm_time: float, independent_compute: float) -> float:
        """Seconds of ``comm_time`` hidden behind ``independent_compute``."""
        return self.efficiency * min(comm_time, max(independent_compute, 0.0))

    def exposed(self, comm_time: float, independent_compute: float) -> float:
        """Seconds of ``comm_time`` left on the critical path."""
        return comm_time - self.hidden(comm_time, independent_compute)


@dataclass(frozen=True)
class NetworkSpec:
    """Flat inter-machine network model.

    Attributes:
        bandwidth: point-to-point bandwidth in bytes/s (the paper measures
            about 10.4 Gbps with iperf3 between cloud machines).
        latency: per-collective-step latency in seconds.
        kernel_launch_overhead: additional host-side launch overhead per
            collective call, relevant for the grouped-Broadcast implementation
            which issues one call per shard.
    """

    bandwidth: float = 10.4e9 / 8.0
    latency: float = 50e-6
    kernel_launch_overhead: float = 25e-6


class ClusterSpec:
    """A heterogeneous (or homogeneous) GPU cluster.

    Attributes:
        machines: participating machines.
        network: inter-machine network model.
        group_by_machine: if True, each machine is one HAP virtual device
            (data parallelism inside); otherwise every GPU is a virtual device.
        memory_reserve_fraction: fraction of every device's HBM withheld from
            the capacity queries (framework workspace, fragmentation, CUDA
            context).  The hierarchical planner's schedule-aware memory
            checks use :meth:`device_memory`, so reserving headroom here
            tightens every out-of-memory decision consistently.
        comm_overlap_efficiency: fraction of communication the cluster's
            software stack hides behind independent compute (dedicated
            communication streams); see :class:`CommOverlapModel`.  0 means
            collectives and compute serialize fully.
    """

    def __init__(
        self,
        machines: Sequence[Machine],
        network: Optional[NetworkSpec] = None,
        group_by_machine: bool = True,
        name: str = "cluster",
        memory_reserve_fraction: float = 0.0,
        comm_overlap_efficiency: float = DEFAULT_COMM_OVERLAP_EFFICIENCY,
    ) -> None:
        if not machines:
            raise ValueError("a cluster needs at least one machine")
        if not 0.0 <= memory_reserve_fraction < 1.0:
            raise ValueError(
                f"memory_reserve_fraction must be in [0, 1), got {memory_reserve_fraction!r}"
            )
        # CommOverlapModel owns the [0, 1] validation of overlap efficiencies.
        CommOverlapModel(efficiency=comm_overlap_efficiency)
        self.machines: List[Machine] = list(machines)
        self.network = network or NetworkSpec()
        self.group_by_machine = group_by_machine
        self.name = name
        self.memory_reserve_fraction = memory_reserve_fraction
        self.comm_overlap_efficiency = comm_overlap_efficiency
        self._virtual_devices = self._build_virtual_devices()

    def _build_virtual_devices(self) -> List[VirtualDevice]:
        devices: List[VirtualDevice] = []
        idx = 0
        for machine in self.machines:
            if self.group_by_machine:
                devices.append(VirtualDevice(index=idx, machine=machine, num_gpus=machine.num_gpus))
                idx += 1
            else:
                for _ in range(machine.num_gpus):
                    devices.append(VirtualDevice(index=idx, machine=machine, num_gpus=1))
                    idx += 1
        return devices

    # -- basic queries ---------------------------------------------------------
    @property
    def virtual_devices(self) -> List[VirtualDevice]:
        """HAP's planning units, in index order."""
        return list(self._virtual_devices)

    @property
    def num_devices(self) -> int:
        """Number of virtual devices."""
        return len(self._virtual_devices)

    @property
    def num_gpus(self) -> int:
        """Total number of physical GPUs."""
        return sum(m.num_gpus for m in self.machines)

    def device_flops(self) -> List[float]:
        """Sustained flops of every virtual device (paper: ``device_flops``)."""
        return [d.flops for d in self._virtual_devices]

    def device_memory(self) -> List[int]:
        """Usable memory capacity in bytes of every virtual device.

        The datasheet capacity minus the cluster's reserved headroom
        (:attr:`memory_reserve_fraction`).
        """
        usable = 1.0 - self.memory_reserve_fraction
        return [int(d.memory_bytes * usable) for d in self._virtual_devices]

    def total_flops(self) -> float:
        """Aggregate sustained flops of the cluster."""
        return sum(self.device_flops())

    def total_memory(self) -> int:
        """Aggregate memory of the cluster in bytes."""
        return sum(self.device_memory())

    def proportional_ratios(self) -> List[float]:
        """Sharding ratios proportional to compute power (the paper's B^(0))."""
        flops = self.device_flops()
        total = sum(flops)
        return [f / total for f in flops]

    def even_ratios(self) -> List[float]:
        """Even sharding ratios (the DP-EV baseline)."""
        n = self.num_devices
        return [1.0 / n] * n

    def is_heterogeneous(self) -> bool:
        """True if the cluster mixes more than one GPU model."""
        return len({m.gpu.name for m in self.machines}) > 1

    def subset(self, num_machines: int, name: Optional[str] = None) -> ClusterSpec:
        """A cluster consisting of the first ``num_machines`` machines."""
        if not 1 <= num_machines <= len(self.machines):
            raise ValueError(f"num_machines must be in [1, {len(self.machines)}]")
        return ClusterSpec(
            self.machines[:num_machines],
            network=self.network,
            group_by_machine=self.group_by_machine,
            name=name or f"{self.name}[:{num_machines}]",
            memory_reserve_fraction=self.memory_reserve_fraction,
            comm_overlap_efficiency=self.comm_overlap_efficiency,
        )

    # -- hierarchical partitioning ---------------------------------------------
    def partition(
        self,
        num_groups: int,
        intra_group_network: Optional[NetworkSpec] = None,
    ) -> ClusterPartition:
        """Split the machines into ``num_groups`` contiguous stage groups.

        The groups are contiguous slices of the machine list, balanced by
        aggregate sustained flops (each group gets at least one machine).  The
        cluster's own network is preserved as the *inter-group* link — the
        link pipeline-parallel activations and gradients travel over — while
        each group may optionally use a faster ``intra_group_network`` (the
        common physical situation: fast links inside a rack, a slow shared
        link between racks, which is exactly when pipelining over SPMD pays).

        Args:
            num_groups: number of contiguous machine groups.
            intra_group_network: network model used *inside* every group;
                defaults to the cluster's own (flat) network.

        Returns:
            A :class:`ClusterPartition` with one :class:`Subcluster` per group.
        """
        if not 1 <= num_groups <= len(self.machines):
            raise ValueError(
                f"num_groups must be in [1, {len(self.machines)}], got {num_groups}"
            )
        weights = [m.total_flops for m in self.machines]
        boundaries = _balanced_boundaries(weights, num_groups)
        groups: List[Subcluster] = []
        start = 0
        for idx, end in enumerate(boundaries):
            groups.append(
                Subcluster(
                    self.machines[start:end],
                    network=intra_group_network or self.network,
                    group_by_machine=self.group_by_machine,
                    name=f"{self.name}/stage{idx}",
                    parent=self,
                    group_index=idx,
                    machine_offset=start,
                    memory_reserve_fraction=self.memory_reserve_fraction,
                    comm_overlap_efficiency=self.comm_overlap_efficiency,
                )
            )
            start = end
        return ClusterPartition(
            cluster=self, groups=groups, inter_group_network=self.network
        )

    def describe(self) -> str:
        """Human-readable cluster summary."""
        lines = [f"ClusterSpec {self.name!r}: {self.num_gpus} GPUs on {len(self.machines)} machines"]
        for machine in self.machines:
            lines.append(
                f"  {machine.name}: {machine.num_gpus}x {machine.gpu.name} "
                f"({machine.gpu.flops / 1e12:.1f} sustained TFLOPS each)"
            )
        lines.append(
            f"  inter-machine bandwidth {self.network.bandwidth * 8 / 1e9:.1f} Gbps, "
            f"virtual devices: {self.num_devices}"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ClusterSpec(name={self.name!r}, gpus={self.num_gpus}, devices={self.num_devices})"


def _balanced_boundaries(weights: Sequence[float], num_groups: int) -> List[int]:
    """End indices of a contiguous split of ``weights`` into balanced groups.

    Greedy cumulative split against equal-weight targets, constrained so every
    group keeps at least one element and no elements are left over.  Exact for
    the small machine counts clusters have; mirrors
    :func:`repro.graph.analysis.segment_graph`.
    """
    n = len(weights)
    total = sum(weights) or float(n)
    boundaries: List[int] = []
    acc = 0.0
    for i, w in enumerate(weights):
        acc += w if total > 0 else 1.0
        remaining_groups = num_groups - len(boundaries)
        remaining_items = n - (i + 1)
        if len(boundaries) < num_groups - 1 and (
            acc >= total * (len(boundaries) + 1) / num_groups
            or remaining_items <= remaining_groups - 1
        ):
            boundaries.append(i + 1)
    boundaries.append(n)
    return boundaries


class Subcluster(ClusterSpec):
    """A contiguous machine group of a parent cluster (one pipeline stage).

    Behaves exactly like a :class:`ClusterSpec` over its own machines — the
    flat HAP planner, cost model, simulator and SPMD runtime all accept it
    unchanged — while remembering where it sits inside the parent cluster.

    Attributes:
        parent: the cluster this group was partitioned from.
        group_index: position of this group in the partition.
        machine_offset: index of the group's first machine in the parent.
    """

    def __init__(
        self,
        machines: Sequence[Machine],
        network: Optional[NetworkSpec] = None,
        group_by_machine: bool = True,
        name: str = "subcluster",
        parent: Optional[ClusterSpec] = None,
        group_index: int = 0,
        machine_offset: int = 0,
        memory_reserve_fraction: float = 0.0,
        comm_overlap_efficiency: float = DEFAULT_COMM_OVERLAP_EFFICIENCY,
    ) -> None:
        super().__init__(
            machines,
            network=network,
            group_by_machine=group_by_machine,
            name=name,
            memory_reserve_fraction=memory_reserve_fraction,
            comm_overlap_efficiency=comm_overlap_efficiency,
        )
        self.parent = parent
        self.group_index = group_index
        self.machine_offset = machine_offset


@dataclass
class ClusterPartition:
    """A contiguous split of a cluster into pipeline-stage machine groups.

    Attributes:
        cluster: the partitioned cluster.
        groups: one :class:`Subcluster` per stage, in machine order.
        inter_group_network: the network activations/gradients cross between
            adjacent groups (the parent cluster's network, preserved).
    """

    cluster: ClusterSpec
    groups: List[Subcluster]
    inter_group_network: NetworkSpec

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def group_flops(self) -> List[float]:
        """Aggregate sustained flops of every group."""
        return [g.total_flops() for g in self.groups]

    def compute_ratios(self) -> List[float]:
        """Fraction of the cluster's compute held by each group."""
        flops = self.group_flops()
        total = sum(flops)
        return [f / total for f in flops]

    def transfer_time(self, nbytes: float) -> float:
        """Point-to-point time to move ``nbytes`` between adjacent groups."""
        return self.inter_group_network.latency + nbytes / self.inter_group_network.bandwidth

    def describe(self) -> str:
        """Human-readable partition summary."""
        lines = [
            f"ClusterPartition of {self.cluster.name!r} into {self.num_groups} groups "
            f"(inter-group {self.inter_group_network.bandwidth * 8 / 1e9:.1f} Gbps)"
        ]
        for group, share in zip(self.groups, self.compute_ratios()):
            gpus = ", ".join(f"{m.num_gpus}x{m.gpu.name}" for m in group.machines)
            lines.append(
                f"  {group.name}: {len(group.machines)} machines ({gpus}), "
                f"{share * 100:.0f}% of cluster compute"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Testbed factories matching the paper's experimental setup (Sec. 7.1)
# ---------------------------------------------------------------------------

def _machines(prefix: str, count: int, gpu: str, gpus_per_machine: int, nvlink: bool) -> List[Machine]:
    bw = 130e9 if nvlink else 28e9
    return [
        Machine(
            name=f"{prefix}{i + 1}",
            gpu=device_type(gpu),
            num_gpus=gpus_per_machine,
            intra_bandwidth=bw,
        )
        for i in range(count)
    ]


def heterogeneous_testbed(
    num_gpus: int = 64, gpus_per_machine: int = 8, group_by_machine: bool = True
) -> ClusterSpec:
    """The paper's heterogeneous testbed: 2 V100 machines + 6 P100 machines.

    At 64 GPUs this is exactly the paper's cluster (2 machines with 8 V100s
    and NVLink, 6 machines with 8 P100s, ~10.4 Gbps inter-machine).  Smaller
    GPU counts (the x-axis of Fig. 13) keep roughly the same 1:3 V100:P100
    machine ratio with at least one machine of each kind, matching the paper's
    practice of using a heterogeneous prefix of the cluster.
    """
    if num_gpus % gpus_per_machine:
        raise ValueError("num_gpus must be a multiple of gpus_per_machine")
    num_machines = num_gpus // gpus_per_machine
    num_v100 = max(1, round(num_machines * 2 / 8)) if num_machines > 1 else 1
    num_p100 = num_machines - num_v100
    machines = _machines("v", num_v100, "V100", gpus_per_machine, nvlink=True)
    machines += _machines("p", num_p100, "P100", gpus_per_machine, nvlink=False)
    return ClusterSpec(
        machines, group_by_machine=group_by_machine, name=f"hetero-{num_gpus}gpu"
    )


def homogeneous_testbed(
    num_gpus: int = 32, gpus_per_machine: int = 8, gpu: str = "P100", group_by_machine: bool = True
) -> ClusterSpec:
    """The paper's homogeneous testbed: 4 machines with 8 P100 GPUs each."""
    if num_gpus % gpus_per_machine:
        raise ValueError("num_gpus must be a multiple of gpus_per_machine")
    num_machines = num_gpus // gpus_per_machine
    machines = _machines("h", num_machines, gpu, gpus_per_machine, nvlink=(gpu != "P100"))
    return ClusterSpec(
        machines, group_by_machine=group_by_machine, name=f"homog-{gpu.lower()}-{num_gpus}gpu"
    )


def a100_p100_pair(gpus_per_machine: int = 2, group_by_machine: bool = False) -> ClusterSpec:
    """Two machines, one with A100s and one with P100s (Sec. 2.4 / Sec. 7.6)."""
    machines = _machines("a", 1, "A100", gpus_per_machine, nvlink=True)
    machines += _machines("p", 1, "P100", gpus_per_machine, nvlink=False)
    return ClusterSpec(machines, group_by_machine=group_by_machine, name="a100-p100-pair")


def a100_pair(gpus_per_machine: int = 2, group_by_machine: bool = False) -> ClusterSpec:
    """Two machines with two A100 GPUs each (the Fig. 4 micro-benchmark)."""
    machines = _machines("a", 2, "A100", gpus_per_machine, nvlink=True)
    return ClusterSpec(machines, group_by_machine=group_by_machine, name="a100-2x2")


def p100_a100_mixed(gpus_per_machine: int = 2, group_by_machine: bool = False) -> ClusterSpec:
    """One machine with two P100s and one with two A100s (Fig. 2 motivation)."""
    machines = _machines("p", 1, "P100", gpus_per_machine, nvlink=False)
    machines += _machines("a", 1, "A100", gpus_per_machine, nvlink=True)
    return ClusterSpec(machines, group_by_machine=group_by_machine, name="p100-a100-2x2")


def custom_cluster(spec: Dict[str, int], gpus_per_machine: int = 1, **kwargs) -> ClusterSpec:
    """Build a cluster from a ``{gpu_name: machine_count}`` dictionary."""
    machines: List[Machine] = []
    for gpu_name, count in spec.items():
        machines += _machines(gpu_name.lower()[0], count, gpu_name, gpus_per_machine, nvlink=gpu_name.upper() in ("V100", "A100"))
    return ClusterSpec(machines, **kwargs)
