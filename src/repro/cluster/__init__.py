"""Cluster substrate: device catalogue, cluster specs and simulated profiling."""

from .device import DEVICE_CATALOG, GB, DeviceType, Machine, VirtualDevice, device_type
from .profiler import ClusterProfile, LinearCommModel, SimulatedProfiler
from .spec import (
    DEFAULT_COMM_OVERLAP_EFFICIENCY,
    ClusterPartition,
    ClusterSpec,
    CommOverlapModel,
    NetworkSpec,
    Subcluster,
    a100_p100_pair,
    a100_pair,
    custom_cluster,
    heterogeneous_testbed,
    homogeneous_testbed,
    p100_a100_mixed,
)

__all__ = [
    "DEVICE_CATALOG",
    "GB",
    "DeviceType",
    "Machine",
    "VirtualDevice",
    "device_type",
    "ClusterPartition",
    "ClusterSpec",
    "CommOverlapModel",
    "DEFAULT_COMM_OVERLAP_EFFICIENCY",
    "NetworkSpec",
    "Subcluster",
    "heterogeneous_testbed",
    "homogeneous_testbed",
    "a100_p100_pair",
    "a100_pair",
    "p100_a100_mixed",
    "custom_cluster",
    "ClusterProfile",
    "LinearCommModel",
    "SimulatedProfiler",
]
