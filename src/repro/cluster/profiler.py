"""Simulated profiling of devices and collectives.

The paper profiles (i) flops-per-second of every device type with a matmul
micro-benchmark and (ii) latency/bandwidth of every collective primitive on
the actual cluster, then fits a linear model used by the cost estimator
(Sec. 3.2).  Without hardware we *simulate* the same procedure: the "measured"
samples are produced by the analytic collective cost model plus multiplicative
noise, and the same least-squares fit the paper uses recovers latency and
bandwidth.  This keeps the profiling code path (sampling, fitting, writing a
profile consumed by the synthesizer) identical in structure to the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..collectives.cost import CollectiveCostModel, CollectiveKind
from .spec import ClusterSpec


@dataclass(frozen=True)
class LinearCommModel:
    """Fitted ``time = latency + bytes / bandwidth`` model for one collective."""

    kind: CollectiveKind
    latency: float
    bandwidth: float

    def time(self, nbytes: float) -> float:
        """Predicted execution time for ``nbytes`` of payload."""
        return self.latency + nbytes / self.bandwidth


@dataclass
class ClusterProfile:
    """The complete profile consumed by HAP's cost model.

    Attributes:
        device_flops: sustained flops per virtual device, as profiled.
        comm_models: per-collective fitted linear model.
    """

    device_flops: List[float]
    comm_models: Dict[CollectiveKind, LinearCommModel] = field(default_factory=dict)

    def comm_time(self, kind: CollectiveKind, nbytes: float) -> float:
        """Predicted time of a collective on the profiled cluster."""
        return self.comm_models[kind].time(nbytes)


class SimulatedProfiler:
    """Runs the (simulated) micro-benchmarks of ``profiler.py`` in the paper.

    Args:
        cluster: the cluster to profile.
        noise: multiplicative noise applied to each simulated measurement,
            mimicking run-to-run variance on a real cluster.
        seed: RNG seed for reproducibility.
    """

    def __init__(self, cluster: ClusterSpec, noise: float = 0.03, seed: int = 0) -> None:
        self.cluster = cluster
        self.noise = noise
        self.rng = np.random.default_rng(seed)
        self._cost_model = CollectiveCostModel(cluster)

    # -- device profiling -------------------------------------------------------
    def profile_device_flops(self, trials: int = 5) -> List[float]:
        """Per-virtual-device sustained flops with simulated measurement noise."""
        flops = []
        for device in self.cluster.virtual_devices:
            samples = [
                device.flops * float(self.rng.normal(1.0, self.noise)) for _ in range(trials)
            ]
            flops.append(float(np.median(samples)))
        return flops

    # -- collective profiling ----------------------------------------------------
    def profile_collective(
        self,
        kind: CollectiveKind,
        sizes: Optional[Sequence[int]] = None,
        trials: int = 3,
    ) -> LinearCommModel:
        """Fit a latency/bandwidth model from simulated measurements.

        The fitting procedure (ordinary least squares of time against payload
        bytes) is the one described in Sec. 3.2; the measurements come from
        the analytic collective model plus noise.
        """
        if sizes is None:
            sizes = [2 ** p for p in range(16, 28, 2)]  # 64 KiB ... 128 MiB
        xs: List[float] = []
        ys: List[float] = []
        even = self.cluster.even_ratios()
        for size in sizes:
            for _ in range(trials):
                true_time = self._cost_model.collective_time(kind, float(size), even)
                measured = true_time * float(self.rng.normal(1.0, self.noise))
                xs.append(float(size))
                ys.append(max(measured, 1e-9))
        slope, intercept = np.polyfit(np.asarray(xs), np.asarray(ys), 1)
        slope = max(float(slope), 1e-15)
        intercept = max(float(intercept), 0.0)
        return LinearCommModel(kind=kind, latency=intercept, bandwidth=1.0 / slope)

    def profile(self) -> ClusterProfile:
        """Run all micro-benchmarks and assemble a :class:`ClusterProfile`."""
        comm_models = {
            kind: self.profile_collective(kind)
            for kind in (
                CollectiveKind.ALL_REDUCE,
                CollectiveKind.ALL_GATHER,
                CollectiveKind.REDUCE_SCATTER,
                CollectiveKind.ALL_TO_ALL,
                CollectiveKind.BROADCAST,
            )
        }
        return ClusterProfile(device_flops=self.profile_device_flops(), comm_models=comm_models)
