"""HAP core: properties, background theory, A* synthesis, LP load balancing."""

from .config import LoadBalancerConfig, PlannerConfig, SynthesisConfig
from .costmodel import CostBreakdown, CostModel, StageCoefficientArrays, StageCoefficients
from .hierarchical import (
    ChunkPlan,
    HierarchicalConfig,
    HierarchicalPlan,
    HierarchicalPlanner,
    StagePlan,
    stage_forward_graph,
)
from .instructions import CommInstruction, CompInstruction, Instruction, is_source_op
from .load_balancer import LoadBalancer, LoadBalanceResult, integer_shard_sizes
from .pareto import ParetoFront, ParetoStore, dominates
from .pipeline import HAPPlan, HAPPlanner, OptimizationRound
from .plancache import (
    CACHE_VERSION,
    CachedPlan,
    DiskPlanCache,
    InMemoryPlanCache,
    cluster_signature,
    config_signature,
    plan_key,
    remap_plan,
    remap_program,
)
from .program import DistributedProgram, Stage
from .properties import DistState, Property, StateKind, partial, replicated, sharded
from .rules import Rule, Theory, Variant, build_theory, moe_restricted_refs, node_variants
from .synthesizer import ProgramSynthesizer, SynthesisError, SynthesisResult, synthesize_program
from .workerpool import WorkerCrash, WorkerPool, close_shared_pool, shared_pool

__all__ = [
    "SynthesisConfig",
    "LoadBalancerConfig",
    "PlannerConfig",
    "CostModel",
    "CostBreakdown",
    "StageCoefficients",
    "StageCoefficientArrays",
    "CompInstruction",
    "CommInstruction",
    "Instruction",
    "is_source_op",
    "LoadBalancer",
    "LoadBalanceResult",
    "integer_shard_sizes",
    "ParetoFront",
    "ParetoStore",
    "dominates",
    "HAPPlanner",
    "HAPPlan",
    "OptimizationRound",
    "DistributedProgram",
    "Stage",
    "DistState",
    "Property",
    "StateKind",
    "replicated",
    "partial",
    "sharded",
    "Rule",
    "Theory",
    "Variant",
    "build_theory",
    "node_variants",
    "moe_restricted_refs",
    "ProgramSynthesizer",
    "SynthesisResult",
    "SynthesisError",
    "synthesize_program",
    "CACHE_VERSION",
    "CachedPlan",
    "DiskPlanCache",
    "InMemoryPlanCache",
    "cluster_signature",
    "config_signature",
    "plan_key",
    "remap_plan",
    "remap_program",
    "ChunkPlan",
    "HierarchicalConfig",
    "HierarchicalPlan",
    "HierarchicalPlanner",
    "StagePlan",
    "stage_forward_graph",
    "WorkerCrash",
    "WorkerPool",
    "close_shared_pool",
    "shared_pool",
]
