"""Pareto-front store for the synthesizer's dominance tables.

The A* search of Fig. 10 keeps, for every distinct search-state key, the set
of per-device accumulated cost vectors that are not dominated by any other
known partial program with the same state.  The seed implementation stored a
flat list per key and scanned it in full for every generated child.  This
module provides :class:`ParetoFront`, an equivalent store that keeps the
vectors sorted by their coordinate sum and uses two observations to cut the
scans short:

* a vector ``e`` can only dominate ``v`` (``e_i <= v_i + eps`` for all ``i``)
  if ``sum(e) <= sum(v) + m * eps``, so the dominance scan stops at the first
  stored vector whose sum exceeds that bound;
* symmetrically, ``v`` can only dominate stored vectors whose sum is at least
  ``sum(v) - m * eps``, so the pruning pass skips the cheap prefix entirely.

The dominance predicate itself — including the tolerance — is exactly the
predicate of the flat-list implementation, so the accept/reject decisions (and
therefore the synthesized program) are identical; only the work per decision
shrinks from ``O(front)`` comparisons to ``O(log front + candidates)``.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, Hashable, List, Sequence, Tuple

Vector = Tuple[float, ...]


def dominates(a: Sequence[float], b: Sequence[float], eps: float) -> bool:
    """True if ``a`` is no worse than ``b`` on every device (within ``eps``)."""
    return all(x <= y + eps for x, y in zip(a, b))


class ParetoFront:
    """Mutable set of mutually undominated cost vectors of equal length."""

    __slots__ = ("eps", "_entries")

    def __init__(self, eps: float = 1e-12) -> None:
        self.eps = eps
        #: (sum, vector) pairs sorted by sum (ties keep insertion order).
        self._entries: List[Tuple[float, Vector]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def vectors(self) -> List[Vector]:
        """The current undominated vectors (sorted by coordinate sum)."""
        return [vec for _, vec in self._entries]

    def insert(self, vector: Vector) -> bool:
        """Add ``vector`` unless dominated; prune what it dominates.

        Returns:
            False if an existing vector dominates ``vector`` (the store is
            unchanged), True if ``vector`` was inserted (dominated incumbents
            are removed).
        """
        entries = self._entries
        eps = self.eps
        vsum = sum(vector)
        slack = eps * len(vector)
        # 1. is the new vector dominated?  Only entries with sum <= vsum+slack
        # can dominate it.  (Manual loops: this is the synthesizer's innermost
        # hot spot, and generator-based all() costs ~3x as much.)
        bound = vsum + slack
        for esum, evec in entries:
            if esum > bound:
                break
            for x, y in zip(evec, vector):
                if x > y + eps:
                    break
            else:
                return False
        # 2. prune entries dominated by the new vector.  Only entries with
        # sum >= vsum - slack can be dominated by it.
        lo = bisect_left(entries, (vsum - slack,))
        if lo < len(entries):
            keep = entries[:lo]
            for entry in entries[lo:]:
                evec = entry[1]
                for x, y in zip(vector, evec):
                    if x > y + eps:
                        keep.append(entry)
                        break
            entries = keep
            self._entries = entries
        insort(entries, (vsum, vector))
        return True


class ParetoStore:
    """Dominance table: search-state key -> :class:`ParetoFront`."""

    __slots__ = ("eps", "_fronts")

    def __init__(self, eps: float = 1e-12) -> None:
        self.eps = eps
        self._fronts: Dict[Hashable, ParetoFront] = {}

    def __len__(self) -> int:
        return len(self._fronts)

    def insert(self, key: Hashable, vector: Vector) -> bool:
        """Insert ``vector`` under ``key``; False iff it was dominated."""
        front = self._fronts.get(key)
        if front is None:
            front = self._fronts[key] = ParetoFront(self.eps)
        return front.insert(vector)

    def front(self, key: Hashable) -> List[Vector]:
        """Undominated vectors stored under ``key`` (empty if unseen)."""
        front = self._fronts.get(key)
        return front.vectors() if front is not None else []
