"""Iterative joint optimisation of program and sharding ratios (Sec. 3.1).

HAP alternates two optimisers:

* the program synthesizer produces the best distributed program ``Q`` for the
  current sharding ratios ``B`` (Eqn. 1), and
* the load balancer produces the best ratios ``B`` for the current program
  ``Q`` (Eqn. 2),

starting from computation-proportional ratios ``B^(0)`` and stopping on
convergence or oscillation, in which case the cheapest ``(Q, B)`` pair seen is
returned.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cluster.spec import ClusterSpec
from ..graph.analysis import segment_graph
from ..graph.graph import ComputationGraph
from . import workerpool
from .config import PlannerConfig
from .costmodel import CostBreakdown, CostModel
from .load_balancer import LoadBalancer
from .program import DistributedProgram
from .rules import build_theory
from .synthesizer import ProgramSynthesizer, SynthesisResult


@dataclass
class OptimizationRound:
    """Record of one (Q, B) alternation round."""

    round_index: int
    cost_after_synthesis: float
    cost_after_balancing: float
    ratios: List[List[float]]
    synthesis_seconds: float
    balancing_seconds: float


@dataclass
class HAPPlan:
    """The final output of HAP planning.

    Attributes:
        program: the selected distributed program ``Q*``.
        ratios: the selected per-segment sharding ratios ``B*``.
        estimated_time: cost-model estimate of the per-iteration time.
        rounds: per-round optimisation history.
        segment_of: node-name -> segment map used for per-segment ratios.
        synthesis: statistics of the final synthesis run.
    """

    program: DistributedProgram
    ratios: List[List[float]]
    estimated_time: CostBreakdown
    rounds: List[OptimizationRound]
    segment_of: Optional[Dict[str, int]]
    synthesis: SynthesisResult

    @property
    def flat_ratios(self) -> List[float]:
        """Sharding ratios of the first segment."""
        return list(self.ratios[0])

    @property
    def estimated_iteration_time(self) -> float:
        return self.estimated_time.total

    def describe(self) -> str:
        """Readable plan summary."""
        lines = [
            f"HAP plan for {self.program.graph.name!r} on {self.program.num_devices} devices",
            f"  estimated per-iteration time: {self.estimated_time.total * 1e3:.2f} ms "
            f"(comm {self.estimated_time.communication * 1e3:.2f} ms, "
            f"comp {self.estimated_time.computation * 1e3:.2f} ms)",
            f"  instructions: {self.program.num_computations} compute, "
            f"{self.program.num_communications} collectives {self.program.communication_kinds()}",
            f"  ratios: {[[round(r, 3) for r in seg] for seg in self.ratios]}",
            f"  optimisation rounds: {len(self.rounds)}",
        ]
        return "\n".join(lines)


class HAPPlanner:
    """End-to-end HAP planning: theory construction, A* synthesis, LP balancing.

    The planner keeps one :class:`~repro.core.synthesizer.ProgramSynthesizer`
    for all optimisation rounds, so with ``synthesis_workers`` set the rounds
    also share one fork of the lazily created worker pool
    (:mod:`repro.core.workerpool`) — re-registering an unchanged synthesizer
    never re-forks.  The pool outlives the planner by design (the next plan
    starts warm); use :meth:`close`, the context-manager form, or
    :func:`repro.core.workerpool.close_shared_pool` to release the worker
    processes explicitly.
    """

    def __init__(
        self,
        graph: ComputationGraph,
        cluster: ClusterSpec,
        config: Optional[PlannerConfig] = None,
    ) -> None:
        self.graph = graph
        self.cluster = cluster
        self.config = config or PlannerConfig()
        if self.config.synthesis.verify_after_plan:
            # Pre-synthesis IR check: a malformed graph fails here with a
            # G-code diagnostic instead of a traceback mid-search.
            from ..verify.base import PlanVerificationError
            from ..verify.graph import verify_graph

            graph_report = verify_graph(graph)
            if not graph_report.ok:
                raise PlanVerificationError(graph_report)
        self.cost_model = CostModel(graph, cluster)
        self.theory = build_theory(graph, cluster.num_devices, self.config.synthesis)
        self.synthesizer = ProgramSynthesizer(
            graph, cluster, self.config.synthesis, theory=self.theory, cost_model=self.cost_model
        )
        self.load_balancer = LoadBalancer(cluster, self.config.load_balancer)
        self.segment_of: Optional[Dict[str, int]] = None
        if self.config.load_balancer.num_segments > 1:
            segments = segment_graph(graph, self.config.load_balancer.num_segments)
            self.segment_of = {
                name: idx for idx, seg in enumerate(segments) for name in seg
            }

    # -- helpers ---------------------------------------------------------------
    def _evaluate(
        self, program: DistributedProgram, ratios: List[List[float]]
    ) -> CostBreakdown:
        per_segment = {k: r for k, r in enumerate(ratios)}
        return self.cost_model.evaluate(
            program, ratios[0], ratios_per_segment=per_segment, segment_of=self.segment_of
        )

    def _evaluate_pair(
        self,
        program: DistributedProgram,
        ratios_q: List[List[float]],
        ratios_b: List[List[float]],
    ) -> Tuple[CostBreakdown, CostBreakdown]:
        """Price a round's pre- and post-balance ratios for one program.

        With ``enable_vectorized_cost`` both assignments go through one
        batched :meth:`CostModel.evaluate_many` call (the program is
        linearised once and the stage arithmetic runs on stacked arrays);
        otherwise two scalar :meth:`_evaluate` calls.  Evaluation is pure, so
        the two paths return bit-identical breakdowns.
        """
        if self.config.load_balancer.enable_vectorized_cost:
            sets = [
                (r[0], {k: seg for k, seg in enumerate(r)})
                for r in (ratios_q, ratios_b)
            ]
            pair = self.cost_model.evaluate_many(program, sets, self.segment_of)
            return pair[0], pair[1]
        return self._evaluate(program, ratios_q), self._evaluate(program, ratios_b)

    def _initial_ratios(self) -> List[List[float]]:
        base = self.cluster.proportional_ratios()
        segments = self.config.load_balancer.num_segments if self.segment_of else 1
        return [list(base) for _ in range(max(segments, 1))]

    # -- worker-pool lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Release the shared worker pool ``synthesis_workers`` draws from.

        Process-wide and always safe: the pool re-forks lazily if any
        planner synthesizes again afterwards.
        """
        workerpool.close_shared_pool()

    def __enter__(self) -> "HAPPlanner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- main entry point ---------------------------------------------------------
    def plan(self) -> HAPPlan:
        """Run the iterative optimisation and return the best (Q, B) pair."""
        ratios = self._initial_ratios()
        best: Optional[Tuple[DistributedProgram, List[List[float]], CostBreakdown, SynthesisResult]] = None
        rounds: List[OptimizationRound] = []
        previous_cost = float("inf")

        for round_index in range(self.config.max_rounds):
            synth_start = _time.perf_counter()
            synthesis = self.synthesizer.synthesize(ratios[0])
            synth_seconds = _time.perf_counter() - synth_start
            program = synthesis.program
            ratios_q = [list(r) for r in ratios]

            balance_seconds = 0.0
            if self.config.enable_load_balancer:
                balance_start = _time.perf_counter()
                balance = self.load_balancer.optimize(program, self.cost_model, self.segment_of)
                balance_seconds = _time.perf_counter() - balance_start
                if balance.success:
                    ratios = balance.ratios
            # Evaluation is pure, so pricing the pre-balance ratios after the
            # LP (in one batched call with the post-balance ratios) yields the
            # same numbers as pricing them before it.
            cost_q, cost_b = self._evaluate_pair(program, ratios_q, ratios)

            rounds.append(
                OptimizationRound(
                    round_index=round_index,
                    cost_after_synthesis=cost_q.total,
                    cost_after_balancing=cost_b.total,
                    ratios=[list(r) for r in ratios],
                    synthesis_seconds=synth_seconds,
                    balancing_seconds=balance_seconds,
                )
            )

            if best is None or cost_b.total < best[2].total:
                best = (program, [list(r) for r in ratios], cost_b, synthesis)

            improvement = previous_cost - cost_b.total
            if improvement <= self.config.convergence_tolerance * max(previous_cost, 1e-12):
                break
            previous_cost = cost_b.total

        assert best is not None  # at least one round always runs
        program, ratios, cost, synthesis = best
        plan = HAPPlan(
            program=program,
            ratios=ratios,
            estimated_time=cost,
            rounds=rounds,
            segment_of=self.segment_of,
            synthesis=synthesis,
        )
        if self.config.synthesis.verify_after_plan:
            # Imported lazily: repro.verify depends on this module.
            from ..verify.base import PlanVerificationError
            from ..verify.program import verify_program

            report = verify_program(plan.program, self.cluster, plan.flat_ratios)
            if not report.ok:
                raise PlanVerificationError(report)
        return plan
