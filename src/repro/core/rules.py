"""Background-theory construction (Sec. 4.2 of the paper).

Given a single-device training graph, :func:`build_theory` derives the set of
Hoare triples that the synthesizer searches over.  Each triple (a
:class:`Rule`) has

* a precondition — properties the partial program must already contain,
* one or more distributed instructions to append, and
* a postcondition — the properties those instructions establish.

Rules come in three families:

1. **Computation rules**, one per (node, sharding variant): generated from the
   mathematical characteristics of the node's operator (``OpKind``), e.g. the
   three MatMul sharding rules of Fig. 9 plus the duplicated-compute rule that
   enables sufficient factor broadcasting (Sec. 4.4).
2. **Source rules** for placeholders/parameters/constants
   (``Placeholder-Shard(d)`` etc.).  Following the paper's first search-time
   optimisation these are *fused* into their consumers so that the search
   never has to decide where to place them.
3. **Communication rules**, converting a tensor between distribution states
   with a collective.  Only conversions from a state some rule can produce to
   a state some rule wants are generated, and each reference tensor may be
   communicated at most once per program (the paper's second optimisation).

Mixture-of-Experts capacity tensors carry device-local routing; gathering them
back to a "replicated" tensor would not reproduce the reference value, so such
tensors are restricted to All-To-All communication (expert parallelism), which
is exactly how GShard-style systems treat them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..collectives.cost import CollectiveKind
from ..graph.graph import ComputationGraph, Node
from ..graph.ops import OpKind
from .config import SynthesisConfig
from .instructions import CommInstruction, CompInstruction, Instruction, is_source_op
from .properties import DistState, Property, StateKind


@dataclass(frozen=True)
class Rule:
    """One Hoare triple of the background theory.

    Attributes:
        pre: properties required of the partial program.
        instructions: distributed instructions appended when the rule fires.
        post: properties established by the instructions.
        completes: single-device nodes emulated by this rule (each node may be
            emulated at most once per program).
        communicates: reference tensors communicated by this rule (each may be
            communicated at most once per program).
    """

    pre: FrozenSet[Property]
    instructions: Tuple[Instruction, ...]
    post: FrozenSet[Property]
    completes: FrozenSet[str]
    communicates: FrozenSet[str]

    @property
    def is_communication(self) -> bool:
        """True if any appended instruction is a collective."""
        return any(instr.is_communication for instr in self.instructions)

    def describe(self) -> str:
        """Readable rendering for debugging and documentation."""
        pre = ", ".join(sorted(str(p) for p in self.pre)) or "∅"
        post = ", ".join(sorted(str(p) for p in self.post))
        body = "; ".join(i.describe() for i in self.instructions)
        return f"{{ {pre} }} {body} {{ {post} }}"


@dataclass(frozen=True)
class Variant:
    """One sharding variant of a computation node: input states -> output state."""

    input_states: Tuple[DistState, ...]
    output_state: DistState
    flops_sharded: bool


class Theory:
    """The background theory for one training graph on one cluster size."""

    def __init__(
        self,
        graph: ComputationGraph,
        num_devices: int,
        config: SynthesisConfig,
        rules: List[Rule],
        restricted_refs: FrozenSet[str],
    ) -> None:
        self.graph = graph
        self.num_devices = num_devices
        self.config = config
        self.rules = rules
        #: refs restricted to All-To-All communication (MoE capacity tensors)
        self.restricted_refs = restricted_refs
        # Index rules by the reference tensors appearing in their
        # preconditions (used by the unrestricted A* search) ...
        self.rules_by_pre_ref: Dict[str, List[Rule]] = {}
        for rule in rules:
            refs = {p.ref for p in rule.pre} or {"__empty__"}
            for ref in refs:
                self.rules_by_pre_ref.setdefault(ref, []).append(rule)
        # ... and by the computation node they emulate / the tensor they
        # communicate (used by the topological-order search).
        self.comp_rules_by_node: Dict[str, List[Rule]] = {}
        self.comm_rules_by_ref: Dict[str, List[Rule]] = {}
        for rule in rules:
            if rule.is_communication:
                for ref in {p.ref for p in rule.pre}:
                    self.comm_rules_by_ref.setdefault(ref, []).append(rule)
            else:
                primary = _primary_completed_node(rule, graph)
                if primary is not None:
                    self.comp_rules_by_node.setdefault(primary, []).append(rule)
        # Communication rules indexed by the property they establish.  Lists
        # preserve the relative order of ``comm_rules_by_ref`` so that indexed
        # candidate enumeration visits rules in exactly the same order as a
        # filtering scan of that table (byte-identical synthesis results).
        self.comm_rules_by_post: Dict[Property, List[Rule]] = {}
        for rules_for_ref in self.comm_rules_by_ref.values():
            for rule in rules_for_ref:
                for prop in rule.post:
                    self.comm_rules_by_post.setdefault(prop, []).append(rule)

    def __len__(self) -> int:
        return len(self.rules)

    def wanted_states_of(self, ref: str) -> Set[DistState]:
        """Distribution states of ``ref`` required by some computation rule."""
        wanted: Set[DistState] = set()
        for rules in self.comp_rules_by_node.values():
            for rule in rules:
                for prop in rule.pre:
                    if prop.ref == ref:
                        wanted.add(prop.state)
        return wanted

    def describe(self, limit: Optional[int] = None) -> str:
        """Multi-line listing of (a prefix of) the rules."""
        rules = self.rules[:limit] if limit else self.rules
        return "\n".join(r.describe() for r in rules)


def _primary_completed_node(rule: Rule, graph: ComputationGraph) -> Optional[str]:
    """The non-source node a computation rule emulates (None for comm rules)."""
    primary = None
    for name in rule.completes:
        if not is_source_op(graph[name].op):
            primary = name
    if primary is None and rule.completes:
        # Pure-source rule (should not occur after fusion); index by any node.
        primary = next(iter(rule.completes))
    return primary


# ---------------------------------------------------------------------------
# sharding-variant generation per operator kind
# ---------------------------------------------------------------------------

R = DistState.replicated()
P = DistState.partial()


def S(dim: int) -> DistState:
    return DistState.sharded(dim)


def _input_shardable(spec_shape: Tuple[int, ...], dim: int, cfg: SynthesisConfig, num_devices: int) -> bool:
    if dim >= len(spec_shape):
        return False
    return spec_shape[dim] >= max(cfg.min_shard_dim_size, num_devices)


def node_variants(
    node: Node, graph: ComputationGraph, cfg: SynthesisConfig, num_devices: int
) -> List[Variant]:
    """All sharding variants of one computation node.

    This is the reproduction of the rule tables sketched in Fig. 9: for each
    operator kind we enumerate the combinations of input distribution states
    under which running the operator locally yields an output in a known
    distribution state.
    """
    kind = node.kind
    in_specs = graph.input_specs(node)
    out_spec = node.spec
    variants: List[Variant] = []

    def add(in_states: Sequence[DistState], out_state: DistState, sharded: bool) -> None:
        variants.append(Variant(tuple(in_states), out_state, sharded))

    def out_dims() -> List[int]:
        return [
            d
            for d, size in enumerate(out_spec.shape)
            if size >= max(cfg.min_shard_dim_size, num_devices)
        ]

    arity = len(node.inputs)

    if kind is OpKind.SOURCE:
        raise ValueError("source nodes are handled by source_variants()")

    # -- shape-preserving elementwise maps -----------------------------------
    if kind is OpKind.ELEMENTWISE:
        add([R] * arity, R, sharded=False)
        for d in out_dims():
            add([S(d)] * arity, S(d), sharded=True)
        # Linear ops propagate partial values (needed on gradient paths).
        if node.op in ("identity", "dropout", "neg", "scale"):
            add([P], P, sharded=False)
        if node.op == "add":
            add([P, P], P, sharded=False)
        return variants

    if kind is OpKind.BROADCAST_BIAS:
        add([R, R], R, sharded=False)
        for d in out_dims():
            if d == out_spec.rank - 1:
                add([S(d), S(0)], S(d), sharded=True)
            else:
                add([S(d), R], S(d), sharded=True)
        return variants

    if kind is OpKind.MATMUL:
        a, b = in_specs
        if cfg.enable_sfb:
            add([R, R], R, sharded=False)  # duplicated compute (enables SFB)
        if a.rank == 2 and b.rank == 2:
            if _input_shardable(a.shape, 0, cfg, num_devices):
                add([S(0), R], S(0), sharded=True)
            if _input_shardable(b.shape, 1, cfg, num_devices):
                add([R, S(1)], S(1), sharded=True)
            if _input_shardable(a.shape, 1, cfg, num_devices):
                add([S(1), S(0)], P, sharded=True)
        elif a.rank == 3 and b.rank == 3:
            if _input_shardable(a.shape, 0, cfg, num_devices):
                add([S(0), S(0)], S(0), sharded=True)
            if _input_shardable(a.shape, 1, cfg, num_devices):
                add([S(1), R], S(1), sharded=True)
            if _input_shardable(b.shape, 2, cfg, num_devices):
                add([R, S(2)], S(2), sharded=True)
            if _input_shardable(a.shape, 2, cfg, num_devices):
                add([S(2), S(1)], P, sharded=True)
        elif a.rank == 3 and b.rank == 2:
            if _input_shardable(a.shape, 0, cfg, num_devices):
                add([S(0), R], S(0), sharded=True)
            if _input_shardable(a.shape, 1, cfg, num_devices):
                add([S(1), R], S(1), sharded=True)
            if _input_shardable(b.shape, 1, cfg, num_devices):
                add([R, S(1)], S(2), sharded=True)
            if _input_shardable(a.shape, 2, cfg, num_devices):
                add([S(2), S(0)], P, sharded=True)
        return variants

    if kind is OpKind.REDUCTION:
        add([R], R, sharded=False)
        if node.op == "reduce_sum":
            for d, size in enumerate(in_specs[0].shape):
                if size >= max(cfg.min_shard_dim_size, num_devices):
                    add([S(d)], P, sharded=True)
        return variants

    if kind is OpKind.NORMALIZATION:
        axis = int(node.attrs.get("axis", -1)) % out_spec.rank
        add([R] * arity, R, sharded=False)
        for d in out_dims():
            if d != axis:
                add([S(d)] * arity, S(d), sharded=True)
        return variants

    if kind in (OpKind.RESHAPE, OpKind.FLATTEN):
        add([R], R, sharded=False)
        add([P], P, sharded=False)
        for din, dout in _reshape_dim_map(in_specs[0].shape, out_spec.shape):
            if _input_shardable(in_specs[0].shape, din, cfg, num_devices):
                add([S(din)], S(dout), sharded=True)
        return variants

    if kind is OpKind.TRANSPOSE:
        perm = tuple(int(p) for p in node.attrs["perm"])
        add([R], R, sharded=False)
        add([P], P, sharded=False)
        for dout, din in enumerate(perm):
            if _input_shardable(in_specs[0].shape, din, cfg, num_devices):
                add([S(din)], S(dout), sharded=True)
        return variants

    if kind is OpKind.EMBEDDING:
        ids, table = in_specs
        add([R, R], R, sharded=False)
        for d in range(ids.rank):
            if _input_shardable(ids.shape, d, cfg, num_devices):
                add([S(d), R], S(d), sharded=True)
        if _input_shardable(table.shape, 1, cfg, num_devices):
            add([R, S(1)], S(out_spec.rank - 1), sharded=True)
        return variants

    if kind in (OpKind.CONV, OpKind.POOL, OpKind.CONV_GRAD_INPUT):
        add([R] * arity, R, sharded=False)
        if _input_shardable(out_spec.shape, 0, cfg, num_devices):
            states = [S(0)] + [R] * (arity - 1)
            if kind is OpKind.POOL and arity == 2:  # pool grads take (dy, x)
                states = [S(0), S(0)]
            add(states, S(0), sharded=True)
        return variants

    if kind is OpKind.CONV_GRAD_WEIGHT:
        add([R, R], R, sharded=False)
        if _input_shardable(in_specs[0].shape, 0, cfg, num_devices):
            add([S(0), S(0)], P, sharded=True)
        return variants

    if kind is OpKind.CROSS_ENTROPY:
        if node.op == "cross_entropy":
            add([R, R], R, sharded=False)
            if _input_shardable(in_specs[0].shape, 0, cfg, num_devices):
                add([S(0), S(0)], P, sharded=True)
        else:  # cross_entropy_grad(dy, logits, labels)
            add([R, R, R], R, sharded=False)
            if _input_shardable(in_specs[1].shape, 0, cfg, num_devices):
                add([R, S(0), S(0)], S(0), sharded=True)
        return variants

    if kind is OpKind.BROADCAST:
        add([R], R, sharded=False)
        return variants

    if kind is OpKind.SUM_LEADING:
        src = in_specs[0]
        add([R], R, sharded=False)
        for d in range(src.rank - 1):
            if _input_shardable(src.shape, d, cfg, num_devices):
                add([S(d)], P, sharded=True)
        if _input_shardable(src.shape, src.rank - 1, cfg, num_devices):
            add([S(src.rank - 1)], S(0), sharded=True)
        return variants

    if kind is OpKind.EMBEDDING_GRAD:
        dy, ids = in_specs
        add([R, R], R, sharded=False)
        for d in range(ids.rank):
            if _input_shardable(ids.shape, d, cfg, num_devices):
                add([S(d), S(d)], P, sharded=True)
        if _input_shardable(dy.shape, dy.rank - 1, cfg, num_devices):
            add([S(dy.rank - 1), R], S(1), sharded=True)
        return variants

    if kind is OpKind.MOE_DISPATCH:
        # moe_dispatch(tokens [N,H], gates [N,E]) -> [E, C, H]
        # moe_combine_grad(dy [N,H], gates [N,E]) -> [E, C, H]
        add([R, R], R, sharded=False)
        if _input_shardable(in_specs[0].shape, 0, cfg, num_devices):
            add([S(0), S(0)], S(1), sharded=True)
        return variants

    if kind is OpKind.MOE_COMBINE:
        # moe_combine(expert_out [E,C,H], gates [N,E]) -> [N,H]
        # moe_dispatch_grad(dy [E,C,H], gates [N,E]) -> [N,H]
        add([R, R], R, sharded=False)
        if _input_shardable(in_specs[1].shape, 0, cfg, num_devices):
            add([S(1), S(0)], S(0), sharded=True)
        return variants

    if kind is OpKind.OPTIMIZER:
        add([R, R], R, sharded=False)
        for d in out_dims():
            add([S(d), S(d)], S(d), sharded=True)
        return variants

    raise ValueError(f"no sharding rules defined for operator kind {kind!r} (node {node.name!r})")


def _reshape_dim_map(
    in_shape: Tuple[int, ...], out_shape: Tuple[int, ...]
) -> List[Tuple[int, int]]:
    """Pairs (input dim, output dim) along which a sharded reshape stays local.

    A shard along an input dimension survives a local reshape when either the
    dimension lies in the longest common prefix/suffix of the two shapes, or
    it is the outermost dimension and the reshape only merges/splits leading
    dimensions (e.g. ``[B, S, H] -> [B*S, H]`` or ``[B*h, S, d] ->
    [B, h, S, d]``): the locally reshaped shards concatenate to the reshaped
    reference tensor because the trailing "row" layout is unchanged.
    """
    pairs: List[Tuple[int, int]] = []
    rin, rout = len(in_shape), len(out_shape)
    # common prefix
    prefix = 0
    while prefix < min(rin, rout) and in_shape[prefix] == out_shape[prefix]:
        prefix += 1
    for d in range(prefix):
        pairs.append((d, d))
    # common suffix
    suffix = 0
    while (
        suffix < min(rin, rout) - prefix
        and in_shape[rin - 1 - suffix] == out_shape[rout - 1 - suffix]
    ):
        suffix += 1
    for k in range(suffix):
        pairs.append((rin - 1 - k, rout - 1 - k))
    # merging all leading input dims into output dim 0, or splitting input
    # dim 0 into several leading output dims
    if rout < rin and suffix >= rout - 1:
        pairs.append((0, 0))
    if rout > rin and suffix >= rin - 1:
        pairs.append((0, 0))
    return sorted(set(pairs))


def source_variants(
    node: Node, cfg: SynthesisConfig, num_devices: int
) -> List[DistState]:
    """Distribution states a source node can be created in."""
    states: List[DistState] = []
    if node.op == "constant":
        return [R]
    if cfg.force_data_parallel:
        # Baseline emulation: placeholders are always sharded along the batch
        # dimension, parameters are replicated (except expert parameters when
        # expert parallelism is requested, as in DeepSpeed-MoE).
        if node.op == "placeholder":
            if node.spec.rank and node.spec.shape[0] >= max(cfg.min_shard_dim_size, num_devices):
                return [S(0)]
            return [R]
        if cfg.expert_parallel_parameters and node.spec.rank == 3:
            return [S(0)]
        return [R]
    for d, size in enumerate(node.spec.shape):
        if size >= max(cfg.min_shard_dim_size, num_devices):
            states.append(S(d))
    if cfg.enable_replicated_sources or not states:
        states.append(R)
    return states


# ---------------------------------------------------------------------------
# MoE capacity-tensor taint
# ---------------------------------------------------------------------------

def moe_restricted_refs(graph: ComputationGraph) -> FrozenSet[str]:
    """Reference tensors that live in the MoE expert-capacity layout.

    The outputs of ``moe_dispatch``/``moe_combine_grad`` hold one row per
    *capacity slot*, and slots are assigned by device-local routing when the
    tokens are sharded.  Any tensor that still carries that capacity dimension
    (tracked positionally through transposes, element-wise ops and batched
    matmuls) may only be re-distributed with All-To-All — gathering it to a
    "replicated" tensor would not reproduce the reference value.  Tensors that
    contract the capacity dimension away (e.g. expert weight gradients) leave
    the restricted set and can be all-reduced normally.
    """
    capacity_dim: Dict[str, int] = {}
    for node in graph:
        if node.op in ("moe_dispatch", "moe_combine_grad"):
            capacity_dim[node.name] = 1
            continue
        if node.op in ("moe_combine", "moe_dispatch_grad"):
            continue
        tainted_inputs = [(inp, capacity_dim[inp]) for inp in node.inputs if inp in capacity_dim]
        if not tainted_inputs:
            continue
        dim = _propagate_capacity_dim(node, graph, dict(tainted_inputs))
        if dim is not None:
            capacity_dim[node.name] = dim
    return frozenset(capacity_dim)


def _propagate_capacity_dim(
    node: Node, graph: ComputationGraph, tainted: Dict[str, int]
) -> Optional[int]:
    """Position of the capacity dimension in a node's output, if it survives."""
    kind = node.kind
    first_ref, first_dim = next(iter(tainted.items()))
    if kind is OpKind.TRANSPOSE:
        perm = tuple(int(p) for p in node.attrs["perm"])
        return perm.index(first_dim) if first_dim in perm else None
    if kind in (OpKind.ELEMENTWISE, OpKind.BROADCAST_BIAS, OpKind.NORMALIZATION):
        return first_dim
    if kind is OpKind.MATMUL:
        a_name, b_name = node.inputs
        a, b = graph.input_specs(node)
        if a.rank == 3 and b.rank == 3:
            if a_name in tainted:
                dim = tainted[a_name]
                if dim == 1:
                    return 1  # rows survive as output dim 1
                return None  # capacity was the contracted dimension
            if b_name in tainted:
                dim = tainted[b_name]
                if dim == 2:
                    return 2
                return None
        return None
    if kind in (OpKind.RESHAPE, OpKind.FLATTEN):
        for din, dout in _reshape_dim_map(graph.input_specs(node)[0].shape, node.spec.shape):
            if din == first_dim:
                return dout
        return None
    # Reductions and other contractions drop the capacity layout.
    return None


# ---------------------------------------------------------------------------
# theory construction
# ---------------------------------------------------------------------------

def build_theory(
    graph: ComputationGraph, num_devices: int, config: Optional[SynthesisConfig] = None
) -> Theory:
    """Derive the background theory T for a training graph.

    Args:
        graph: single-device training graph (forward + backward + updates).
        num_devices: number of HAP virtual devices in the cluster.
        config: synthesizer configuration (defaults to full HAP).

    Returns:
        A :class:`Theory` containing computation, fused-source and
        communication rules.
    """
    cfg = config or SynthesisConfig()
    graph.validate()
    restricted = moe_restricted_refs(graph)

    source_states: Dict[str, List[DistState]] = {}
    for node in graph:
        if node.kind is OpKind.SOURCE:
            source_states[node.name] = source_variants(node, cfg, num_devices)

    # 1. computation rules ------------------------------------------------------
    comp_rules: List[Rule] = []
    produced: Dict[str, Set[DistState]] = {name: set() for name in graph.node_names}
    wanted: Dict[str, Set[DistState]] = {name: set() for name in graph.node_names}

    for name, states in source_states.items():
        produced[name].update(states)

    for node in graph:
        if node.kind is OpKind.SOURCE:
            continue
        for variant in node_variants(node, graph, cfg, num_devices):
            pre = frozenset(
                Property(inp, state) for inp, state in zip(node.inputs, variant.input_states)
            )
            out_prop = Property(node.name, variant.output_state)
            instr = CompInstruction(
                node=node.name,
                op=node.op,
                inputs=tuple(Property(i, s) for i, s in zip(node.inputs, variant.input_states)),
                output=out_prop,
                flops_sharded=variant.flops_sharded,
            )
            comp_rules.append(
                Rule(
                    pre=pre,
                    instructions=(instr,),
                    post=frozenset({out_prop}),
                    completes=frozenset({node.name}),
                    communicates=frozenset(),
                )
            )
            produced[node.name].add(variant.output_state)
            for inp, state in zip(node.inputs, variant.input_states):
                wanted[inp].add(state)

    # 2. fuse source rules into consumers (search-time optimisation #1) ---------
    fused_rules: List[Rule] = []
    for rule in comp_rules:
        fused_rules.extend(_fuse_sources(rule, graph, source_states))
    all_comp_rules = comp_rules + fused_rules

    # 3. communication rules -----------------------------------------------------
    comm_rules: List[Rule] = []
    for node in graph:
        name = node.name
        if node.kind is OpKind.SOURCE:
            continue  # optimisation #2: sources use *-Shard instructions instead
        targets = set(wanted[name])
        if name in graph.outputs:
            # Outputs only need to exist in some state; no extra targets.
            pass
        sources = set(produced[name])
        if not sources or not targets:
            continue
        for src in sources:
            for dst in targets:
                if src == dst:
                    continue
                comm_rules.extend(
                    _comm_rules_for(name, node, src, dst, cfg, name in restricted)
                )

    rules = all_comp_rules + comm_rules
    if cfg.enable_state_interning:
        rules = _intern_rules(rules)
    return Theory(graph, num_devices, cfg, rules, restricted)


def _intern_rules(rules: List[Rule]) -> List[Rule]:
    """Canonicalize equal ``Property`` objects across all rules.

    Different rules independently construct equal ``Property`` instances for
    the same (ref, state) pair.  Replacing them with one canonical object per
    value lets the synthesizer's frozenset operations (subset checks, unions,
    dominance-key hashing) hit the pointer-equality fast path instead of
    falling back to field-by-field ``__eq__``.  Values are unchanged, so the
    synthesized programs compare equal to the non-interned ones.
    """
    pool: Dict[Property, Property] = {}

    def canon(prop: Property) -> Property:
        cached = pool.get(prop)
        if cached is None:
            cached = pool[prop] = prop
        return cached

    def canon_instr(instr: Instruction) -> Instruction:
        if isinstance(instr, CommInstruction):
            return CommInstruction(
                kind=instr.kind,
                input=canon(instr.input),
                output=canon(instr.output),
                dim=instr.dim,
                dim2=instr.dim2,
            )
        return CompInstruction(
            node=instr.node,
            op=instr.op,
            inputs=tuple(canon(p) for p in instr.inputs),
            output=canon(instr.output),
            flops_sharded=instr.flops_sharded,
        )

    out: List[Rule] = []
    for rule in rules:
        out.append(
            Rule(
                pre=frozenset(canon(p) for p in rule.pre),
                instructions=tuple(canon_instr(i) for i in rule.instructions),
                post=frozenset(canon(p) for p in rule.post),
                completes=rule.completes,
                communicates=rule.communicates,
            )
        )
    return out


def _fuse_sources(
    rule: Rule, graph: ComputationGraph, source_states: Dict[str, List[DistState]]
) -> List[Rule]:
    """Fuse source-producing instructions into a consumer rule.

    For every subset of the rule's preconditions that refer to source nodes,
    produce a variant whose instructions create those sources inline and whose
    precondition no longer mentions them.
    """
    source_pre = [p for p in rule.pre if p.ref in source_states]
    fused: List[Rule] = []
    if not source_pre:
        return fused
    # Only fuse preconditions whose state the source can actually be created in.
    feasible = [p for p in source_pre if p.state in source_states[p.ref]]
    for k in range(1, len(feasible) + 1):
        for subset in itertools.combinations(feasible, k):
            new_pre = frozenset(p for p in rule.pre if p not in subset)
            prefix_instrs = tuple(
                CompInstruction(
                    node=p.ref,
                    op=graph[p.ref].op,
                    inputs=(),
                    output=p,
                    flops_sharded=p.state.is_sharded,
                )
                for p in subset
            )
            fused.append(
                Rule(
                    pre=new_pre,
                    instructions=prefix_instrs + rule.instructions,
                    post=rule.post | frozenset(subset),
                    completes=rule.completes | frozenset(p.ref for p in subset),
                    communicates=rule.communicates,
                )
            )
    return fused


def _comm_rules_for(
    ref: str,
    node: Node,
    src: DistState,
    dst: DistState,
    cfg: SynthesisConfig,
    restricted: bool,
) -> List[Rule]:
    """Communication rules converting ``ref`` from state ``src`` to ``dst``."""
    rules: List[Rule] = []

    def make(
        kind: CollectiveKind,
        dim: Optional[int] = None,
        dim2: Optional[int] = None,
        counts_as_communication: bool = True,
    ) -> Rule:
        instr = CommInstruction(
            kind=kind,
            input=Property(ref, src),
            output=Property(ref, dst),
            dim=dim,
            dim2=dim2,
        )
        return Rule(
            pre=frozenset({Property(ref, src)}),
            instructions=(instr,),
            post=frozenset({Property(ref, dst)}),
            completes=frozenset(),
            communicates=frozenset({ref}) if counts_as_communication else frozenset(),
        )

    if restricted:
        if src.is_sharded and dst.is_sharded and src.dim != dst.dim:
            rules.append(make(CollectiveKind.ALL_TO_ALL, dim=src.dim, dim2=dst.dim))
        return rules

    if src.is_partial and dst.is_replicated:
        rules.append(make(CollectiveKind.ALL_REDUCE))
    elif src.is_partial and dst.is_sharded:
        rules.append(make(CollectiveKind.REDUCE_SCATTER, dim=dst.dim))
    elif src.is_sharded and dst.is_replicated:
        rules.append(make(CollectiveKind.ALL_GATHER, dim=src.dim))
        if cfg.enable_grouped_all_gather:
            rules.append(make(CollectiveKind.ALL_GATHER_GROUPED, dim=src.dim))
    elif src.is_sharded and dst.is_sharded and src.dim != dst.dim:
        rules.append(make(CollectiveKind.ALL_TO_ALL, dim=src.dim, dim2=dst.dim))
    elif src.is_replicated and dst.is_sharded:
        # Each device keeps only its own slice of the replicated tensor; this
        # involves no network traffic and does not count against the
        # one-communication-per-tensor budget.
        rules.append(
            make(CollectiveKind.SLICE, dim=dst.dim, counts_as_communication=False)
        )
    return rules
