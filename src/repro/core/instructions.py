"""The distributed instruction set (Fig. 8 of the paper).

A distributed program is a sequence of instructions of two flavours:

* :class:`CompInstruction` — run an operator on every device over local
  tensors.  Specialised source forms (``Placeholder-Shard(d)``,
  ``Parameter-Shard(d)``) are represented as a regular ``placeholder`` /
  ``parameter`` computation whose output state is *sharded*.
* :class:`CommInstruction` — run a collective (All-Reduce, padded All-Gather,
  grouped-Broadcast All-Gather, Reduce-Scatter, All-To-All) over a distributed
  tensor to change its state.

Each instruction records the *properties* (reference tensor + distribution
state) of its inputs and its output, which is all the SPMD runtime needs to
pick the right local operands, and all the cost model needs to account for
computation scaling and communication volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..collectives.cost import CollectiveKind
from .properties import Property


@dataclass(frozen=True)
class CompInstruction:
    """One computation instruction executed by every device.

    Attributes:
        node: name of the single-device node this instruction emulates.
        op: operator name (normally the node's own operator).
        inputs: properties naming which distributed version of each input
            operand the instruction consumes, in operator argument order.
        output: property established for the produced distributed tensor.
        flops_sharded: True if each device only performs a ``B_j`` fraction of
            the reference node's flops (the common case when an input or the
            output is sharded); False when the computation is replicated on
            every device (e.g. the duplicated MatMul of SFB).
    """

    node: str
    op: str
    inputs: Tuple[Property, ...]
    output: Property
    flops_sharded: bool = True

    def __post_init__(self) -> None:
        # Instructions key the cost-model memo tables; cache the hash.
        object.__setattr__(
            self,
            "_hash",
            hash((self.node, self.op, self.inputs, self.output, self.flops_sharded)),
        )

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    @property
    def is_communication(self) -> bool:
        return False

    def describe(self) -> str:
        """One-line textual rendering used by program listings."""
        args = ", ".join(f"{p.ref}|{p.state}" for p in self.inputs)
        suffix = "" if self.flops_sharded else "  # replicated compute"
        if self.op in ("placeholder", "parameter", "constant"):
            if self.output.state.is_sharded:
                return f"{self.node} = {self.op}-shard(dim={self.output.state.dim}){suffix}"
            return f"{self.node} = {self.op}(){suffix}"
        return f"{self.node} = {self.op}({args}) -> {self.output.state}{suffix}"


@dataclass(frozen=True)
class CommInstruction:
    """One collective communication instruction.

    Attributes:
        kind: the collective primitive (including the grouped-Broadcast
            implementation of All-Gather).
        input: property of the consumed distributed tensor.
        output: property established by the collective.
        dim: primary dimension argument (gather/scatter dimension).
        dim2: secondary dimension for All-To-All (destination dimension).
    """

    kind: CollectiveKind
    input: Property
    output: Property
    dim: Optional[int] = None
    dim2: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_hash",
            hash((self.kind, self.input, self.output, self.dim, self.dim2)),
        )

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    @property
    def node(self) -> str:
        """The reference tensor being communicated."""
        return self.input.ref

    @property
    def is_communication(self) -> bool:
        return True

    @property
    def synchronises(self) -> bool:
        """True for real collectives that act as stage boundaries (Sec. 3.2).

        The local ``slice`` pseudo-collective (replicated -> sharded) involves
        no network traffic and therefore does not synchronise the devices.
        """
        return self.kind is not CollectiveKind.SLICE

    def describe(self) -> str:
        """One-line textual rendering used by program listings."""
        dims = ""
        if self.kind is CollectiveKind.ALL_TO_ALL:
            dims = f", {self.dim} -> {self.dim2}"
        elif self.dim is not None:
            dims = f", dim={self.dim}"
        return f"{self.input.ref} : {self.input.state} --{self.kind.value}{dims}--> {self.output.state}"


Instruction = Union[CompInstruction, CommInstruction]


def is_source_op(op: str) -> bool:
    """True for operators bound to external data (no compute, no inputs)."""
    return op in ("placeholder", "parameter", "constant")
