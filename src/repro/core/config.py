"""Configuration of the HAP planner (synthesizer + load balancer)."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional


def verify_default() -> bool:
    """Default of the ``verify_after_plan`` flags.

    Reads the ``REPRO_VERIFY`` environment variable so test runs can turn the
    static verifier on for every plan any test builds (``tests/conftest.py``
    sets it) without threading the flag through every config construction.
    Unset/0/false means off — production planning opts in explicitly.
    """
    return os.environ.get("REPRO_VERIFY", "0").strip().lower() not in (
        "",
        "0",
        "false",
        "no",
    )


@dataclass
class SynthesisConfig:
    """Knobs of the program synthesizer and its background theory.

    The defaults correspond to the full HAP system; the ablation study
    (Fig. 15) switches individual features off.

    Attributes:
        enable_sfb: include the duplicated-computation MatMul rule that makes
            sufficient factor broadcasting reachable (Sec. 4.4).
        enable_grouped_all_gather: include the grouped-Broadcast
            implementation of All-Gather as an alternative instruction.
        enable_replicated_sources: allow ``Placeholder()``/``Parameter()``
            (fully replicated) besides the sharded variants.
        min_shard_dim_size: tensor dimensions smaller than this are never
            considered as sharding dimensions.
        max_search_steps: hard cap on A* iterations (safety valve).
        beam_width: number of candidate distribution states kept per level by
            the beam search (and cap on the open list of the A* search);
            ``None`` keeps every candidate.
        search_strategy: ``"beam"`` (default) runs a level-synchronised beam
            search — one level per single-device node, keeping the
            ``beam_width`` cheapest distribution states per level; this is
            what makes Python-side synthesis scale to the full benchmark
            models.  ``"astar"`` runs the priority-queue search of Fig. 10.
        follow_topological_order: when True (the default) computation nodes
            are emulated following one fixed topological order of the
            single-device graph and communication rules are only applied when
            they enable the next node.  This is the reproduction's analogue of
            the paper's search-time optimisations for large models: it
            preserves the per-node sharding/communication choices (the
            decisions that matter for cost) while removing the combinatorial
            freedom of interleaving unrelated instructions.  Setting it to
            False recovers the unrestricted search of Fig. 10, which is only
            practical for small graphs in pure Python.
        use_subsumption_pruning: prune programs whose property set is a subset
            of a cheaper program's (lines 9-14 of Fig. 10) in addition to the
            exact-state dominance check.
        enable_rule_indexing: precompute candidate-rule indexes (completion
            bitmasks, per-node topological candidate lists, per-property
            enabling-collective lists, consumer liveness masks) so the search
            never scans the full rule list per expansion.  Purely an
            implementation speed-up: the candidate sets, their order, and
            therefore the synthesized program are identical with the flag off.
        enable_state_interning: intern search-state keys (the
            ``(properties, completed, communicated)`` triple) to small integer
            ids so dominance-table and beam-merge lookups hash a machine word
            instead of re-hashing large frozensets, and canonicalize equal
            ``Property`` objects across the theory's rules at build time so
            frozenset operations hit the pointer-equality fast path.
            Result-identical.
        enable_pareto_store: store the per-state-key undominated cost vectors
            in a sum-sorted Pareto front with early-exit dominance checks
            instead of a flat list scanned in full.  The dominance predicate
            (and its tolerance) is unchanged, so accept/reject decisions — and
            the synthesized program — are identical.
        enable_cost_memoization: memoize per-(rule, sharding-ratio-signature)
            cost-model evaluations across expansions.  The cached values are
            replayed in the original per-instruction order, so the accumulated
            floating-point costs are bit-identical to the unmemoized path.
        enable_vectorized_cost: rank beam candidates with numpy array
            arithmetic (stacked per-state cost vectors, a stable lexsort)
            instead of per-candidate Python ``zip`` loops.  The ranking key —
            ``(closed + open-stage critical path, total device work)`` with
            left-to-right float accumulation — is computed by the exact same
            elementwise operations in the exact same order, so the surviving
            beam (and therefore the synthesized program) is bit-identical;
            ``tests/test_optimization_parity.py`` enforces it.
        enable_block_reuse: detect repeated subgraph blocks (transformer
            layers, their backward blocks, per-layer optimizer updates) in the
            topological emulation order and replay the beam-search decisions
            of the first occurrence across the later ones instead of
            re-expanding the full per-level candidate set.  Every replayed
            step re-runs the exact cost model on the occurrence's own rules,
            and replay is guarded by a structural entry signature — any
            mismatch falls back to full expansion (and re-records the block),
            so the synthesized program is identical to the flag-off path.
            Only the level-synchronised beam search uses it.
        verify_after_plan: run the static program verifier
            (:func:`repro.verify.verify_program` — dataflow, collective
            legality, compute-flag and cost-accounting checks) on the
            synthesized program at the end of every
            :meth:`~repro.core.pipeline.HAPPlanner.plan` call, raising
            :class:`~repro.verify.base.PlanVerificationError` on any
            error-severity diagnostic.  Defaults to the ``REPRO_VERIFY``
            environment variable (on in tests); excluded from plan-cache keys
            (verification never changes the plan).
        synthesis_workers: worker processes used to expand each beam level in
            parallel (1 = serial, the default).  Each level shards the
            entering states across a persistent fork-based pool shared with
            ``planner_workers`` (see :mod:`repro.core.workerpool`); workers
            return compactly encoded children and the parent merges and ranks
            them in serial generation order, so the surviving beam — and the
            synthesized program, its cost, and the ``expanded_states`` /
            ``generated_states`` counters — are bit-identical to serial.
            Only the level-synchronised beam search uses it (A* ignores the
            flag), replayed block-reuse occurrences skip the pool, and the
            count is clamped to the process budget so nesting under
            ``planner_workers`` never oversubscribes the machine.  Excluded
            from plan-cache keys (parallelism never changes the plan).
    """

    enable_sfb: bool = True
    enable_grouped_all_gather: bool = True
    enable_replicated_sources: bool = True
    min_shard_dim_size: int = 2
    max_search_steps: int = 2_000_000
    beam_width: Optional[int] = 32
    follow_topological_order: bool = True
    use_subsumption_pruning: bool = False
    search_strategy: str = "beam"
    # Hot-path optimisation switches (all result-identical; kept individually
    # toggleable for A/B benchmarking — see benchmarks/bench_synthesis.py).
    enable_rule_indexing: bool = True
    enable_state_interning: bool = True
    enable_pareto_store: bool = True
    enable_cost_memoization: bool = True
    enable_vectorized_cost: bool = True
    enable_block_reuse: bool = False
    verify_after_plan: bool = field(default_factory=verify_default)
    # Baseline-emulation switches (used by repro.baselines, not by HAP itself):
    # restrict the theory so only data-parallel programs exist, optionally with
    # expert parallelism for rank-3 (expert) parameters.
    force_data_parallel: bool = False
    expert_parallel_parameters: bool = False
    synthesis_workers: int = 1

    def __post_init__(self) -> None:
        if self.synthesis_workers < 1:
            raise ValueError(
                f"synthesis_workers must be >= 1, got {self.synthesis_workers}"
            )


@dataclass
class LoadBalancerConfig:
    """Knobs of the LP-based sharding-ratio optimiser (Sec. 5).

    Attributes:
        num_segments: number of model segments that receive independent
            sharding ratios (Sec. 5.2); 1 reproduces the base case of Sec. 5.1.
        respect_memory: add per-device memory-capacity constraints to the LP.
        solver_method: scipy ``linprog`` method.
        enable_vectorized_cost: price ratio vectors through the batched
            (numpy-stacked) cost-model path: the LP polish re-prices the
            normalised solution in one :meth:`CostModel.evaluate_many` pass
            (``LoadBalanceResult.polished_objective``) and the planner's
            per-round (Q, B) pricing evaluates both ratio assignments of a
            round in a single batched call.  The batched path accumulates
            floats stage by stage in the scalar path's exact operation order,
            so every reported cost is bit-identical with the flag off;
            ``tests/test_optimization_parity.py`` enforces it.
    """

    num_segments: int = 1
    respect_memory: bool = False
    solver_method: str = "highs"
    enable_vectorized_cost: bool = True


@dataclass
class PlannerConfig:
    """Configuration of the full iterative optimisation (Sec. 3.1).

    Attributes:
        max_rounds: maximum number of (Q, B) alternation rounds.
        convergence_tolerance: relative cost improvement below which the
            alternation stops.
        synthesis: synthesizer configuration.
        load_balancer: load-balancer configuration.
        enable_load_balancer: if False the initial (computation-proportional)
            ratios are kept — the "Q"-only ablation point.
        enable_synthesizer: if False a pure data-parallel program is used —
            the "B"-only ablation point.
    """

    max_rounds: int = 4
    convergence_tolerance: float = 1e-3
    synthesis: SynthesisConfig = field(default_factory=SynthesisConfig)
    load_balancer: LoadBalancerConfig = field(default_factory=LoadBalancerConfig)
    enable_load_balancer: bool = True
    enable_synthesizer: bool = True
