"""A*-based distributed-program synthesis (Sec. 4.3 of the paper).

The synthesizer searches the space of distributed programs defined by the
background theory (:mod:`repro.core.rules`).  A partial program is represented
by its *search state*: the set of live properties, the set of emulated
single-device nodes, the set of communicated tensors, and the cost bookkeeping
of the stage currently being filled.  The search repeatedly pops the
lowest-score state from a priority queue and appends every applicable Hoare
triple, exactly as in Fig. 10, with the paper's three search-time
optimisations:

1. source instructions are pre-fused into consumer rules (done in
   :func:`repro.core.rules.build_theory`);
2. every reference tensor may be communicated at most once, and placeholders /
   parameters are never communicated (they are created already sharded);
3. properties of tensors whose consumers have all been emulated are dropped,
   which lets the dominance check merge many more states.

The dominance check itself generalises lines 9–14 of Fig. 10: two partial
programs with identical state are compared by their per-device accumulated
cost vectors, and the dominated one is discarded.
"""

from __future__ import annotations

import heapq
import itertools
import time as _time
from array import array
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..cluster.spec import ClusterSpec
from ..graph.canonical import BlockRun, find_repeated_blocks
from ..graph.graph import ComputationGraph
from ..graph.ops import OpKind
from . import workerpool
from .config import SynthesisConfig
from .costmodel import CostModel, beam_rank_order
from .instructions import CommInstruction, CompInstruction, Instruction
from .pareto import ParetoFront
from .program import DistributedProgram
from .properties import Property
from .rules import Rule, Theory, build_theory

#: Markers of the per-rule cost plan replayed by ``_apply`` when cost
#: memoization is enabled: a synchronising collective (closes the open stage)
#: or a per-device computation-time delta.
_SYNC = 0
_COMP = 1


class SynthesisError(RuntimeError):
    """Raised when no semantically equivalent distributed program is found."""


@dataclass
class SynthesisResult:
    """Outcome of one synthesis run.

    Attributes:
        program: the optimal distributed program found.
        cost: its estimated per-iteration time under the given ratios.
        expanded_states: number of states popped from the priority queue.
        generated_states: number of states pushed to the priority queue.
        elapsed_seconds: wall-clock synthesis time.
    """

    program: DistributedProgram
    cost: float
    expanded_states: int
    generated_states: int
    elapsed_seconds: float


class _SearchNode:
    """One partial program in the A* frontier (immutable once created)."""

    __slots__ = (
        "parent",
        "rule",
        "properties",
        "completed",
        "communicated",
        "closed_cost",
        "stage_comp",
        "completed_ideal",
        "depth",
        "topo_ptr",
        "prop_sid",
        "comm_sid",
    )

    def __init__(
        self,
        parent: Optional[_SearchNode],
        rule: Optional[Rule],
        properties: FrozenSet[Property],
        completed: int,
        communicated: FrozenSet[str],
        closed_cost: float,
        stage_comp: Tuple[float, ...],
        completed_ideal: float,
        depth: int,
        topo_ptr: int = 0,
        prop_sid: int = -1,
        comm_sid: int = -1,
    ) -> None:
        self.parent = parent
        self.rule = rule
        self.properties = properties
        self.completed = completed
        self.communicated = communicated
        self.closed_cost = closed_cost
        self.stage_comp = stage_comp
        self.completed_ideal = completed_ideal
        self.depth = depth
        #: index into the synthesizer's topological order of the first node
        #: not yet emulated (maintained incrementally when rule indexing is
        #: on; the naive path rescans from the start instead).
        self.topo_ptr = topo_ptr
        #: interned ids of ``properties`` / ``communicated`` (-1 when the
        #: fast _apply path is off).  State keys built from these ids hash
        #: two machine words instead of two frozensets.
        self.prop_sid = prop_sid
        self.comm_sid = comm_sid

    def instructions(self) -> List[Instruction]:
        """Reconstruct the instruction sequence by walking parent pointers."""
        rules: List[Rule] = []
        node: Optional[_SearchNode] = self
        while node is not None and node.rule is not None:
            rules.append(node.rule)
            node = node.parent
        out: List[Instruction] = []
        for rule in reversed(rules):
            out.extend(rule.instructions)
        return out

    def open_stage_cost(self) -> float:
        return max(self.stage_comp) if self.stage_comp else 0.0


class _OccurrenceInfo:
    """Static (ratio-independent) data of one repeated-block occurrence."""

    __slots__ = (
        "node_names",
        "occ_refs",
        "ref_idx",
        "ref_bits",
        "relevant_mask",
        "pending_masks",
        "sigmaps",
    )

    def __init__(
        self,
        node_names: Tuple[str, ...],
        occ_refs: Tuple[str, ...],
        ref_idx: Dict[str, int],
        ref_bits: Tuple[int, ...],
        relevant_mask: int,
        pending_masks: Tuple[int, ...],
    ) -> None:
        self.node_names = node_names
        self.occ_refs = occ_refs
        self.ref_idx = ref_idx
        self.ref_bits = ref_bits
        self.relevant_mask = relevant_mask
        self.pending_masks = pending_masks
        #: lazily-built signature -> rule maps per candidate list (signatures
        #: are structural, so the maps survive across synthesize() calls).
        self.sigmaps: Dict[Tuple, Dict[Tuple, Rule]] = {}


class _BlockRecord:
    """Recorded beam decisions of one block template.

    ``levels[j]`` holds, per surviving beam state of in-block level ``j``, the
    pair ``(parent index in the entering beam, descriptor chain)`` where the
    chain lists the applied rules (enabling collectives, then the computation
    rule) as block-local structural descriptors.  ``needed[j]`` is the set of
    level-``j`` beam positions consumed by later levels (the rest were padding
    in the template's beam and need not be replayed); the final level is
    needed in full, since the post-block search continues from it.
    ``exit_rel`` describes, per exit-beam position, the block-relevant part of
    the template's exit state — (property encodings, communicated ref indices,
    completed ref indices) — from which a replay reconstructs the occurrence's
    exit states directly: context irrelevant to the block passes through a
    block unchanged (liveness drops, completions and communications only ever
    touch the block's own references), so only cost accumulation needs to walk
    the decision chains.
    """

    __slots__ = ("entry_sig", "levels", "needed", "exit_rel")

    def __init__(
        self, entry_sig: Tuple, levels: List[List[Tuple]], exit_rel: List[Tuple]
    ) -> None:
        self.entry_sig = entry_sig
        self.levels = levels
        self.exit_rel = exit_rel
        needed: List[Set[int]] = [set() for _ in levels]
        if levels:
            needed[-1] = set(range(len(levels[-1])))
            for j in range(len(levels) - 2, -1, -1):
                needed[j] = {levels[j + 1][pos][0] for pos in needed[j + 1]}
        self.needed = needed


class ProgramSynthesizer:
    """Synthesizes the optimal distributed program for fixed sharding ratios."""

    def __init__(
        self,
        graph: ComputationGraph,
        cluster: ClusterSpec,
        config: Optional[SynthesisConfig] = None,
        theory: Optional[Theory] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.graph = graph
        self.cluster = cluster
        self.config = config or SynthesisConfig()
        self.theory = theory or build_theory(graph, cluster.num_devices, self.config)
        self.cost_model = cost_model or CostModel(
            graph, cluster, memoize=self.config.enable_cost_memoization
        )
        self._node_index = {name: i for i, name in enumerate(graph.node_names)}
        self._consumers = graph.consumers()
        self._outputs = set(graph.outputs)
        self._output_mask = 0
        for name in graph.outputs:
            self._output_mask |= 1 << self._node_index[name]
        self._total_ideal = sum(
            self.cost_model.ideal_node_time(n.name)
            for n in graph
            if n.kind is not OpKind.SOURCE
        )
        self._ideal_cache: Dict[str, float] = {}
        # Topological emulation order (non-source nodes only) used when
        # ``config.follow_topological_order`` is set.
        self._topo_order = [n.name for n in graph if n.kind is not OpKind.SOURCE]
        self._topo_pos = {name: i for i, name in enumerate(self._topo_order)}
        #: completion-bitmask of each topological-order node (topo_ptr scans).
        self._topo_masks = [1 << self._node_index[name] for name in self._topo_order]
        #: all-zero open-stage vector reused by the fast _apply path.
        self._zero_stage: Tuple[float, ...] = (0.0,) * cluster.num_devices
        # -- hot-path indexes (config.enable_rule_indexing) -------------------
        # Each index precomputes a state-independent quantity that the seed
        # implementation recomputed per expansion; candidate order is
        # preserved exactly, so synthesis results are identical either way.
        self._indexing = self.config.enable_rule_indexing
        #: id(rule) -> bitmask over graph nodes the rule completes.
        self._completes_mask: Dict[int, int] = {}
        #: ref -> (consumer bitmask, participates-in-liveness flag).
        self._liveness_mask: Dict[str, Tuple[int, bool]] = {}
        #: node name -> candidate rules of the topological-order search.
        self._topo_candidates: Dict[str, List[Rule]] = {}
        #: id(rule) -> (completes mask, ideal deltas, liveness candidates).
        self._rule_static_cache: Dict[int, Tuple[int, Tuple[float, ...], Tuple[str, ...]]] = {}
        #: id(rule) -> (cost plan, completes mask, ideals, liveness candidates)
        #: — the single-lookup cache of the fast _apply path (cleared with the
        #: cost plans whenever the ratios change).
        self._rule_runtime: Dict[int, Tuple] = {}
        if self._indexing:
            for rule in self.theory.rules:
                mask = 0
                for name in rule.completes:
                    mask |= 1 << self._node_index[name]
                self._completes_mask[id(rule)] = mask
            for name in graph.node_names:
                consumers = self._consumers.get(name, [])
                mask = 0
                for consumer in consumers:
                    mask |= 1 << self._node_index[consumer]
                self._liveness_mask[name] = (mask, bool(consumers) or name in self._outputs)
        # -- per-search caches -------------------------------------------------
        #: id(rule) -> cost-replay plan for the current ratios (cost memo).
        self._rule_plans: Dict[int, Tuple] = {}
        self._plan_ratios: Optional[Tuple[float, ...]] = None
        # -- interned property/communicated sets (state interning + fast apply) --
        # Children produced by applying one rule to one (property set,
        # completed mask) are identical, so _apply_fast replays the interned
        # result instead of rebuilding and re-hashing frozensets per child;
        # state keys then hash the small ids.  Result-identical (the cached
        # sets are exactly what the rebuild would produce).
        self._fast_sids = (
            self._indexing
            and self.config.enable_cost_memoization
            and self.config.enable_state_interning
        )
        #: frozenset -> (canonical frozenset, interned id).
        self._propset_intern: Dict[FrozenSet[Property], Tuple[FrozenSet[Property], int]] = {}
        self._commset_intern: Dict[FrozenSet[str], Tuple[FrozenSet[str], int]] = {}
        #: (prop_sid, id(rule), completed-after) -> (properties, prop_sid).
        self._prop_transition: Dict[Tuple[int, int, int], Tuple[FrozenSet[Property], int]] = {}
        #: (comm_sid, id(rule)) -> (communicated, comm_sid).
        self._comm_transition: Dict[Tuple[int, int], Tuple[FrozenSet[str], int]] = {}
        # -- block reuse (config.enable_block_reuse) ---------------------------
        #: id(rule) -> deterministic precondition order (see _ordered_pre).
        self._pre_order_cache: Dict[int, Tuple[Property, ...]] = {}
        #: segment schedule over the topological order: plain nodes plus
        #: repeated-block occurrences (built lazily on first beam search).
        self._reuse_segments: Optional[List[Tuple]] = None
        #: (id(run), occurrence index) -> per-occurrence static info.
        self._occ_info: Dict[Tuple[int, int], _OccurrenceInfo] = {}
        #: id(run) -> recorded template decisions (reset per synthesize call;
        #: decisions depend on the sharding ratios).
        self._reuse_records: Dict[int, _BlockRecord] = {}
        #: per-synthesize block-reuse accounting (inspectable after a run).
        self.reuse_stats: Dict[str, int] = {}
        # -- parallel beam expansion (config.synthesis_workers) ----------------
        # Wire tables give search states a process-independent encoding: rules
        # as indexes into theory.rules, properties / communicated refs as
        # indexes into deterministically sorted tables.  Workers forked from
        # this process rebuild (or inherit, via copy-on-write) the identical
        # tables, so encoded states and children round-trip exactly.
        self._wire_ready = False
        self._rule_wire_index: Dict[int, int] = {}
        self._wire_props: Tuple[Property, ...] = ()
        self._prop_wire_ids: Dict[Property, int] = {}
        self._wire_refs: Tuple[str, ...] = ()
        self._ref_wire_ids: Dict[str, int] = {}
        #: per-frozenset memo of sorted wire-id tuples (see _encode_sets);
        #: never stale — the wire tables are fixed for this synthesizer.
        self._propenc_cache: Dict[FrozenSet[Property], Tuple[int, ...]] = {}
        self._commenc_cache: Dict[FrozenSet[str], Tuple[int, ...]] = {}
        #: monotone per-synthesize() serial; workers clear their search-local
        #: tables when it advances (mirroring synthesize()'s own clears).
        self._search_serial = 0
        #: shared pool used by the current beam search (None = serial).
        self._level_pool: Optional[workerpool.WorkerPool] = None
        self._level_workers = 1

    def _intern_propset(self, fs: FrozenSet[Property]) -> Tuple[FrozenSet[Property], int]:
        entry = self._propset_intern.get(fs)
        if entry is None:
            entry = self._propset_intern[fs] = (fs, len(self._propset_intern))
        return entry

    def _intern_commset(self, fs: FrozenSet[str]) -> Tuple[FrozenSet[str], int]:
        entry = self._commset_intern.get(fs)
        if entry is None:
            entry = self._commset_intern[fs] = (fs, len(self._commset_intern))
        return entry

    # -- helpers -----------------------------------------------------------------
    def _ideal(self, name: str) -> float:
        if name not in self._ideal_cache:
            node = self.graph[name]
            self._ideal_cache[name] = (
                0.0 if node.kind is OpKind.SOURCE else self.cost_model.ideal_node_time(name)
            )
        return self._ideal_cache[name]

    def _score(self, node: _SearchNode) -> float:
        remaining = max(self._total_ideal - node.completed_ideal, 0.0)
        return node.closed_cost + max(node.open_stage_cost(), remaining)

    def _is_complete(self, node: _SearchNode) -> bool:
        return (node.completed & self._output_mask) == self._output_mask

    def _final_cost(self, node: _SearchNode) -> float:
        return node.closed_cost + node.open_stage_cost()

    def _rule_plan(self, rule: Rule, ratios: Sequence[float]) -> Tuple:
        """Cost-replay plan of a rule for fixed ratios (cost memoization).

        The plan replays the cost-model evaluations of ``_apply`` in the
        original per-instruction order, so accumulating it produces the exact
        floating-point values of the unmemoized path.
        """
        plan = self._rule_plans.get(id(rule))
        if plan is None:
            steps: List[Tuple[int, object]] = []
            for instr in rule.instructions:
                if isinstance(instr, CommInstruction):
                    if not instr.synchronises:
                        continue  # local slice: no synchronisation, no cost
                    steps.append((_SYNC, self.cost_model.comm_time(instr, ratios)))
                else:
                    steps.append((_COMP, tuple(self.cost_model.comp_times(instr, ratios))))
            plan = self._rule_plans[id(rule)] = tuple(steps)
        return plan

    def _rule_static(self, rule: Rule) -> Tuple[int, Tuple[float, ...], Tuple[str, ...]]:
        """State-independent per-rule quantities (rule indexing).

        Returns the bitmask of nodes the rule completes, their ideal-time
        contributions (in the same iteration order as the naive per-name
        accumulation, so the floating-point heuristic is bit-identical), and
        the reference tensors whose liveness may change when the rule fires.
        """
        info = self._rule_static_cache.get(id(rule))
        if info is None:
            mask = 0
            ideals: List[float] = []
            dead_candidates: Set[str] = set()
            for name in rule.completes:
                mask |= 1 << self._node_index[name]
                ideals.append(self._ideal(name))
                dead_candidates.update(self.graph[name].inputs)
                dead_candidates.add(name)
            info = (mask, tuple(ideals), tuple(dead_candidates))
            self._rule_static_cache[id(rule)] = info
        return info

    def _apply(self, node: _SearchNode, rule: Rule, ratios: Sequence[float]) -> _SearchNode:
        """Append a rule to a partial program, updating state and cost.

        The indexed/memoized fast path and the naive path below compute the
        same quantities (bit-identical floats, equal state sets); the fast
        path merely replaces per-expansion recomputation with precomputed
        lookups and keeps the open-stage vector as a tuple.
        """
        if self._indexing and self.config.enable_cost_memoization:
            return self._apply_fast(node, rule, ratios)
        closed = node.closed_cost
        stage = list(node.stage_comp)
        if self.config.enable_cost_memoization:
            for kind, payload in self._rule_plan(rule, ratios):
                if kind == _SYNC:
                    closed += (max(stage) if stage else 0.0) + payload
                    stage = [0.0] * len(stage)
                else:
                    for j, t in enumerate(payload):
                        stage[j] += t
        else:
            for instr in rule.instructions:
                if isinstance(instr, CommInstruction):
                    if not instr.synchronises:
                        continue  # local slice: no synchronisation, negligible cost
                    closed += (max(stage) if stage else 0.0) + self.cost_model.comm_time(instr, ratios)
                    stage = [0.0] * len(stage)
                else:
                    times = self.cost_model.comp_times(instr, ratios)
                    for j, t in enumerate(times):
                        stage[j] += t
        completed = node.completed
        completed_ideal = node.completed_ideal
        for name in rule.completes:
            completed |= 1 << self._node_index[name]
            completed_ideal += self._ideal(name)
        properties = set(node.properties) | set(rule.post)
        communicated = node.communicated | rule.communicates
        # Optimisation #3: drop properties of tensors that can no longer be
        # consumed (every consumer already emulated).  Program outputs with no
        # consumers (updated parameters, the loss) are dropped from the search
        # state as well — their completion is tracked by the bitmask, and
        # removing them lets the dominance check merge programs that made
        # different (already-paid-for) choices for earlier parts of the model.
        dead_candidates: Set[str] = set()
        for name in rule.completes:
            dead_candidates.update(self.graph[name].inputs)
            dead_candidates.add(name)
        for ref in dead_candidates:
            if self._indexing:
                mask, relevant = self._liveness_mask[ref]
                done = (completed & mask) == mask
            else:
                consumers = self._consumers.get(ref, [])
                done = all(completed & (1 << self._node_index[c]) for c in consumers)
                relevant = bool(consumers) or ref in self._outputs
            if done and relevant:
                properties = {p for p in properties if p.ref != ref}
        return _SearchNode(
            parent=node,
            rule=rule,
            properties=frozenset(properties),
            completed=completed,
            communicated=communicated,
            closed_cost=closed,
            stage_comp=tuple(stage),
            completed_ideal=completed_ideal,
            depth=node.depth + 1,
            topo_ptr=self._advance_topo_ptr(node.topo_ptr, completed),
        )

    def _apply_fast(self, node: _SearchNode, rule: Rule, ratios: Sequence[float]) -> _SearchNode:
        """Indexed + memoized variant of :meth:`_apply` (same results)."""
        rid = id(rule)
        runtime = self._rule_runtime.get(rid)
        if runtime is None:
            runtime = self._rule_runtime[rid] = (
                self._rule_plan(rule, ratios),
                *self._rule_static(rule),
            )
        plan, mask, ideals, dead_candidates = runtime
        closed = node.closed_cost
        stage = node.stage_comp
        for kind, payload in plan:
            if kind == _SYNC:
                closed += max(stage) + payload
                stage = self._zero_stage
            else:
                stage = tuple([s + t for s, t in zip(stage, payload)])
        completed = node.completed | mask if mask else node.completed
        completed_ideal = node.completed_ideal
        for ideal in ideals:
            completed_ideal += ideal
        topo_ptr = (
            self._advance_topo_ptr(node.topo_ptr, completed) if mask else node.topo_ptr
        )
        # The resulting property/communicated sets are pure functions of
        # (parent set, rule, completed-after), so with interning on they are
        # computed once and replayed — no per-child frozenset churn.
        use_sids = self._fast_sids and node.prop_sid >= 0
        prop_sid = comm_sid = -1
        if use_sids:
            pkey = (node.prop_sid, rid, completed)
            prop_entry = self._prop_transition.get(pkey)
            if prop_entry is None:
                prop_entry = self._prop_transition[pkey] = self._intern_propset(
                    self._child_properties(node, rule, mask, dead_candidates, completed)
                )
            properties, prop_sid = prop_entry
            ckey = (node.comm_sid, rid)
            comm_entry = self._comm_transition.get(ckey)
            if comm_entry is None:
                comm_entry = self._comm_transition[ckey] = self._intern_commset(
                    node.communicated | rule.communicates
                )
            communicated, comm_sid = comm_entry
        else:
            properties = self._child_properties(node, rule, mask, dead_candidates, completed)
            communicated = node.communicated | rule.communicates
        child = _SearchNode.__new__(_SearchNode)
        child.parent = node
        child.rule = rule
        child.properties = properties
        child.completed = completed
        child.communicated = communicated
        child.closed_cost = closed
        child.stage_comp = stage
        child.completed_ideal = completed_ideal
        child.depth = node.depth + 1
        child.topo_ptr = topo_ptr
        child.prop_sid = prop_sid
        child.comm_sid = comm_sid
        return child

    def _child_properties(
        self,
        node: _SearchNode,
        rule: Rule,
        mask: int,
        dead_candidates: Tuple[str, ...],
        completed: int,
    ) -> FrozenSet[Property]:
        """Property set after applying ``rule`` (post union, liveness drop)."""
        properties = node.properties | rule.post
        if not mask:
            # Pure communication rule: no node completed, liveness unchanged.
            return properties
        liveness = self._liveness_mask
        dead = None
        for ref in dead_candidates:
            ref_mask, relevant = liveness[ref]
            if relevant and (completed & ref_mask) == ref_mask:
                if dead is None:
                    dead = {ref}
                else:
                    dead.add(ref)
        if dead is not None:
            properties = frozenset([p for p in properties if p.ref not in dead])
        return properties

    def _advance_topo_ptr(self, ptr: int, completed: int) -> int:
        """First index >= ptr in topological order not yet emulated."""
        topo_masks = self._topo_masks
        n = len(topo_masks)
        while ptr < n and completed & topo_masks[ptr]:
            ptr += 1
        return ptr

    def _applicable_rules(self, node: _SearchNode) -> List[Rule]:
        """Rules whose precondition holds and whose application adds something."""
        if self.config.follow_topological_order:
            candidates = self._topological_candidates(node)
        else:
            candidates = self._unrestricted_candidates(node)
        out: List[Rule] = []
        props = node.properties
        completed = node.completed
        masks = self._completes_mask if self._indexing else None
        for rule in candidates:
            if rule.completes:
                if masks is not None:
                    if completed & masks[id(rule)]:
                        continue
                elif any(completed & (1 << self._node_index[n]) for n in rule.completes):
                    continue
            else:
                # pure communication rule: must add a new property
                if rule.post <= props:
                    continue
            if rule.communicates and (rule.communicates & node.communicated):
                continue
            if rule.pre <= props:
                out.append(rule)
        return out

    def _unrestricted_candidates(self, node: _SearchNode) -> List[Rule]:
        """All rules triggered by the live properties (paper's Fig. 10 search)."""
        candidates: List[Rule] = list(self.theory.rules_by_pre_ref.get("__empty__", []))
        seen: Set[int] = set()
        for ref in {p.ref for p in node.properties}:
            for rule in self.theory.rules_by_pre_ref.get(ref, []):
                rid = id(rule)
                if rid not in seen:
                    seen.add(rid)
                    candidates.append(rule)
        return candidates

    def _next_node(self, node: _SearchNode) -> Optional[str]:
        """First non-source node in topological order not yet emulated."""
        if self._indexing:
            # topo_ptr is maintained incrementally by _apply.
            if node.topo_ptr < len(self._topo_order):
                return self._topo_order[node.topo_ptr]
            return None
        for name in self._topo_order[self._first_pending(node):]:
            if not node.completed & (1 << self._node_index[name]):
                return name
        return None

    def _first_pending(self, node: _SearchNode) -> int:
        # depth is a lower bound on progress; scanning from 0 is still correct
        # but slower, so start a little earlier than the depth suggests.
        return 0

    def _topological_candidates(self, node: _SearchNode) -> List[Rule]:
        """Rules for the next node in topological order plus enabling comms.

        The computation candidates are the sharding variants of the next
        pending node.  The communication candidates are restricted to
        collectives whose output property appears in the precondition of one
        of those variants — i.e. collectives that can enable the next node.
        The candidate list depends only on the next pending node, so with rule
        indexing enabled it is computed once per node and reused.
        """
        next_node = self._next_node(node)
        if next_node is None:
            return []
        if self._indexing:
            cached = self._topo_candidates.get(next_node)
            if cached is None:
                cached = self._topo_candidates[next_node] = self._candidates_for(next_node)
            return cached
        return self._candidates_for(next_node)

    def _candidates_for(self, next_node: str) -> List[Rule]:
        comp_rules = self.theory.comp_rules_by_node.get(next_node, [])
        needed_props: Set[Property] = set()
        for rule in comp_rules:
            needed_props.update(rule.pre)
        candidates: List[Rule] = list(comp_rules)
        for ref in {p.ref for p in needed_props}:
            for comm_rule in self.theory.comm_rules_by_ref.get(ref, []):
                if any(p in needed_props for p in comm_rule.post):
                    candidates.append(comm_rule)
        return candidates

    # -- main search ----------------------------------------------------------------
    def synthesize(self, ratios: Optional[Sequence[float]] = None) -> SynthesisResult:
        """Synthesize the optimal distributed program for the given ratios.

        Dispatches to the level-synchronised beam search (default) or the
        unrestricted A* search of Fig. 10 according to the configuration.

        Args:
            ratios: sharding ratios ``B`` (defaults to computation-proportional
                ratios, the paper's ``B^(0)``).

        Returns:
            The best complete program found and search statistics.

        Raises:
            SynthesisError: if no complete program exists in the search space
                (indicates a missing rule for some operator).
        """
        # Keep the ratios as a tuple: the cost-model memo keys on it, and
        # tuple(t) on a tuple is free.
        ratios = tuple(ratios) if ratios is not None else tuple(self.cluster.proportional_ratios())
        if len(ratios) != self.cluster.num_devices:
            raise ValueError(
                f"expected {self.cluster.num_devices} sharding ratios, got {len(ratios)}"
            )
        # The rule cost plans are only valid for one ratio vector; drop them
        # when the ratios change between synthesize() calls.
        if ratios != self._plan_ratios:
            self._rule_plans.clear()
            self._rule_runtime.clear()
            self._plan_ratios = ratios
        # Interned sets and transitions are search-local: states never cross
        # synthesize() calls, so dropping the tables frees last search's sets.
        self._propset_intern.clear()
        self._commset_intern.clear()
        self._prop_transition.clear()
        self._comm_transition.clear()
        self._search_serial += 1
        if self.config.search_strategy == "beam":
            return self._beam_search(ratios)
        return self._astar_search(ratios)

    def _root(self) -> _SearchNode:
        m = self.cluster.num_devices
        prop_sid = comm_sid = -1
        properties: FrozenSet[Property] = frozenset()
        communicated: FrozenSet[str] = frozenset()
        if self._fast_sids:
            properties, prop_sid = self._intern_propset(properties)
            communicated, comm_sid = self._intern_commset(communicated)
        return _SearchNode(
            parent=None,
            rule=None,
            properties=properties,
            completed=0,
            communicated=communicated,
            closed_cost=0.0,
            stage_comp=tuple([0.0] * m),
            completed_ideal=0.0,
            depth=0,
            prop_sid=prop_sid,
            comm_sid=comm_sid,
        )

    def _result(
        self, best: _SearchNode, cost: float, expanded: int, generated: int, start: float
    ) -> SynthesisResult:
        instructions = best.instructions()
        established = frozenset(instr.output for instr in instructions)
        program = DistributedProgram(
            graph=self.graph,
            instructions=instructions,
            properties=established,
            num_devices=self.cluster.num_devices,
        )
        return SynthesisResult(
            program=program,
            cost=cost,
            expanded_states=expanded,
            generated_states=generated,
            elapsed_seconds=_time.perf_counter() - start,
        )

    # -- level-synchronised beam search ----------------------------------------------
    def _beam_search(self, ratios: Sequence[float]) -> SynthesisResult:
        """Per-node beam search over distribution states.

        Processes the single-device nodes in topological order; for every node
        it tries each sharding variant, optionally preceded by the collectives
        that establish the variant's missing preconditions, and keeps the
        ``beam_width`` cheapest resulting states (after merging states that
        are identical or dominated device-wise).
        """
        start = _time.perf_counter()
        beam_width = self.config.beam_width or 64
        states: List[_SearchNode] = [self._root()]
        self._bm_expanded = 0
        self._bm_generated = 1

        workers = self._parallel_workers()
        if workers > 1:
            # The fork snapshot must contain this synthesizer: registering it
            # (re-)marks the payload, and the shared pool re-forks lazily at
            # the first dispatch if its workers predate the registration.
            workerpool.register_payload("synthesizer", self)
            self._level_pool = workerpool.shared_pool(workers)
            self._level_workers = workers
        try:
            if self.config.enable_block_reuse and self.config.follow_topological_order:
                self._reuse_records = {}
                self.reuse_stats = {"occurrences": 0, "replayed": 0, "recorded": 0, "fallbacks": 0}
                segments = self._reuse_schedule()
                index = 0
                while index < len(segments):
                    if segments[index][0] == "node":
                        # Maximal run of plain levels: the unit the parallel
                        # path shards (replayed/recorded occurrences never
                        # touch the pool).
                        run_names: List[str] = []
                        while index < len(segments) and segments[index][0] == "node":
                            run_names.append(segments[index][1])
                            index += 1
                        states = self._node_run(states, run_names, ratios, beam_width)
                    else:
                        _, run, occ_idx = segments[index]
                        index += 1
                        states = self._block_occurrence(states, run, occ_idx, ratios, beam_width)
            else:
                states = self._node_run(states, self._topo_order, ratios, beam_width)
        finally:
            self._level_pool = None
            self._level_workers = 1

        complete = [s for s in states if self._is_complete(s)]
        if not complete:
            raise SynthesisError("beam search finished without a complete program")
        best = min(complete, key=self._final_cost)
        return self._result(
            best, self._final_cost(best), self._bm_expanded, self._bm_generated, start
        )

    def _beam_level(
        self,
        states: List[_SearchNode],
        node_name: str,
        ratios: Sequence[float],
        beam_width: int,
        record_into: Optional[List[Tuple]] = None,
    ) -> List[_SearchNode]:
        """Expand one topological-order node and keep the best states.

        When ``record_into`` is given, the surviving states are additionally
        recorded as ``(parent index in the entering beam, applied-rule chain)``
        pairs so a repeated-block occurrence can replay them.
        """
        interning = self.config.enable_state_interning
        children: Dict[Tuple, Tuple[_SearchNode, Tuple[float, ...]]] = {}
        # Keys from different levels never meet in one dict, so the
        # intern table is per-level — the triples become garbage with the
        # level instead of accumulating for the whole run.
        state_ids: Dict[Tuple, int] = {}
        comp_rules = self.theory.comp_rules_by_node.get(node_name, [])
        if not comp_rules:
            raise SynthesisError(f"no sharding rules for node {node_name!r}")
        for state in states:
            self._bm_expanded += 1
            for rule in comp_rules:
                for child in self._expand_with_rule(state, rule, ratios):
                    self._bm_generated += 1
                    if child.prop_sid >= 0:
                        # Interned ids from the fast _apply path: the key
                        # hashes three machine words, no frozensets.
                        key = (child.prop_sid, child.completed, child.comm_sid)
                    else:
                        key = (child.properties, child.completed, child.communicated)
                        if interning:
                            sid = state_ids.get(key)
                            if sid is None:
                                sid = state_ids[key] = len(state_ids)
                            key = sid
                    closed = child.closed_cost
                    vector = tuple([closed + c for c in child.stage_comp])
                    existing = children.get(key)
                    if existing is not None and all(
                        e <= v + 1e-15 for e, v in zip(existing[1], vector)
                    ):
                        continue
                    children[key] = (child, vector)
        if not children:
            raise SynthesisError(
                f"beam search dead-ended at node {node_name!r}: no variant of the "
                "operator is reachable from the surviving states"
            )
        # Rank by the cost actually accumulated so far (closed stages plus
        # the open stage's critical path, with total device work as the
        # tie-breaker).  The A* heuristic term would be identical for all
        # states at the same level and would therefore make them tie.
        # beam_rank_order's stability makes insertion (= generation) order
        # the final tie-breaker — the contract sharded expansion reproduces
        # by reassembling worker children in serial generation order.
        entries = list(children.values())
        order = beam_rank_order(
            [e[1] for e in entries],
            [e[0].stage_comp for e in entries],
            vectorized=self.config.enable_vectorized_cost,
        )
        survivors = [entries[i][0] for i in order[:beam_width]]
        if record_into is not None:
            origin = {id(s): i for i, s in enumerate(states)}
            for survivor in survivors:
                chain: List[Rule] = []
                cursor: Optional[_SearchNode] = survivor
                while cursor is not None and id(cursor) not in origin:
                    chain.append(cursor.rule)  # type: ignore[arg-type]
                    cursor = cursor.parent
                assert cursor is not None
                record_into.append((origin[id(cursor)], tuple(reversed(chain))))
        return survivors

    # -- parallel beam expansion (config.synthesis_workers) ----------------------------
    def _parallel_workers(self) -> int:
        """Effective worker count for this search (1 = stay serial)."""
        requested = getattr(self.config, "synthesis_workers", 1)
        if requested <= 1 or not workerpool.fork_available():
            return 1
        return workerpool.effective_workers(requested)

    def _node_run(
        self,
        states: List[_SearchNode],
        node_names: Sequence[str],
        ratios: Sequence[float],
        beam_width: int,
    ) -> List[_SearchNode]:
        """A maximal run of plain beam levels, serial or pool-sharded.

        Template *recording* and replay for block reuse never reach here:
        `_block_occurrence` calls `_beam_level` / `_replay_block` directly, so
        only plain full-expansion levels are ever sharded.  Serial and
        parallel runs produce the same survivors, so mixing them freely
        across block boundaries keeps results bit-identical.
        """
        if self._level_pool is None:
            for node_name in node_names:
                states = self._beam_level(states, node_name, ratios, beam_width)
            return states
        return self._node_run_parallel(states, node_names, ratios, beam_width)

    def _ensure_wire_tables(self) -> None:
        """Build the process-independent encodings of rules and state sets.

        Rules are indexed by position in ``theory.rules`` (the per-node /
        per-ref candidate indexes reference those same objects, so every rule
        a worker can apply has an index).  Properties and communicated refs
        are indexed by deterministically sorted tables derived from the rule
        set alone — ``(ref, kind, dim)`` is a complete key for a property —
        so parent and forked workers agree on every id without coordination.
        """
        if self._wire_ready:
            return
        self._rule_wire_index = {id(r): i for i, r in enumerate(self.theory.rules)}
        props: Set[Property] = set()
        refs: Set[str] = set()
        for rule in self.theory.rules:
            props.update(rule.pre)
            props.update(rule.post)
            refs.update(rule.communicates)
        self._wire_props = tuple(
            sorted(
                props,
                key=lambda p: (
                    p.ref,
                    p.state.kind.value,
                    -1 if p.state.dim is None else p.state.dim,
                ),
            )
        )
        self._prop_wire_ids = {p: i for i, p in enumerate(self._wire_props)}
        self._wire_refs = tuple(sorted(refs))
        self._ref_wire_ids = {r: i for i, r in enumerate(self._wire_refs)}
        self._wire_ready = True

    def _encode_sets(
        self, properties: FrozenSet[Property], communicated: FrozenSet[str]
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Canonical wire-id tuples for one (property set, communicated set).

        Memoized per frozenset: beam states reuse a small population of
        interned sets, so the sort runs once per distinct set instead of once
        per generated child, and the shared tuple objects let pickle's memo
        table deduplicate them inside one shard reply.  The wire tables are
        fixed per synthesizer, so the memo never goes stale.
        """
        pids = self._propenc_cache.get(properties)
        if pids is None:
            pids = tuple(sorted(self._prop_wire_ids[p] for p in properties))
            self._propenc_cache[properties] = pids
        cids = self._commenc_cache.get(communicated)
        if cids is None:
            cids = tuple(sorted(self._ref_wire_ids[c] for c in communicated))
            self._commenc_cache[communicated] = cids
        return pids, cids

    def _encode_state(self, node: _SearchNode) -> Tuple:
        """Compact, process-independent snapshot of one beam state."""
        pids, cids = self._encode_sets(node.properties, node.communicated)
        return (
            pids,
            node.completed,
            cids,
            node.closed_cost,
            node.stage_comp,
            node.completed_ideal,
            node.depth,
            node.topo_ptr,
        )

    def _decode_state(self, encoded: Tuple) -> _SearchNode:
        """Worker-side inverse of `_encode_state` (a bare, parentless node)."""
        prop_ids, completed, ref_ids, closed, stage, ideal, depth, topo_ptr = encoded
        properties = frozenset(self._wire_props[i] for i in prop_ids)
        communicated = frozenset(self._wire_refs[i] for i in ref_ids)
        prop_sid = comm_sid = -1
        if self._fast_sids:
            properties, prop_sid = self._intern_propset(properties)
            communicated, comm_sid = self._intern_commset(communicated)
        return _SearchNode(
            parent=None,
            rule=None,
            properties=properties,
            completed=completed,
            communicated=communicated,
            closed_cost=closed,
            stage_comp=stage,
            completed_ideal=ideal,
            depth=depth,
            topo_ptr=topo_ptr,
            prop_sid=prop_sid,
            comm_sid=comm_sid,
        )

    def _expand_shard(
        self,
        node_name: str,
        ratios: Tuple[float, ...],
        shard: List[Tuple[int, Tuple]],
        search_serial: int,
    ) -> Tuple:
        """Worker-side expansion of one shard of a beam level.

        Runs the exact per-state loop of `_beam_level` (same rule order, same
        `_expand_with_rule`, same memoized cost plans) over the shard and
        returns every generated child *unmerged*, in generation order, in
        columnar form: per-child key columns ``(property ids, completed,
        comm ids)``, one packed double array holding ``closed ‖ stage_comp ‖
        completed_ideal`` per child (the parent reads it zero-copy with
        ``np.frombuffer``), int columns for ``depth``/``topo_ptr``/parent
        index, and the applied-rule chains.  Together the columns are the
        child's full `_encode_state` snapshot, so the parent can merge/rank
        the level and feed the survivors straight into the next level's
        shards without decoding or re-applying anything.  Merging must stay
        in the parent: the epsilon dominance fold is order-dependent, so only
        a single global left-to-right pass over all children reproduces the
        serial survivors.
        """
        ratios = tuple(ratios)
        if ratios != self._plan_ratios:
            # Mirror synthesize(): cost plans are only valid for one ratio
            # vector.  A long-lived worker serves every search the parent
            # runs, so it re-mirrors the parent's per-call invalidation here.
            self._rule_plans.clear()
            self._rule_runtime.clear()
            self._plan_ratios = ratios
        if search_serial != self._search_serial:
            self._propset_intern.clear()
            self._commset_intern.clear()
            self._prop_transition.clear()
            self._comm_transition.clear()
            self._search_serial = search_serial
        self._ensure_wire_tables()
        comp_rules = self.theory.comp_rules_by_node.get(node_name, [])
        pids_col: List[Tuple[int, ...]] = []
        completeds: List[int] = []
        cids_col: List[Tuple[int, ...]] = []
        floats = array("d")
        depths: List[int] = []
        topos: List[int] = []
        parents: List[int] = []
        chains: List[Tuple[int, ...]] = []
        generated = 0
        for parent_index, encoded in shard:
            state = self._decode_state(encoded)
            for rule in comp_rules:
                for child in self._expand_with_rule(state, rule, ratios):
                    generated += 1
                    chain: List[int] = []
                    cursor: Optional[_SearchNode] = child
                    while cursor is not None and cursor.rule is not None:
                        chain.append(self._rule_wire_index[id(cursor.rule)])
                        cursor = cursor.parent
                    chain.reverse()
                    pids, cids = self._encode_sets(child.properties, child.communicated)
                    pids_col.append(pids)
                    completeds.append(child.completed)
                    cids_col.append(cids)
                    floats.append(child.closed_cost)
                    floats.extend(child.stage_comp)
                    floats.append(child.completed_ideal)
                    depths.append(child.depth)
                    topos.append(child.topo_ptr)
                    parents.append(parent_index)
                    chains.append(tuple(chain))
        return pids_col, completeds, cids_col, floats, depths, topos, parents, chains, generated

    def _node_run_parallel(
        self,
        states: List[_SearchNode],
        node_names: Sequence[str],
        ratios: Sequence[float],
        beam_width: int,
    ) -> List[_SearchNode]:
        """Shard a run of beam levels across the pool; bit-identical to serial.

        Levels are latency-bound (hundreds of sequential rounds of a few
        milliseconds each on deep graphs), so the parent does as little as
        possible per round.  Surviving states live in *carrier* form —
        ``(encoded state, base-state index, rule-chain link)`` — between
        levels: the worker-returned encodings feed the next level's shards
        directly, and applied-rule history accumulates in O(1) cons cells.
        Real `_SearchNode` chains are only materialized once, at the end of
        the run (`_materialize_carrier`), for block occurrences and the final
        completion/cost checks.

        Determinism: each level's entering carriers are cut into contiguous
        shards, so concatenating the workers' (generation-ordered) child
        lists in shard order restores the exact serial generation order.  The
        parent then replays the serial merge — the same left-to-right
        epsilon-dominance fold over canonical state keys and the same stable
        `beam_rank_order` ranking (see its tie-break contract) — over floats
        the workers computed with the identical `_apply` arithmetic, so
        costs, survivors, and the synthesized program are bit-identical.
        """
        pool = self._level_pool
        assert pool is not None
        self._ensure_wire_tables()
        # Carrier: (encoded state, index into `states`, chain link), where a
        # link is None (still the base state) or (parent link, rule tuple).
        carriers: List[Tuple[Tuple, int, Optional[Tuple]]] = [
            (self._encode_state(s), i, None) for i, s in enumerate(states)
        ]
        for node_name in node_names:
            if not self.theory.comp_rules_by_node.get(node_name, []):
                raise SynthesisError(f"no sharding rules for node {node_name!r}")
            self._bm_expanded += len(carriers)
            shard_count = min(self._level_workers, len(carriers))
            base, extra = divmod(len(carriers), shard_count)
            shards: List[List[Tuple[int, Tuple]]] = []
            cursor = 0
            for i in range(shard_count):
                size = base + (1 if i < extra else 0)
                shards.append(
                    [(cursor + j, carriers[cursor + j][0]) for j in range(size)]
                )
                cursor += size
            tasks = [
                (node_name, tuple(ratios), shard, self._search_serial) for shard in shards
            ]
            try:
                replies = pool.run_sharded(_expand_shard_task, "synthesizer", tasks)
            except workerpool.WorkerCrash as exc:
                raise SynthesisError(
                    f"parallel beam expansion failed at node {node_name!r}: {exc}"
                ) from exc
            # Reassemble the columnar replies in shard order (= serial
            # generation order) and run the single global merge.
            pids_col: List[Tuple[int, ...]] = []
            completeds: List[int] = []
            cids_col: List[Tuple[int, ...]] = []
            float_bufs: List[array] = []
            depths: List[int] = []
            topos: List[int] = []
            parents: List[int] = []
            chains: List[Tuple[int, ...]] = []
            for reply in replies:
                pids_col.extend(reply[0])
                completeds.extend(reply[1])
                cids_col.extend(reply[2])
                float_bufs.append(reply[3])
                depths.extend(reply[4])
                topos.extend(reply[5])
                parents.extend(reply[6])
                chains.extend(reply[7])
                self._bm_generated += reply[8]
            count = len(pids_col)
            if count == 0:
                raise SynthesisError(
                    f"beam search dead-ended at node {node_name!r}: no variant of the "
                    "operator is reachable from the surviving states"
                )
            k = len(self._zero_stage)
            cols = np.concatenate(
                [np.frombuffer(buf, dtype=np.float64) for buf in float_bufs]
            ).reshape(count, k + 2)
            closed = cols[:, 0]
            stage = cols[:, 1 : k + 1]
            # One broadcast add reproduces the serial per-child Python adds
            # bit for bit (both are IEEE double additions of the same values).
            vectors = closed[:, None] + stage
            limits = vectors + 1e-15
            children: Dict[Tuple, int] = {}
            for i in range(count):
                key = (pids_col[i], completeds[i], cids_col[i])
                j = children.get(key)
                if j is not None and (vectors[j] <= limits[i]).all():
                    continue
                children[key] = i
            rows = list(children.values())
            order = beam_rank_order(
                vectors[rows],
                stage[rows],
                vectorized=self.config.enable_vectorized_cost,
            )
            next_carriers: List[Tuple[Tuple, int, Optional[Tuple]]] = []
            for oi in order[:beam_width]:
                row = rows[oi]
                encoded = (
                    pids_col[row],
                    completeds[row],
                    cids_col[row],
                    float(cols[row, 0]),
                    tuple(cols[row, 1 : k + 1].tolist()),
                    float(cols[row, k + 1]),
                    depths[row],
                    topos[row],
                )
                parent = carriers[parents[row]]
                next_carriers.append((encoded, parent[1], (parent[2], chains[row])))
            carriers = next_carriers
        memo: Dict[int, _SearchNode] = {}
        return [self._materialize_carrier(c, states, memo) for c in carriers]

    def _dummy_chain(self, node: _SearchNode, rule_indexes: Sequence[int]) -> _SearchNode:
        """Append rule-bearing placeholder nodes for an applied-rule segment.

        The placeholders exist only so `instructions()` (and block-reuse
        origin walks) can traverse the applied-rule history — their state
        fields are never read, because expansion, completion checks, and
        costs all look at a run's last node, which carries real decoded
        fields.
        """
        for rule_index in rule_indexes:
            node = _SearchNode(
                parent=node,
                rule=self.theory.rules[rule_index],
                properties=frozenset(),
                completed=0,
                communicated=frozenset(),
                closed_cost=0.0,
                stage_comp=(),
                completed_ideal=0.0,
                depth=0,
            )
        return node

    def _materialize_carrier(
        self,
        carrier: Tuple[Tuple, int, Optional[Tuple]],
        base_states: List[_SearchNode],
        memo: Dict[int, _SearchNode],
    ) -> _SearchNode:
        """Rebuild a real `_SearchNode` chain from one surviving carrier.

        The final node gets the exact worker-computed fields via
        `_decode_state` and hangs off a chain of rule-bearing placeholders
        (`_dummy_chain`).  ``memo`` caches the materialized node per cons
        cell (keyed by cell identity), so survivors sharing ancestry — the
        common case after beam convergence — share one materialized prefix
        instead of each rebuilding the full run history.
        """
        encoded, base_index, link = carrier
        pending: List[Tuple] = []
        node: Optional[_SearchNode] = None
        cell = link
        while cell is not None:
            cached = memo.get(id(cell))
            if cached is not None:
                node = cached
                break
            pending.append(cell)
            cell = cell[0]
        if node is None:
            node = base_states[base_index]
        if not pending:
            # Either no levels ran (node is the base state) or the whole
            # lineage was already materialized; both are final states with
            # real fields, so return them as-is.
            return node
        # Materialize shared ancestor cells fully (placeholder per rule).
        for cell in reversed(pending[1:]):
            node = self._dummy_chain(node, cell[1])
            memo[id(cell)] = node
        # The carrier's own last cell: all but the last rule become
        # placeholders; the last rule lands on the decoded final node.  The
        # cell is deliberately not memoized in this split form — other
        # lineages passing through it need the full placeholder chain and
        # will rebuild it (one cell's worth of nodes, not the whole run).
        last_chain = pending[0][1]
        node = self._dummy_chain(node, last_chain[:-1])
        final = self._decode_state(encoded)
        final.parent = node
        final.rule = self.theory.rules[last_chain[-1]]
        return final

    # -- repeated-block record/replay (config.enable_block_reuse) ----------------------
    def _reuse_schedule(self) -> List[Tuple]:
        """Segment the topological order into plain nodes and block occurrences."""
        if self._reuse_segments is not None:
            return self._reuse_segments
        runs = find_repeated_blocks(self.graph, self._topo_order)
        occurrence_at: Dict[int, Tuple[BlockRun, int]] = {}
        for run in runs:
            for occ_idx, start in enumerate(run.occurrence_starts):
                occurrence_at[start] = (run, occ_idx)
        segments: List[Tuple] = []
        i = 0
        n = len(self._topo_order)
        while i < n:
            entry = occurrence_at.get(i)
            if entry is not None:
                run, occ_idx = entry
                segments.append(("block", run, occ_idx))
                self._occ_info[(id(run), occ_idx)] = self._build_occ_info(run, occ_idx)
                i += run.length
            else:
                segments.append(("node", self._topo_order[i]))
                i += 1
        self._reuse_segments = segments
        return segments

    def _build_occ_info(self, run: BlockRun, occ_idx: int) -> _OccurrenceInfo:
        mapping = run.maps[occ_idx]
        start = run.occurrence_starts[occ_idx]
        node_names = tuple(self._topo_order[start : start + run.length])
        occ_refs = tuple(mapping[ref] for ref in run.refs)
        ref_idx = {ref: i for i, ref in enumerate(occ_refs)}
        ref_bits = tuple(1 << self._node_index[ref] for ref in occ_refs)
        relevant_mask = 0
        for bit in ref_bits:
            relevant_mask |= bit
        block_nodes = set(node_names)
        pending_masks: List[int] = []
        for ref in occ_refs:
            mask = 0
            for consumer in self._consumers.get(ref, []):
                if consumer not in block_nodes:
                    mask |= 1 << self._node_index[consumer]
            pending_masks.append(mask)
        return _OccurrenceInfo(
            node_names=node_names,
            occ_refs=occ_refs,
            ref_idx=ref_idx,
            ref_bits=ref_bits,
            relevant_mask=relevant_mask,
            pending_masks=tuple(pending_masks),
        )

    def _block_occurrence(
        self,
        states: List[_SearchNode],
        run: BlockRun,
        occ_idx: int,
        ratios: Sequence[float],
        beam_width: int,
    ) -> List[_SearchNode]:
        """Process one occurrence of a repeated block: replay or record.

        The first occurrence (and any occurrence whose entry signature differs
        from the recorded template's) is expanded in full with its decisions
        recorded; matching occurrences replay the recorded decision chains,
        re-running the exact cost model per applied rule.  Replay bails out to
        full expansion on any structural mismatch.
        """
        info = self._occ_info[(id(run), occ_idx)]
        sig = self._block_entry_signature(states, info)
        record = self._reuse_records.get(id(run))
        self.reuse_stats["occurrences"] += 1
        if record is not None and record.entry_sig == sig:
            replayed = self._replay_block(states, info, record, ratios)
            if replayed is not None:
                self.reuse_stats["replayed"] += 1
                return replayed
            self.reuse_stats["fallbacks"] += 1
        self.reuse_stats["recorded"] += 1
        levels: List[List[Tuple]] = []
        for node_name in info.node_names:
            decisions: List[Tuple] = []
            states = self._beam_level(
                states, node_name, ratios, beam_width, record_into=decisions
            )
            levels.append(decisions)
        self._reuse_records[id(run)] = _BlockRecord(
            entry_sig=sig,
            levels=self._normalize_levels(levels, info),
            exit_rel=[self._exit_encoding(state, info) for state in states],
        )
        return states

    def _exit_encoding(self, state: _SearchNode, info: _OccurrenceInfo) -> Tuple:
        """Block-relevant part of an exit state, in block-local indices."""
        ref_idx = info.ref_idx
        rel_props = tuple(
            (ref_idx[p.ref], p.state)
            for p in state.properties
            if p.ref in ref_idx
        )
        rel_comm = tuple(ref_idx[c] for c in state.communicated if c in ref_idx)
        completed = state.completed
        rel_completed = tuple(
            i for i, bit in enumerate(info.ref_bits) if completed & bit
        )
        return (rel_props, rel_comm, rel_completed)

    def _normalize_levels(
        self, levels: List[List[Tuple]], info: _OccurrenceInfo
    ) -> List[List[Tuple]]:
        """Convert recorded rule chains into block-local structural descriptors."""
        out: List[List[Tuple]] = []
        for decisions in levels:
            converted: List[Tuple] = []
            for parent_idx, chain in decisions:
                converted.append(
                    (parent_idx, tuple(self._rule_descriptor(rule, info) for rule in chain))
                )
            out.append(converted)
        return out

    def _rule_descriptor(self, rule: Rule, info: _OccurrenceInfo) -> Tuple:
        """Block-local descriptor of a rule: (kind, lookup ref index, signature).

        Computation rules are looked up among the sharding variants of the
        occurrence's node at the same in-block level; communication rules
        among the collectives of the translated reference.  The signature is
        entirely in terms of block-local reference indices, so it transfers
        between occurrences without a rename pass; an untranslatable rule
        yields a ``None`` signature, which makes replay fall back.
        """
        sig = self._rule_sig(rule, info.ref_idx)
        if rule.completes:
            return ("comp", -1, sig)
        lookup = -1
        if sig is not None:
            lookup = min(info.ref_idx[p.ref] for p in rule.pre)
        return ("comm", lookup, sig)

    def _rule_sig(self, rule: Rule, ref_idx: Dict[str, int]) -> Optional[Tuple]:
        """Name-free structural signature of a rule (block-local ref indices)."""

        def prop(p: Property) -> Optional[Tuple]:
            i = ref_idx.get(p.ref)
            if i is None:
                return None
            return (i, p.state.kind.value, p.state.dim)

        pre = []
        for p in rule.pre:
            enc = prop(p)
            if enc is None:
                return None
            pre.append(enc)
        post = []
        for p in rule.post:
            enc = prop(p)
            if enc is None:
                return None
            post.append(enc)
        completes = []
        for name in rule.completes:
            i = ref_idx.get(name)
            if i is None:
                return None
            completes.append(i)
        communicates = []
        for name in rule.communicates:
            i = ref_idx.get(name)
            if i is None:
                return None
            communicates.append(i)
        instrs: List[Tuple] = []
        for instr in rule.instructions:
            if isinstance(instr, CommInstruction):
                src = prop(instr.input)
                dst = prop(instr.output)
                if src is None or dst is None:
                    return None
                instrs.append(("m", instr.kind.value, src, dst, instr.dim, instr.dim2))
            else:
                node_i = ref_idx.get(instr.node)
                out = prop(instr.output)
                if node_i is None or out is None:
                    return None
                inputs = []
                for p in instr.inputs:
                    enc = prop(p)
                    if enc is None:
                        return None
                    inputs.append(enc)
                instrs.append(("c", node_i, instr.op, tuple(inputs), out, instr.flops_sharded))
        return (
            tuple(sorted(pre)),
            tuple(instrs),
            tuple(sorted(post)),
            tuple(sorted(completes)),
            tuple(sorted(communicates)),
        )

    def _block_entry_signature(self, states: List[_SearchNode], info: _OccurrenceInfo) -> Tuple:
        """Structural signature of the beam at a block boundary.

        Per state, block-relevant properties / communicated refs / completion
        bits are expressed in block-local indices; everything irrelevant to
        the block is reduced to a distinctness-pattern id across the beam (the
        block's decisions can only depend on *which states share* irrelevant
        context, not on what it is).  ``ext_pending`` captures, per relevant
        reference, whether consumers outside the block are still pending —
        this determines when the liveness optimisation may drop the reference
        mid-block, so it must agree with the template's.
        """
        ref_idx = info.ref_idx
        ref_bits = info.ref_bits
        pending_masks = info.pending_masks
        relevant_mask = info.relevant_mask
        pattern_ids: Dict[Tuple, int] = {}
        sig: List[Tuple] = []
        for state in states:
            rel_props: List[Tuple] = []
            irr_props: List[Property] = []
            for p in state.properties:
                i = ref_idx.get(p.ref)
                if i is None:
                    irr_props.append(p)
                else:
                    rel_props.append((i, p.state.kind.value, p.state.dim))
            rel_props.sort(key=lambda t: (t[0], t[1], -1 if t[2] is None else t[2]))
            rel_comm = sorted(ref_idx[c] for c in state.communicated if c in ref_idx)
            irr_comm = frozenset(c for c in state.communicated if c not in ref_idx)
            completed = state.completed
            rel_completed = tuple(
                1 if completed & bit else 0 for bit in ref_bits
            )
            ext_pending = tuple(
                1 if mask & ~completed else 0 for mask in pending_masks
            )
            pattern_key = (frozenset(irr_props), irr_comm, completed & ~relevant_mask)
            pid = pattern_ids.setdefault(pattern_key, len(pattern_ids))
            sig.append((tuple(rel_props), tuple(rel_comm), rel_completed, ext_pending, pid))
        return tuple(sig)

    def _replay_block(
        self,
        states: List[_SearchNode],
        info: _OccurrenceInfo,
        record: _BlockRecord,
        ratios: Sequence[float],
    ) -> Optional[List[_SearchNode]]:
        """Replay a recorded block's decision chains on this occurrence.

        Cost accumulation must be exact, so the chains are walked rule by
        rule through the occurrence's own (signature-translated) rules and
        cost plans — the identical float operations the full expansion would
        perform on the winning lineages.  State sets need no walking: context
        irrelevant to the block passes through unchanged and the relevant
        part of each exit state is recorded on the template, so exit states
        are reconstructed directly.  Intermediate steps only allocate
        lightweight "ghost" parents carrying the applied rule, which is what
        program reconstruction walks at the end of the search.

        Returns ``None`` on any mismatch (untranslatable rule, missing
        parent), in which case the caller re-expands the occurrence in full.
        """
        # Per position: (closed, stage, completed_ideal, depth, tail, root idx).
        current: Dict[int, Tuple] = {
            i: (s.closed_cost, s.stage_comp, s.completed_ideal, s.depth, s, i)
            for i, s in enumerate(states)
        }
        applied = 0
        for level, decisions in enumerate(record.levels):
            node_name = info.node_names[level]
            needed = record.needed[level]
            new_states: Dict[int, Tuple] = {}
            for position in sorted(needed):
                parent_idx, chain = decisions[position]
                entry = current.get(parent_idx)
                if entry is None:
                    return None
                closed, stage, ideal, depth, tail, root_idx = entry
                for descriptor in chain:
                    rule = self._translate_descriptor(descriptor, info, node_name)
                    if rule is None:
                        return None
                    plan, _, ideals, _ = self._replay_runtime(rule, ratios)
                    for kind, payload in plan:
                        if kind == _SYNC:
                            closed += max(stage) + payload
                            stage = self._zero_stage
                        else:
                            stage = tuple([s + t for s, t in zip(stage, payload)])
                    for delta in ideals:
                        ideal += delta
                    ghost = _SearchNode.__new__(_SearchNode)
                    ghost.parent = tail
                    ghost.rule = rule
                    tail = ghost
                    depth += 1
                    applied += 1
                new_states[position] = (closed, stage, ideal, depth, tail, root_idx)
            if not new_states:
                return None
            current = new_states
        self._bm_generated += applied
        self._bm_expanded += len(record.levels)
        # Reconstruct the exit beam (final level is needed in full, so the
        # positions are contiguous and sorting restores the template order).
        out: List[_SearchNode] = []
        for position in sorted(current):
            closed, stage, ideal, depth, tail, root_idx = current[position]
            exit_state = self._reconstruct_exit(
                states[root_idx],
                record.exit_rel[position],
                info,
                closed,
                stage,
                ideal,
                depth,
                tail,
            )
            out.append(exit_state)
        return out

    def _replay_runtime(self, rule: Rule, ratios: Sequence[float]) -> Tuple:
        """(cost plan, completes mask, ideal deltas, liveness candidates).

        Shares the :meth:`_apply_fast` runtime cache; safe to populate even
        when cost memoization is off, because the memoized plans replay the
        identical float operations.
        """
        rid = id(rule)
        runtime = self._rule_runtime.get(rid)
        if runtime is None:
            runtime = self._rule_runtime[rid] = (
                self._rule_plan(rule, ratios),
                *self._rule_static(rule),
            )
        return runtime

    def _reconstruct_exit(
        self,
        root: _SearchNode,
        exit_rel: Tuple,
        info: _OccurrenceInfo,
        closed: float,
        stage: Tuple[float, ...],
        ideal: float,
        depth: int,
        tail: _SearchNode,
    ) -> _SearchNode:
        """Build a full exit state from pass-through context + template encoding."""
        rel_props, rel_comm, rel_completed = exit_rel
        ref_idx = info.ref_idx
        occ_refs = info.occ_refs
        props = [p for p in root.properties if p.ref not in ref_idx]
        props.extend(Property(occ_refs[i], state) for i, state in rel_props)
        properties: FrozenSet[Property] = frozenset(props)
        communicated_set = {c for c in root.communicated if c not in ref_idx}
        communicated_set.update(occ_refs[i] for i in rel_comm)
        communicated: FrozenSet[str] = frozenset(communicated_set)
        completed = root.completed & ~info.relevant_mask
        for i in rel_completed:
            completed |= info.ref_bits[i]
        prop_sid = comm_sid = -1
        if self._fast_sids:
            properties, prop_sid = self._intern_propset(properties)
            communicated, comm_sid = self._intern_commset(communicated)
        node = _SearchNode.__new__(_SearchNode)
        node.parent = tail.parent
        node.rule = tail.rule
        node.properties = properties
        node.completed = completed
        node.communicated = communicated
        node.closed_cost = closed
        node.stage_comp = stage
        node.completed_ideal = ideal
        node.depth = depth
        node.topo_ptr = self._advance_topo_ptr(root.topo_ptr, completed)
        node.prop_sid = prop_sid
        node.comm_sid = comm_sid
        return node

    def _translate_descriptor(
        self, descriptor: Tuple, info: _OccurrenceInfo, node_name: str
    ) -> Optional[Rule]:
        """Resolve a block-local rule descriptor against this occurrence.

        Candidate rules (the node's sharding variants, or the reference's
        collectives) are indexed by structural signature once per occurrence
        and cached on the occurrence info, so repeated replays — including
        across planner rounds with different ratios — are dictionary lookups.
        """
        kind, lookup, sig = descriptor
        if sig is None:
            return None
        map_key = (kind, node_name) if kind == "comp" else (kind, lookup)
        sigmap = info.sigmaps.get(map_key)
        if sigmap is None:
            if kind == "comp":
                candidates = self.theory.comp_rules_by_node.get(node_name, [])
            else:
                candidates = self.theory.comm_rules_by_ref.get(info.occ_refs[lookup], [])
            sigmap = {}
            for candidate in candidates:
                candidate_sig = self._rule_sig(candidate, info.ref_idx)
                if candidate_sig is not None and candidate_sig not in sigmap:
                    sigmap[candidate_sig] = candidate
            info.sigmaps[map_key] = sigmap
        return sigmap.get(sig)

    def _expand_with_rule(
        self, state: _SearchNode, rule: Rule, ratios: Sequence[float]
    ) -> List[_SearchNode]:
        """Apply a computation rule, inserting enabling collectives if needed."""
        missing = [p for p in self._ordered_pre(rule) if p not in state.properties]
        if self._indexing:
            if state.completed & self._completes_mask[id(rule)]:
                return []
        elif any(n for n in rule.completes if state.completed & (1 << self._node_index[n])):
            return []
        if not missing:
            return [self._apply(state, rule, ratios)]
        # Find, for every missing precondition, the collectives that produce
        # it.  With rule indexing the state-independent "which collectives
        # establish this property" part comes from the ``comm_rules_by_post``
        # index (same rules, same order as filtering the per-ref table); only
        # the per-state filters remain in the loop.
        option_sets: List[List[Rule]] = []
        props, communicated = state.properties, state.communicated
        for prop in missing:
            if self._indexing:
                options = [
                    comm
                    for comm in self.theory.comm_rules_by_post.get(prop, ())
                    if comm.pre <= props and not (comm.communicates & communicated)
                ]
            else:
                options = [
                    comm
                    for comm in self.theory.comm_rules_by_ref.get(prop.ref, [])
                    if prop in comm.post
                    and comm.pre <= props
                    and not (comm.communicates & communicated)
                ]
            if not options:
                return []
            option_sets.append(options)
        results: List[_SearchNode] = []
        if self._indexing and len(option_sets) > 1:
            # Share the application of common collective prefixes across
            # combinations: product() varies the last option set fastest, so a
            # depth-first walk applies each prefix exactly once while visiting
            # the combinations (and emitting children) in product() order.
            def walk(current: _SearchNode, level: int) -> None:
                if level == len(option_sets):
                    results.append(self._apply(current, rule, ratios))
                    return
                for comm in option_sets[level]:
                    walk(self._apply(current, comm, ratios), level + 1)

            walk(state, 0)
            return results
        for combo in itertools.product(*option_sets):
            current = state
            for comm in combo:
                current = self._apply(current, comm, ratios)
            results.append(self._apply(current, rule, ratios))
        return results

    def _ordered_pre(self, rule: Rule) -> Tuple[Property, ...]:
        """Preconditions of a rule in a deterministic, name-independent order.

        ``rule.pre`` is a frozenset, whose iteration order depends on the hash
        values of the reference names; enumerating missing preconditions in
        that order would make both the generated-children order and the
        enabling-collective instruction order vary between isomorphic graphs
        (and with ``PYTHONHASHSEED``).  The computation instruction's input
        order is structural, so it is used as the primary order, with any
        leftover preconditions appended in sorted order.
        """
        entry = self._pre_order_cache.get(id(rule))
        if entry is None:
            ordered: List[Property] = []
            primary = rule.instructions[-1] if rule.instructions else None
            if isinstance(primary, CompInstruction):
                for prop in primary.inputs:
                    if prop in rule.pre and prop not in ordered:
                        ordered.append(prop)
            if len(ordered) < len(rule.pre):
                leftover = sorted(
                    (p for p in rule.pre if p not in ordered),
                    key=lambda p: (
                        p.ref,
                        p.state.kind.value,
                        -1 if p.state.dim is None else p.state.dim,
                    ),
                )
                ordered.extend(leftover)
            entry = self._pre_order_cache[id(rule)] = tuple(ordered)
        return entry

    # -- unrestricted A* search (Fig. 10) ----------------------------------------------
    def _greedy_complete(
        self, node: _SearchNode, ratios: Sequence[float]
    ) -> Tuple[Optional[_SearchNode], int]:
        """Extend a partial program to completion with width-1 beam steps.

        Used as the completion fallback when open-list trimming discarded
        every completable state: follow the topological order from the
        prefix, picking the cheapest sharding variant (with enabling
        collectives) of each remaining node.  Returns the completed state
        (suboptimal but valid) and the number of children generated, or
        ``None`` if some node has no reachable variant from the prefix.
        """
        current = node
        generated = 0
        while not self._is_complete(current):
            next_node = self._next_node(current)
            if next_node is None:
                return None, generated
            children: List[_SearchNode] = []
            for rule in self.theory.comp_rules_by_node.get(next_node, []):
                children.extend(self._expand_with_rule(current, rule, ratios))
            generated += len(children)
            if not children:
                return None, generated
            current = min(children, key=lambda s: (self._final_cost(s), sum(s.stage_comp)))
        return current, generated

    def _astar_search(self, ratios: Sequence[float], _allow_trim: bool = True) -> SynthesisResult:
        start = _time.perf_counter()
        root = self._root()
        counter = itertools.count()
        # Ties are broken towards deeper programs so that a first complete
        # program (and thus an upper bound for pruning) is found quickly.
        heap: List[Tuple[float, int, int, _SearchNode]] = [
            (self._score(root), 0, next(counter), root)
        ]
        # Dominance table: state key -> undominated per-device cost vectors.
        # With ``enable_pareto_store`` the per-key vectors live in a
        # sum-sorted Pareto front (same dominance predicate, early-exit
        # scans); otherwise in the seed's flat list scanned in full.
        use_pareto = self.config.enable_pareto_store
        interning = self.config.enable_state_interning
        fronts: Dict[Tuple, ParetoFront] = {}
        best_vectors: Dict[Tuple, List[Tuple[float, ...]]] = {}
        best_complete: Optional[_SearchNode] = None
        best_cost = float("inf")
        #: Most-progressed state popped so far — the completion-fallback seed.
        best_prefix = root
        trim = _allow_trim and self.config.beam_width is not None
        expanded = 0
        generated = 1
        # Interned state-key ids live for the duration of one search.
        state_ids: Dict[Tuple, int] = {}
        # Local bindings of loop-invariant lookups (hot loop).
        output_mask = self._output_mask
        total_ideal = self._total_ideal
        heappush, heappop = heapq.heappush, heapq.heappop

        while heap:
            score, _, _, node = heappop(heap)
            if score >= best_cost:
                break
            if expanded >= self.config.max_search_steps:
                break
            expanded += 1
            if node.completed_ideal > best_prefix.completed_ideal or (
                node.completed_ideal == best_prefix.completed_ideal
                and self._final_cost(node) < self._final_cost(best_prefix)
            ):
                best_prefix = node

            for rule in self._applicable_rules(node):
                child = self._apply(node, rule, ratios)
                generated += 1
                closed = child.closed_cost
                stage_comp = child.stage_comp
                open_cost = max(stage_comp) if stage_comp else 0.0
                if (child.completed & output_mask) == output_mask:
                    cost = closed + open_cost
                    if cost < best_cost:
                        best_cost = cost
                        best_complete = child
                    continue
                if child.prop_sid >= 0:
                    key = (child.prop_sid, child.completed, child.comm_sid)
                else:
                    key = (child.properties, child.completed, child.communicated)
                    if interning:
                        sid = state_ids.get(key)
                        if sid is None:
                            sid = state_ids[key] = len(state_ids)
                        key = sid
                vector = tuple([closed + c for c in stage_comp])
                if use_pareto:
                    front = fronts.get(key)
                    if front is None:
                        front = fronts[key] = ParetoFront(eps=1e-12)
                    if not front.insert(vector):
                        continue  # dominated by an already-known program
                else:
                    existing = best_vectors.get(key)
                    if existing is not None and any(
                        all(e <= v + 1e-12 for e, v in zip(vec, vector)) for vec in existing
                    ):
                        continue  # dominated by an already-known program
                    if existing is None:
                        best_vectors[key] = [vector]
                    else:
                        existing[:] = [
                            vec for vec in existing if not all(v <= e + 1e-12 for v, e in zip(vector, vec))
                        ]
                        existing.append(vector)
                remaining = total_ideal - child.completed_ideal
                if remaining < 0.0:
                    remaining = 0.0
                child_score = closed + (open_cost if open_cost > remaining else remaining)
                if child_score < best_cost:
                    heappush(heap, (child_score, -child.depth, next(counter), child))

            if trim and len(heap) > 4 * self.config.beam_width:
                heap = heapq.nsmallest(self.config.beam_width, heap)
                heapq.heapify(heap)

        if best_complete is None:
            # Completion fallback (ROADMAP dead-end): trimming the open list
            # can discard every completable state.  Greedily complete the
            # most-progressed prefix; if even that dead-ends, redo the search
            # without trimming before giving up.
            for prefix in (best_prefix, root):
                completed, extra = self._greedy_complete(prefix, ratios)
                generated += extra
                if completed is not None:
                    return self._result(
                        completed, self._final_cost(completed), expanded, generated, start
                    )
            if trim:
                return self._astar_search(ratios, _allow_trim=False)
            raise SynthesisError(
                "A* search exhausted without finding a complete distributed program; "
                "the background theory may be missing rules for some operator"
            )
        return self._result(best_complete, best_cost, expanded, generated, start)


def _expand_shard_task(
    synthesizer: "ProgramSynthesizer", args: Tuple
) -> Tuple[List[Tuple], int]:
    """Worker-pool handler for one beam-level shard (see ``_expand_shard``).

    The synthesizer arrives as the pool's registered ``"synthesizer"``
    payload — shipped to workers by fork copy-on-write, never pickled.
    """
    node_name, ratios, shard, search_serial = args
    return synthesizer._expand_shard(node_name, ratios, shard, search_serial)


def synthesize_program(
    graph: ComputationGraph,
    cluster: ClusterSpec,
    ratios: Optional[Sequence[float]] = None,
    config: Optional[SynthesisConfig] = None,
) -> SynthesisResult:
    """Convenience wrapper: build the theory and run one synthesis."""
    return ProgramSynthesizer(graph, cluster, config).synthesize(ratios)
