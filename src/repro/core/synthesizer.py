"""A*-based distributed-program synthesis (Sec. 4.3 of the paper).

The synthesizer searches the space of distributed programs defined by the
background theory (:mod:`repro.core.rules`).  A partial program is represented
by its *search state*: the set of live properties, the set of emulated
single-device nodes, the set of communicated tensors, and the cost bookkeeping
of the stage currently being filled.  The search repeatedly pops the
lowest-score state from a priority queue and appends every applicable Hoare
triple, exactly as in Fig. 10, with the paper's three search-time
optimisations:

1. source instructions are pre-fused into consumer rules (done in
   :func:`repro.core.rules.build_theory`);
2. every reference tensor may be communicated at most once, and placeholders /
   parameters are never communicated (they are created already sharded);
3. properties of tensors whose consumers have all been emulated are dropped,
   which lets the dominance check merge many more states.

The dominance check itself generalises lines 9–14 of Fig. 10: two partial
programs with identical state are compared by their per-device accumulated
cost vectors, and the dominated one is discarded.
"""

from __future__ import annotations

import heapq
import itertools
import time as _time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..cluster.spec import ClusterSpec
from ..graph.graph import ComputationGraph
from ..graph.ops import OpKind
from .config import SynthesisConfig
from .costmodel import CostModel
from .instructions import CommInstruction, CompInstruction, Instruction
from .program import DistributedProgram
from .properties import Property
from .rules import Rule, Theory, build_theory


class SynthesisError(RuntimeError):
    """Raised when no semantically equivalent distributed program is found."""


@dataclass
class SynthesisResult:
    """Outcome of one synthesis run.

    Attributes:
        program: the optimal distributed program found.
        cost: its estimated per-iteration time under the given ratios.
        expanded_states: number of states popped from the priority queue.
        generated_states: number of states pushed to the priority queue.
        elapsed_seconds: wall-clock synthesis time.
    """

    program: DistributedProgram
    cost: float
    expanded_states: int
    generated_states: int
    elapsed_seconds: float


class _SearchNode:
    """One partial program in the A* frontier (immutable once created)."""

    __slots__ = (
        "parent",
        "rule",
        "properties",
        "completed",
        "communicated",
        "closed_cost",
        "stage_comp",
        "completed_ideal",
        "depth",
    )

    def __init__(
        self,
        parent: Optional["_SearchNode"],
        rule: Optional[Rule],
        properties: FrozenSet[Property],
        completed: int,
        communicated: FrozenSet[str],
        closed_cost: float,
        stage_comp: Tuple[float, ...],
        completed_ideal: float,
        depth: int,
    ) -> None:
        self.parent = parent
        self.rule = rule
        self.properties = properties
        self.completed = completed
        self.communicated = communicated
        self.closed_cost = closed_cost
        self.stage_comp = stage_comp
        self.completed_ideal = completed_ideal
        self.depth = depth

    def instructions(self) -> List[Instruction]:
        """Reconstruct the instruction sequence by walking parent pointers."""
        rules: List[Rule] = []
        node: Optional[_SearchNode] = self
        while node is not None and node.rule is not None:
            rules.append(node.rule)
            node = node.parent
        out: List[Instruction] = []
        for rule in reversed(rules):
            out.extend(rule.instructions)
        return out

    def cost_vector(self) -> Tuple[float, ...]:
        """Per-device accumulated cost (closed stages + open-stage compute)."""
        return tuple(self.closed_cost + c for c in self.stage_comp)

    def open_stage_cost(self) -> float:
        return max(self.stage_comp) if self.stage_comp else 0.0


class ProgramSynthesizer:
    """Synthesizes the optimal distributed program for fixed sharding ratios."""

    def __init__(
        self,
        graph: ComputationGraph,
        cluster: ClusterSpec,
        config: Optional[SynthesisConfig] = None,
        theory: Optional[Theory] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.graph = graph
        self.cluster = cluster
        self.config = config or SynthesisConfig()
        self.theory = theory or build_theory(graph, cluster.num_devices, self.config)
        self.cost_model = cost_model or CostModel(graph, cluster)
        self._node_index = {name: i for i, name in enumerate(graph.node_names)}
        self._consumers = graph.consumers()
        self._outputs = set(graph.outputs)
        self._output_mask = 0
        for name in graph.outputs:
            self._output_mask |= 1 << self._node_index[name]
        self._total_ideal = sum(
            self.cost_model.ideal_node_time(n.name)
            for n in graph
            if n.kind is not OpKind.SOURCE
        )
        self._ideal_cache: Dict[str, float] = {}
        # Topological emulation order (non-source nodes only) used when
        # ``config.follow_topological_order`` is set.
        self._topo_order = [n.name for n in graph if n.kind is not OpKind.SOURCE]
        self._topo_pos = {name: i for i, name in enumerate(self._topo_order)}

    # -- helpers -----------------------------------------------------------------
    def _ideal(self, name: str) -> float:
        if name not in self._ideal_cache:
            node = self.graph[name]
            self._ideal_cache[name] = (
                0.0 if node.kind is OpKind.SOURCE else self.cost_model.ideal_node_time(name)
            )
        return self._ideal_cache[name]

    def _score(self, node: _SearchNode) -> float:
        remaining = max(self._total_ideal - node.completed_ideal, 0.0)
        return node.closed_cost + max(node.open_stage_cost(), remaining)

    def _is_complete(self, node: _SearchNode) -> bool:
        return (node.completed & self._output_mask) == self._output_mask

    def _final_cost(self, node: _SearchNode) -> float:
        return node.closed_cost + node.open_stage_cost()

    def _apply(self, node: _SearchNode, rule: Rule, ratios: Sequence[float]) -> _SearchNode:
        """Append a rule to a partial program, updating state and cost."""
        closed = node.closed_cost
        stage = list(node.stage_comp)
        for instr in rule.instructions:
            if isinstance(instr, CommInstruction):
                if not instr.synchronises:
                    continue  # local slice: no synchronisation, negligible cost
                closed += (max(stage) if stage else 0.0) + self.cost_model.comm_time(instr, ratios)
                stage = [0.0] * len(stage)
            else:
                times = self.cost_model.comp_times(instr, ratios)
                for j, t in enumerate(times):
                    stage[j] += t
        completed = node.completed
        completed_ideal = node.completed_ideal
        for name in rule.completes:
            completed |= 1 << self._node_index[name]
            completed_ideal += self._ideal(name)
        properties = set(node.properties) | set(rule.post)
        communicated = node.communicated | rule.communicates
        # Optimisation #3: drop properties of tensors that can no longer be
        # consumed (every consumer already emulated).  Program outputs with no
        # consumers (updated parameters, the loss) are dropped from the search
        # state as well — their completion is tracked by the bitmask, and
        # removing them lets the dominance check merge programs that made
        # different (already-paid-for) choices for earlier parts of the model.
        dead_candidates: Set[str] = set()
        for name in rule.completes:
            dead_candidates.update(self.graph[name].inputs)
            dead_candidates.add(name)
        for ref in dead_candidates:
            consumers = self._consumers.get(ref, [])
            done = all(completed & (1 << self._node_index[c]) for c in consumers)
            if done and (consumers or ref in self._outputs):
                properties = {p for p in properties if p.ref != ref}
        return _SearchNode(
            parent=node,
            rule=rule,
            properties=frozenset(properties),
            completed=completed,
            communicated=communicated,
            closed_cost=closed,
            stage_comp=tuple(stage),
            completed_ideal=completed_ideal,
            depth=node.depth + 1,
        )

    def _applicable_rules(self, node: _SearchNode) -> List[Rule]:
        """Rules whose precondition holds and whose application adds something."""
        if self.config.follow_topological_order:
            candidates = self._topological_candidates(node)
        else:
            candidates = self._unrestricted_candidates(node)
        out: List[Rule] = []
        props = node.properties
        for rule in candidates:
            if rule.completes:
                if any(node.completed & (1 << self._node_index[n]) for n in rule.completes):
                    continue
            else:
                # pure communication rule: must add a new property
                if rule.post <= props:
                    continue
            if rule.communicates and (rule.communicates & node.communicated):
                continue
            if rule.pre <= props:
                out.append(rule)
        return out

    def _unrestricted_candidates(self, node: _SearchNode) -> List[Rule]:
        """All rules triggered by the live properties (paper's Fig. 10 search)."""
        candidates: List[Rule] = list(self.theory.rules_by_pre_ref.get("__empty__", []))
        seen: Set[int] = set()
        for ref in {p.ref for p in node.properties}:
            for rule in self.theory.rules_by_pre_ref.get(ref, []):
                rid = id(rule)
                if rid not in seen:
                    seen.add(rid)
                    candidates.append(rule)
        return candidates

    def _next_node(self, node: _SearchNode) -> Optional[str]:
        """First non-source node in topological order not yet emulated."""
        for name in self._topo_order[self._first_pending(node):]:
            if not node.completed & (1 << self._node_index[name]):
                return name
        return None

    def _first_pending(self, node: _SearchNode) -> int:
        # depth is a lower bound on progress; scanning from 0 is still correct
        # but slower, so start a little earlier than the depth suggests.
        return 0

    def _topological_candidates(self, node: _SearchNode) -> List[Rule]:
        """Rules for the next node in topological order plus enabling comms.

        The computation candidates are the sharding variants of the next
        pending node.  The communication candidates are restricted to
        collectives whose output property appears in the precondition of one
        of those variants — i.e. collectives that can enable the next node.
        """
        next_node = self._next_node(node)
        if next_node is None:
            return []
        comp_rules = self.theory.comp_rules_by_node.get(next_node, [])
        needed_props: Set[Property] = set()
        for rule in comp_rules:
            needed_props.update(rule.pre)
        candidates: List[Rule] = list(comp_rules)
        for ref in {p.ref for p in needed_props}:
            for comm_rule in self.theory.comm_rules_by_ref.get(ref, []):
                if any(p in needed_props for p in comm_rule.post):
                    candidates.append(comm_rule)
        return candidates

    # -- main search ----------------------------------------------------------------
    def synthesize(self, ratios: Optional[Sequence[float]] = None) -> SynthesisResult:
        """Synthesize the optimal distributed program for the given ratios.

        Dispatches to the level-synchronised beam search (default) or the
        unrestricted A* search of Fig. 10 according to the configuration.

        Args:
            ratios: sharding ratios ``B`` (defaults to computation-proportional
                ratios, the paper's ``B^(0)``).

        Returns:
            The best complete program found and search statistics.

        Raises:
            SynthesisError: if no complete program exists in the search space
                (indicates a missing rule for some operator).
        """
        ratios = list(ratios) if ratios is not None else self.cluster.proportional_ratios()
        if len(ratios) != self.cluster.num_devices:
            raise ValueError(
                f"expected {self.cluster.num_devices} sharding ratios, got {len(ratios)}"
            )
        if self.config.search_strategy == "beam":
            return self._beam_search(ratios)
        return self._astar_search(ratios)

    def _root(self) -> _SearchNode:
        m = self.cluster.num_devices
        return _SearchNode(
            parent=None,
            rule=None,
            properties=frozenset(),
            completed=0,
            communicated=frozenset(),
            closed_cost=0.0,
            stage_comp=tuple([0.0] * m),
            completed_ideal=0.0,
            depth=0,
        )

    def _result(
        self, best: _SearchNode, cost: float, expanded: int, generated: int, start: float
    ) -> SynthesisResult:
        instructions = best.instructions()
        established = frozenset(instr.output for instr in instructions)
        program = DistributedProgram(
            graph=self.graph,
            instructions=instructions,
            properties=established,
            num_devices=self.cluster.num_devices,
        )
        return SynthesisResult(
            program=program,
            cost=cost,
            expanded_states=expanded,
            generated_states=generated,
            elapsed_seconds=_time.perf_counter() - start,
        )

    # -- level-synchronised beam search ----------------------------------------------
    def _beam_search(self, ratios: Sequence[float]) -> SynthesisResult:
        """Per-node beam search over distribution states.

        Processes the single-device nodes in topological order; for every node
        it tries each sharding variant, optionally preceded by the collectives
        that establish the variant's missing preconditions, and keeps the
        ``beam_width`` cheapest resulting states (after merging states that
        are identical or dominated device-wise).
        """
        start = _time.perf_counter()
        beam_width = self.config.beam_width or 64
        states: List[_SearchNode] = [self._root()]
        expanded = 0
        generated = 1

        for node_name in self._topo_order:
            children: Dict[Tuple, _SearchNode] = {}
            comp_rules = self.theory.comp_rules_by_node.get(node_name, [])
            if not comp_rules:
                raise SynthesisError(f"no sharding rules for node {node_name!r}")
            for state in states:
                expanded += 1
                for rule in comp_rules:
                    for child in self._expand_with_rule(state, rule, ratios):
                        generated += 1
                        key = (child.properties, child.completed, child.communicated)
                        vector = child.cost_vector()
                        existing = children.get(key)
                        if existing is not None and all(
                            e <= v + 1e-15 for e, v in zip(existing.cost_vector(), vector)
                        ):
                            continue
                        children[key] = child
            if not children:
                raise SynthesisError(
                    f"beam search dead-ended at node {node_name!r}: no variant of the "
                    "operator is reachable from the surviving states"
                )
            # Rank by the cost actually accumulated so far (closed stages plus
            # the open stage's critical path, with total device work as the
            # tie-breaker).  The A* heuristic term would be identical for all
            # states at the same level and would therefore make them tie.
            ranked = sorted(
                children.values(),
                key=lambda s: (self._final_cost(s), sum(s.stage_comp)),
            )
            states = ranked[:beam_width]

        complete = [s for s in states if self._is_complete(s)]
        if not complete:
            raise SynthesisError("beam search finished without a complete program")
        best = min(complete, key=self._final_cost)
        return self._result(best, self._final_cost(best), expanded, generated, start)

    def _expand_with_rule(
        self, state: _SearchNode, rule: Rule, ratios: Sequence[float]
    ) -> List[_SearchNode]:
        """Apply a computation rule, inserting enabling collectives if needed."""
        missing = [p for p in rule.pre if p not in state.properties]
        if any(n for n in rule.completes if state.completed & (1 << self._node_index[n])):
            return []
        if not missing:
            return [self._apply(state, rule, ratios)]
        # Find, for every missing precondition, the collectives that produce it.
        option_sets: List[List[Rule]] = []
        for prop in missing:
            options = [
                comm
                for comm in self.theory.comm_rules_by_ref.get(prop.ref, [])
                if prop in comm.post
                and comm.pre <= state.properties
                and not (comm.communicates & state.communicated)
            ]
            if not options:
                return []
            option_sets.append(options)
        results = []
        for combo in itertools.product(*option_sets):
            current = state
            for comm in combo:
                current = self._apply(current, comm, ratios)
            results.append(self._apply(current, rule, ratios))
        return results

    # -- unrestricted A* search (Fig. 10) ----------------------------------------------
    def _astar_search(self, ratios: Sequence[float]) -> SynthesisResult:
        start = _time.perf_counter()
        root = self._root()
        counter = itertools.count()
        # Ties are broken towards deeper programs so that a first complete
        # program (and thus an upper bound for pruning) is found quickly.
        heap: List[Tuple[float, int, int, _SearchNode]] = [
            (self._score(root), 0, next(counter), root)
        ]
        # Dominance table: state key -> list of undominated per-device cost vectors.
        best_vectors: Dict[Tuple, List[Tuple[float, ...]]] = {}
        best_complete: Optional[_SearchNode] = None
        best_cost = float("inf")
        expanded = 0
        generated = 1

        while heap:
            score, _, _, node = heapq.heappop(heap)
            if score >= best_cost:
                break
            if expanded >= self.config.max_search_steps:
                break
            expanded += 1

            for rule in self._applicable_rules(node):
                child = self._apply(node, rule, ratios)
                generated += 1
                if self._is_complete(child):
                    cost = self._final_cost(child)
                    if cost < best_cost:
                        best_cost = cost
                        best_complete = child
                    continue
                key = (child.properties, child.completed, child.communicated)
                vector = child.cost_vector()
                existing = best_vectors.get(key)
                if existing is not None and any(
                    all(e <= v + 1e-12 for e, v in zip(vec, vector)) for vec in existing
                ):
                    continue  # dominated by an already-known program
                if existing is None:
                    best_vectors[key] = [vector]
                else:
                    existing[:] = [
                        vec for vec in existing if not all(v <= e + 1e-12 for v, e in zip(vector, vec))
                    ]
                    existing.append(vector)
                child_score = self._score(child)
                if child_score < best_cost:
                    heapq.heappush(heap, (child_score, -child.depth, next(counter), child))

            if self.config.beam_width is not None and len(heap) > 4 * self.config.beam_width:
                heap = heapq.nsmallest(self.config.beam_width, heap)
                heapq.heapify(heap)

        if best_complete is None:
            raise SynthesisError(
                "A* search exhausted without finding a complete distributed program; "
                "the background theory may be missing rules for some operator"
            )
        return self._result(best_complete, best_cost, expanded, generated, start)


def synthesize_program(
    graph: ComputationGraph,
    cluster: ClusterSpec,
    ratios: Optional[Sequence[float]] = None,
    config: Optional[SynthesisConfig] = None,
) -> SynthesisResult:
    """Convenience wrapper: build the theory and run one synthesis."""
    return ProgramSynthesizer(graph, cluster, config).synthesize(ratios)
