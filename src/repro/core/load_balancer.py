"""LP-based sharding-ratio optimisation (Sec. 5 of the paper).

Given a fixed distributed program ``Q``, the load balancer chooses the
sharding ratios ``B`` that minimise the estimated per-iteration time.  Stage
times are linear in the ratios (computation) and in the largest ratio
(communication); with the dual-stream overlap model a stage's exposed
communication is ``max((1 - e) * C, C - e * I_j)`` — a maximum of linear
functions, so the overlapped stage time stays convex and the problem

    min  sum_i T_i
    s.t. T_i >= comp_ij(B) + (1 - e) * comm_i(M)               for all i, j
         T_i >= comp_ij(B) + comm_i(M) - e * indep_ij(B)       for all i, j
         M_k >= B_{k,j}                                        for all k, j
         sum_j B_{k,j} = 1,  B >= 0

is a linear program; we solve it with scipy's HiGHS backend (the paper uses
CBC).  ``k(i)`` is the model segment a stage belongs to (Sec. 5.2); with a
single segment this reduces to the base case of Sec. 5.1, and with
``e = 0`` both constraint families coincide with the paper's original
serialized LP.  The overlap efficiency ``e`` is taken from the cost model
(ultimately the cluster spec), so the LP and :meth:`CostModel.evaluate`
optimise and score the same objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from ..cluster.spec import ClusterSpec
from ..graph.tensor import shard_sizes
from .config import LoadBalancerConfig
from .costmodel import CostModel, StageCoefficients
from .program import DistributedProgram


@dataclass
class LoadBalanceResult:
    """Outcome of one load-balancing solve.

    Attributes:
        ratios: per-segment sharding ratios, shape ``(num_segments, m)``.
        objective: LP objective value (estimated per-iteration seconds).
        success: whether the LP solver converged.
        num_segments: number of model segments.
        polished_objective: the cost model's price of the *normalised* ratios
            (the LP objective is evaluated at the raw solver point, before
            :func:`_normalise` cleans numerical noise).  Filled by the batched
            re-pricing pass behind ``LoadBalancerConfig.enable_vectorized_cost``;
            ``None`` when the flag is off or the solve failed.
    """

    ratios: List[List[float]]
    objective: float
    success: bool
    num_segments: int
    polished_objective: Optional[float] = None

    @property
    def flat_ratios(self) -> List[float]:
        """Ratios of the first segment (the common single-segment case)."""
        return list(self.ratios[0])

    def ratios_for_segment(self, segment: int) -> List[float]:
        """Ratios of a given segment.

        Raises:
            ValueError: when ``segment`` is outside ``0..num_segments-1``.
            An out-of-range index means the caller's segmentation disagrees
            with the one this result was solved for — silently reusing the
            last segment's ratios (the old behaviour) would hide such
            planner/segmentation bugs behind slightly-wrong load balance.
        """
        if not 0 <= segment < len(self.ratios):
            raise ValueError(
                f"segment index {segment} out of range: this result was solved "
                f"for {len(self.ratios)} segment(s)"
            )
        return list(self.ratios[segment])


class LoadBalancer:
    """Solves ``argmin_B t(Q, B)`` for a fixed distributed program."""

    def __init__(
        self,
        cluster: ClusterSpec,
        config: Optional[LoadBalancerConfig] = None,
    ) -> None:
        self.cluster = cluster
        self.config = config or LoadBalancerConfig()

    def optimize(
        self,
        program: DistributedProgram,
        cost_model: CostModel,
        segment_of: Optional[Mapping[str, int]] = None,
    ) -> LoadBalanceResult:
        """Compute optimal sharding ratios for ``program``.

        Args:
            program: the distributed program produced by the synthesizer.
            cost_model: cost model for the same graph/cluster pair.
            segment_of: optional node-name -> segment-index map; when omitted
                a single segment is used.

        Returns:
            A :class:`LoadBalanceResult`; if the LP fails the computation-
            proportional ratios are returned with ``success=False``.
        """
        m = self.cluster.num_devices
        coeffs = cost_model.stage_coefficients(program, segment_of)
        num_segments = 1
        if segment_of is not None:
            num_segments = max((c.segment for c in coeffs), default=0) + 1
        fallback = [list(self.cluster.proportional_ratios()) for _ in range(num_segments)]
        if m == 1:
            return LoadBalanceResult([[1.0]] * num_segments, sum(
                c.time([1.0], overlap=cost_model.overlap) for c in coeffs
            ), True, num_segments)

        result = self._solve_lp(coeffs, num_segments, program, cost_model.overlap)
        if result is None:
            return LoadBalanceResult(fallback, float("inf"), False, num_segments)
        if self.config.enable_vectorized_cost:
            # Re-price the normalised solution through the batched cost-model
            # path: one stacked pass over every stage instead of a Python loop.
            # Purely additive — nothing downstream keys on it yet, but it gives
            # callers the true (post-cleanup) cost next to the LP objective.
            per_segment = {k: r for k, r in enumerate(result.ratios)}
            breakdown = cost_model.evaluate_many(
                program, [(result.ratios[0], per_segment)], segment_of
            )[0]
            result.polished_objective = breakdown.total
        return result

    # -- LP assembly -------------------------------------------------------------
    def _solve_lp(
        self,
        coeffs: Sequence[StageCoefficients],
        num_segments: int,
        program: DistributedProgram,
        overlap: float = 0.0,
    ) -> Optional[LoadBalanceResult]:
        m = self.cluster.num_devices
        g = num_segments
        num_stages = len(coeffs)
        if num_stages == 0:
            return LoadBalanceResult([[1.0 / m] * m for _ in range(g)], 0.0, True, g)

        # Variable layout: [B (g*m), M (g), T (num_stages)].  T_i is the full
        # (overlapped) stage time, communication included.
        num_vars = g * m + g + num_stages

        def b_idx(k: int, j: int) -> int:
            return k * m + j

        def m_idx(k: int) -> int:
            return g * m + k

        def t_idx(i: int) -> int:
            return g * m + g + i

        objective = np.zeros(num_vars)
        for i in range(num_stages):
            objective[t_idx(i)] += 1.0

        rows_ub: List[np.ndarray] = []
        rhs_ub: List[float] = []
        # Per (stage, device): the exposed collective time is
        # max((1 - e) * comm, comm - e * indep_j), so two rows bound T_i:
        #   T_i >= comp_ij(B) + (1 - e) * comm_i(M)
        #   T_i >= comp_ij(B) + comm_i(M) - e * indep_ij(B)
        # With e == 0 they coincide with the serialized LP.
        for i, coeff in enumerate(coeffs):
            k = coeff.segment
            indep_slope = coeff.indep_slope or [0.0] * m
            indep_const = coeff.indep_const or [0.0] * m
            for j in range(m):
                row = np.zeros(num_vars)
                row[b_idx(k, j)] = coeff.comp_slope[j]
                row[m_idx(k)] = (1.0 - overlap) * coeff.comm_slope
                row[t_idx(i)] = -1.0
                rows_ub.append(row)
                rhs_ub.append(-coeff.comp_const[j] - (1.0 - overlap) * coeff.comm_const)
                if overlap > 0.0:
                    row = np.zeros(num_vars)
                    row[b_idx(k, j)] = coeff.comp_slope[j] - overlap * indep_slope[j]
                    row[m_idx(k)] = coeff.comm_slope
                    row[t_idx(i)] = -1.0
                    rows_ub.append(row)
                    rhs_ub.append(
                        -coeff.comp_const[j]
                        - coeff.comm_const
                        + overlap * indep_const[j]
                    )
        # M_k >= B_kj
        for k in range(g):
            for j in range(m):
                row = np.zeros(num_vars)
                row[b_idx(k, j)] = 1.0
                row[m_idx(k)] = -1.0
                rows_ub.append(row)
                rhs_ub.append(0.0)
        # optional per-device memory constraints
        if self.config.respect_memory:
            rows_mem, rhs_mem = self._memory_constraints(program, g, m, b_idx, num_vars)
            rows_ub.extend(rows_mem)
            rhs_ub.extend(rhs_mem)

        rows_eq: List[np.ndarray] = []
        rhs_eq: List[float] = []
        for k in range(g):
            row = np.zeros(num_vars)
            for j in range(m):
                row[b_idx(k, j)] = 1.0
            rows_eq.append(row)
            rhs_eq.append(1.0)

        bounds = [(0.0, 1.0)] * (g * m) + [(0.0, 1.0)] * g + [(0.0, None)] * num_stages
        res = linprog(
            c=objective,
            A_ub=np.vstack(rows_ub) if rows_ub else None,
            b_ub=np.asarray(rhs_ub) if rhs_ub else None,
            A_eq=np.vstack(rows_eq),
            b_eq=np.asarray(rhs_eq),
            bounds=bounds,
            method=self.config.solver_method,
        )
        if not res.success:
            return None
        ratios = [
            [float(res.x[b_idx(k, j)]) for j in range(m)] for k in range(g)
        ]
        # Clean tiny negative numerical noise and renormalise.
        ratios = [_normalise(r) for r in ratios]
        return LoadBalanceResult(
            ratios=ratios,
            objective=float(res.fun),
            success=True,
            num_segments=g,
        )

    def _memory_constraints(self, program, g, m, b_idx, num_vars):
        """Per-device memory-capacity rows: sharded params scale with B."""
        graph = program.graph
        shardings = program.parameter_shardings()
        sharded_bytes = 0.0
        replicated_bytes = 0.0
        for param in graph.parameters():
            if shardings.get(param.name) is not None:
                sharded_bytes += param.spec.size_bytes
            else:
                replicated_bytes += param.spec.size_bytes
        # States (gradients + optimizer moment) roughly triple parameter memory.
        overhead = 3.0
        rows, rhs = [], []
        memory = self.cluster.device_memory()
        for j in range(m):
            for k in range(g):
                row = np.zeros(num_vars)
                row[b_idx(k, j)] = sharded_bytes * overhead
                rows.append(row)
                rhs.append(max(memory[j] - replicated_bytes * overhead, 1.0))
        return rows, rhs


def _normalise(ratios: Sequence[float]) -> List[float]:
    cleaned = [max(float(r), 0.0) for r in ratios]
    total = sum(cleaned)
    if total <= 0:
        return [1.0 / len(cleaned)] * len(cleaned)
    return [r / total for r in cleaned]


def integer_shard_sizes(dim_size: int, ratios: Sequence[float]) -> Tuple[int, ...]:
    """Round fractional ratios to integer shard sizes (Sec. 5.1).

    Re-exported from :mod:`repro.graph.tensor` for convenience: sets shards to
    the nearest integers, then repairs the sum one element at a time choosing
    the adjustment with the smallest rounding error.
    """
    return shard_sizes(dim_size, ratios)
