"""Shared fork-based worker pool for the planner's parallel subsystems.

Both parallel features of the planner draw from the single pool managed here:

* ``SynthesisConfig.synthesis_workers`` — parallel beam expansion shards the
  entering states of each beam level across workers
  (:meth:`~repro.core.synthesizer.ProgramSynthesizer.synthesize`);
* ``HierarchicalConfig.planner_workers`` — the candidate grid of
  :meth:`~repro.core.hierarchical.HierarchicalPlanner.plan` dispatches one
  task per (num_stages, chunks) cell.

The pool exists because both callers have the same shape of problem: a large
read-only context (graph, theory, rule indexes, interned state tables) and
many small tasks against it.  Fork copy-on-write ships the context for free —
workers are forked from the parent *after* the context exists, so tasks only
carry compact argument tuples over a pipe, never the context itself.  That is
also why the pool is fork-only: under ``spawn`` the context would have to be
pickled per worker, which is exactly the cost this module exists to avoid.
Callers check :func:`fork_available` and fall back to serial execution.

Lifecycle
---------
The process-wide pool is created lazily by :func:`shared_pool` on first use
and *reused* across beam levels, synthesis calls, and ``plan()`` calls —
PR 7's per-plan ``ProcessPoolExecutor`` spin-up/teardown is gone.  Workers are
re-forked only when they would be stale: the pool grew, a payload object was
(re)registered after the last fork, or a worker crashed.  ``WorkerPool`` is a
context manager; :func:`close_shared_pool` (also registered ``atexit``) tears
the shared instance down explicitly.

Payloads
--------
A worker task is ``handler(payload, args)``.  The payload is the large
read-only context: the parent calls :func:`register_payload` *before*
dispatching, and the pool re-forks if the registered object changed since the
workers were forked, so the fork snapshot always contains the object the
handler will look up.  Handlers are module-level functions pickled by
qualified name; ``args`` must be picklable and should stay compact.

Budgeting
---------
Nested parallelism (``planner_workers`` × ``synthesis_workers``) must not
oversubscribe the machine.  :func:`set_process_budget` caps the workers this
*process* may fork; grid workers receive ``budget // planner_workers`` so the
synthesis pools inside them shrink (usually to serial) instead of multiplying.

This module is the substrate the planner-as-a-service layer (ROADMAP) is
scoped to reuse for request-level parallelism.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import traceback
from multiprocessing.connection import Connection, wait as _wait_ready
from multiprocessing.process import BaseProcess
from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = [
    "WorkerCrash",
    "WorkerPool",
    "close_shared_pool",
    "effective_workers",
    "fork_available",
    "pool_spawn_count",
    "process_budget",
    "register_payload",
    "set_process_budget",
    "shared_pool",
]


class WorkerCrash(RuntimeError):
    """A worker task raised or a worker process died mid-task.

    The message carries the worker-side traceback (when one was received).
    After a crash the pool marks itself broken and re-forks on next use, so a
    poisoned task cannot wedge later dispatches.
    """


# A task handler: module-level function of (payload, args) -> result.  It is
# pickled by qualified name, so monkeypatching the name a caller dispatches
# resolves to the patched object inside the worker as well.
TaskHandler = Callable[[Any, Any], Any]

# ---------------------------------------------------------------------------
# Payload registry (parent side; snapshotted into workers by fork)
# ---------------------------------------------------------------------------

_PAYLOADS: Dict[str, Any] = {}
_PAYLOAD_VERSIONS: Dict[str, int] = {}
_registry_version = 0


def register_payload(key: str, obj: Any) -> None:
    """Expose ``obj`` to workers under ``key``.

    Re-registering the *same* object (by identity) is free; a different
    object bumps the registry version so pools forked before this call
    re-fork lazily and snapshot the new object.
    """
    global _registry_version
    if _PAYLOADS.get(key) is obj:
        return
    _PAYLOADS[key] = obj
    _registry_version += 1
    _PAYLOAD_VERSIONS[key] = _registry_version


# ---------------------------------------------------------------------------
# Process budget
# ---------------------------------------------------------------------------

_budget: Optional[int] = None


def process_budget() -> int:
    """Worker processes this process may fork.

    Defaults to ``os.cpu_count()`` until :func:`set_process_budget` installs
    an explicit cap (which grid workers receive from their parent).
    """
    if _budget is not None:
        return _budget
    return os.cpu_count() or 1


def set_process_budget(budget: int) -> None:
    """Install an explicit worker cap (used inside nested grid workers)."""
    global _budget
    _budget = max(1, int(budget))


def effective_workers(requested: int) -> int:
    """Clamp a requested worker count to any explicitly installed budget.

    A top-level request is honored as-is — like ``planner_workers`` always
    has, the caller may deliberately oversubscribe a small machine (the CI
    speedup guards simply need enough usable cores).  Only processes whose
    parent installed a budget via :func:`set_process_budget` (nested
    ``planner_workers`` × ``synthesis_workers`` grids) are clamped, so the
    two flags compose without multiplying.
    """
    requested = max(1, int(requested))
    if _budget is not None:
        return min(requested, _budget)
    return requested


def fork_available() -> bool:
    """Whether the fork start method exists on this platform."""
    try:
        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return False
    return True


# ---------------------------------------------------------------------------
# Worker loop
# ---------------------------------------------------------------------------


def _worker_main(conn: Connection) -> None:
    """Serve ``(handler, payload_key, args)`` requests until told to exit."""
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # parent closed its end or died
            return
        if message is None:  # orderly shutdown
            return
        handler, payload_key, args = message
        try:
            payload = _PAYLOADS[payload_key] if payload_key is not None else None
            reply = ("ok", handler(payload, args))
        except BaseException:
            reply = ("err", traceback.format_exc())
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):  # parent went away mid-task
            return


# ---------------------------------------------------------------------------
# Pool
# ---------------------------------------------------------------------------

_spawn_count = 0


def pool_spawn_count() -> int:
    """Process-wide count of pool (re-)forks — lets tests assert pool reuse."""
    return _spawn_count


class WorkerPool:
    """A persistent set of forked workers, one duplex pipe each.

    Two dispatch shapes:

    * :meth:`run_sharded` — one pre-cut task per worker, results gathered in
      task order.  Used by beam levels, where the parent shards the entering
      states itself and the reassembly order is a correctness contract.
    * :meth:`run_tasks` — more tasks than workers, dispatched dynamically as
      workers free up; results still returned in task order.  Used by the
      candidate grid, whose cells have very uneven runtimes.
    """

    def __init__(self, workers: int) -> None:
        self._requested = effective_workers(workers)
        self._procs: List[BaseProcess] = []
        self._conns: List[Connection] = []
        self._forked_version = -1  # registry version snapshotted at fork
        self._owner_pid = os.getpid()
        self._broken = False

    # -- introspection ------------------------------------------------------

    @property
    def size(self) -> int:
        """Workers this pool forks (the clamp of the largest request so far)."""
        return self._requested

    @property
    def alive(self) -> bool:
        return bool(self._procs) and not self._broken

    # -- lifecycle ----------------------------------------------------------

    def grow(self, workers: int) -> None:
        """Raise the pool size; takes effect at the next (lazy) re-fork."""
        workers = effective_workers(workers)
        if workers > self._requested:
            self._requested = workers
            if self._procs:
                self._teardown()

    def _spawn(self) -> None:
        global _spawn_count
        self._teardown()
        context = multiprocessing.get_context("fork")
        for _ in range(self._requested):
            parent_end, child_end = context.Pipe(duplex=True)
            # Not daemonic: grid-cell workers must be able to fork their own
            # (budgeted) nested synthesis pools, which daemonic processes are
            # forbidden to do.  Orderly exit is guaranteed anyway — workers
            # return on the shutdown sentinel or on EOF when the parent dies,
            # and close_shared_pool() is registered atexit.
            proc = context.Process(target=_worker_main, args=(child_end,))
            proc.start()
            child_end.close()
            self._procs.append(proc)
            self._conns.append(parent_end)
        self._forked_version = _registry_version
        self._broken = False
        _spawn_count += 1

    def _ensure(self, payload_key: Optional[str]) -> None:
        """Fork (or re-fork) so live workers hold a current payload snapshot."""
        if self._owner_pid != os.getpid():
            # Pool object inherited into a forked child: its pipes belong to
            # the parent.  Abandon (never terminate the parent's workers) and
            # fork our own.
            self._procs, self._conns = [], []
            self._owner_pid = os.getpid()
            self._broken = False
        stale = (
            not self._procs
            or self._broken
            or (
                payload_key is not None
                and _PAYLOAD_VERSIONS.get(payload_key, 0) > self._forked_version
            )
        )
        if stale:
            self._spawn()

    def _teardown(self) -> None:
        if self._owner_pid != os.getpid():  # never touch a parent's workers
            self._procs, self._conns = [], []
            return
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            conn.close()
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)
        self._procs, self._conns = [], []

    def close(self) -> None:
        """Shut workers down.  The pool re-forks lazily if used again."""
        self._teardown()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- dispatch -----------------------------------------------------------

    def run_sharded(
        self,
        handler: TaskHandler,
        payload_key: Optional[str],
        tasks: Sequence[Any],
    ) -> List[Any]:
        """Run one task per worker; return results in task order.

        ``len(tasks)`` must not exceed :attr:`size`; a smaller batch uses a
        subset of the workers.
        """
        if len(tasks) > self._requested:
            raise ValueError(
                f"run_sharded got {len(tasks)} tasks for {self._requested} workers"
            )
        self._ensure(payload_key)
        for conn, args in zip(self._conns, tasks):
            conn.send((handler, payload_key, args))
        results: List[Any] = []
        for conn in self._conns[: len(tasks)]:
            results.append(self._receive(conn))
        return results

    def run_tasks(
        self,
        handler: TaskHandler,
        payload_key: Optional[str],
        tasks: Sequence[Any],
    ) -> List[Any]:
        """Run arbitrarily many tasks, refilling workers as they finish.

        Results are indexed by task position regardless of completion order.
        """
        self._ensure(payload_key)
        results: List[Any] = [None] * len(tasks)
        pending: Dict[Connection, int] = {}
        idle = list(self._conns)
        cursor = 0
        while cursor < len(tasks) or pending:
            while idle and cursor < len(tasks):
                conn = idle.pop()
                conn.send((handler, payload_key, tasks[cursor]))
                pending[conn] = cursor
                cursor += 1
            if not pending:
                break
            for ready in _wait_ready(list(pending)):
                index = pending.pop(ready)  # type: ignore[arg-type]
                results[index] = self._receive(ready)  # type: ignore[arg-type]
                idle.append(ready)  # type: ignore[arg-type]
        return results

    def _receive(self, conn: Connection) -> Any:
        try:
            status, value = conn.recv()
        except (EOFError, OSError) as exc:
            self._broken = True
            raise WorkerCrash(
                "worker process died without reporting a result"
            ) from exc
        if status == "err":
            # Workers that still hold queued tasks would desynchronise later
            # dispatches; mark broken so the next use re-forks a clean pool.
            self._broken = True
            raise WorkerCrash(f"worker task failed:\n{value}")
        return value


# ---------------------------------------------------------------------------
# Shared process-wide pool
# ---------------------------------------------------------------------------

_shared: Optional[WorkerPool] = None


def shared_pool(workers: int) -> WorkerPool:
    """Return the process-wide pool, growing it to at least ``workers``.

    The pool is created lazily (no processes fork until the first dispatch)
    and shared by every caller in this process, so consecutive ``plan()``
    calls and the beam levels inside them reuse one set of workers.
    """
    global _shared
    if _shared is not None and _shared._owner_pid != os.getpid():
        _shared = None  # inherited via fork; the workers are the parent's
    if _shared is None:
        _shared = WorkerPool(workers)
    else:
        _shared.grow(workers)
    return _shared


def close_shared_pool() -> None:
    """Tear down the shared pool (it re-forks lazily on next use)."""
    global _shared
    if _shared is not None:
        _shared.close()
    _shared = None


atexit.register(close_shared_pool)
