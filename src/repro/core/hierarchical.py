"""Hierarchical planning: pipeline parallelism over per-group SPMD programs.

Flat HAP synthesizes one SPMD program spanning every device, which makes the
slow inter-machine link carry the full gradient traffic on heterogeneous,
bandwidth-constrained clusters.  The hierarchical planner instead

1. partitions the cluster into contiguous machine groups
   (:meth:`~repro.cluster.spec.ClusterSpec.partition`),
2. cuts the model into contiguous chunks balanced against each group's
   aggregate compute (:func:`~repro.graph.analysis.interleaved_pipeline_cut`
   — one chunk per stage normally, ``s * v`` round-robin chunks for the
   interleaved schedule),
3. differentiates each chunk in isolation
   (:func:`~repro.autodiff.build_stage_training_graph`), and
4. runs the *existing* flat :class:`~repro.core.pipeline.HAPPlanner` on every
   (chunk graph, machine group) pair, so all of HAP's program synthesis and
   load balancing is reused unchanged inside each chunk.

For every stage count the planner then searches jointly over the pipeline
**schedule** (GPipe, 1F1B, interleaved 1F1B — :mod:`repro.simulator.schedule`),
the **microbatch count** (snapped to divisors of the global batch) and the
**activation-recomputation** knob, rejecting combinations whose per-device
peak memory — in-flight microbatch activations plus resident
parameter/gradient/optimizer state (optionally ZeRO-sharded via
``shard_optimizer_state``) — exceeds the machine group's capacity
from the :class:`~repro.cluster.device.DeviceType` specs.  Candidates are
priced with the dual-stream overlap model
(:class:`~repro.cluster.spec.CommOverlapModel`): per-stage collectives and
boundary transfers count only their **exposed** (non-hidden) part, so on
slow networks overlap-friendly combinations can win.  The cheapest
memory-feasible candidate wins.  One stage is always a candidate and
reproduces flat HAP exactly, so flat planning is the degenerate case of
hierarchical planning rather than a parallel code path.  This follows
HetPipe's pipelining across heterogeneous machine groups, PipeDream/Megatron
1F1B scheduling and Hetu's hierarchical heterogeneous SPMD annotations (see
PAPERS.md).
"""

from __future__ import annotations

import concurrent.futures
import copy
import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..autodiff.backward import StageTrainingInfo, build_stage_training_graph
from ..cluster.spec import ClusterPartition, ClusterSpec, CommOverlapModel, NetworkSpec
from ..graph.analysis import PipelineCut, interleaved_pipeline_cut
from ..graph.canonical import fingerprint_with_order, graph_fingerprint
from ..graph.graph import ComputationGraph, GraphError
from ..graph.ops import OpKind
from ..simulator.schedule import (
    SCHEDULE_NAMES,
    ChunkTimes,
    ScheduleResult,
    StageTimes,
    get_schedule,
    simulate_pipeline,
)
from . import workerpool
from .config import PlannerConfig, verify_default
from .costmodel import CostModel
from .pipeline import HAPPlan, HAPPlanner
from .plancache import CachedPlan, DiskPlanCache, InMemoryPlanCache, plan_key, remap_plan
from .program import DistributedProgram

#: Resident bytes per parameter byte: the parameter itself plus its gradient.
PARAM_GRAD_FACTOR = 2.0
#: Resident bytes per parameter byte held by the optimizer (one SGD moment).
#: Under ZeRO-style optimizer-state sharding this part — and only this part —
#: is partitioned across the data-parallel group.
OPTIMIZER_MOMENT_FACTOR = 1.0
#: Multiplier turning parameter bytes into resident state: the parameter, its
#: gradient, and one optimizer moment (the same convention as
#: :func:`repro.baselines.planners.estimate_memory_per_device`).
OPTIMIZER_STATE_FACTOR = PARAM_GRAD_FACTOR + OPTIMIZER_MOMENT_FACTOR


@dataclass
class HierarchicalConfig:
    """Knobs of the hierarchical (pipeline-over-SPMD) planner.

    Attributes:
        stage_candidates: stage counts to evaluate; defaults to
            ``1..min(max_stages, num_machines)``.  1 is flat HAP.
        max_stages: cap on the default candidate range.
        num_microbatches: fixed microbatch count; ``None`` (the default)
            searches over ``microbatch_candidates`` instead.
        microbatch_candidates: microbatch counts tried per (stage count,
            schedule); each is snapped to the nearest divisor of the global
            batch (and to a multiple of the stage count for the interleaved
            schedule).
        schedules: pipeline schedules searched; defaults to all of
            :data:`repro.simulator.schedule.SCHEDULE_NAMES`.
        num_model_chunks: model chunks per stage for ``interleaved-1f1b``.
            The planner cuts ``num_stages * num_model_chunks`` real chunks,
            plans each with flat HAP and simulates the schedule with the
            per-chunk profiles; when the graph has too few splittable blocks
            for that many chunks the interleaved schedule is skipped at that
            stage count (never approximated with synthetic equal chunks).
        recompute: activation recomputation policy — ``"never"``,
            ``"always"``, or ``"auto"`` (try without; a recomputing variant
            only wins when plain stashing exceeds device memory, since it
            costs one extra forward per microbatch).
        microbatch_overhead: fixed per-microbatch launch/scheduling cost that
            does not shrink with the microbatch size.
        intra_group_network: network model inside each machine group; defaults
            to the cluster's own network.  Pass the fast rack-local network
            when the cluster's flat network is the slow inter-rack bottleneck.
        overlap: communication/computation overlap efficiency used to price
            candidates — the schedule search ranks combinations by their
            *exposed* boundary-transfer and collective time.  ``None`` (the
            default) takes the cluster's ``comm_overlap_efficiency``; pass
            0.0 to rank with the fully blocking model.
        shard_optimizer_state: ZeRO-style optimizer-state sharding in the
            memory model: the optimizer-moment bytes of replicated parameters
            are divided by the data-parallel group size in the per-device
            peak-memory check (the paper's activation/parameter bytes are
            untouched — only the resident optimizer state shrinks).
        planner: configuration of the flat HAP planner run per stage.
        lr: learning rate stored on the stage graphs' ``sgd_update`` nodes.
        dedupe_subplans: plan each distinct (chunk-graph content, machine
            group, planner config) combination once per :meth:`plan` call and
            rename the resulting flat plan onto every isomorphic chunk —
            repeated transformer layers produce isomorphic chunk graphs
            across the (stage x schedule x microbatch) grid.  Result-identical
            because flat HAP planning is content-deterministic (node names
            never influence decisions); ``tests/test_optimization_parity.py``
            enforces it.
        plan_cache: a :class:`~repro.core.plancache.InMemoryPlanCache` /
            :class:`~repro.core.plancache.DiskPlanCache` consulted for every
            chunk plan and for the final whole plan, keyed by content
            fingerprints (see :mod:`repro.core.plancache`).  ``None`` (the
            default) disables cross-call caching; within-call dedupe is
            governed by ``dedupe_subplans`` alone.
        planner_workers: worker processes evaluating the candidate grid.  1
            (the default) is the serial path.  With more, :meth:`plan` fans
            the (stage count x chunk variant) cells — each cell runs the
            expensive per-chunk flat-HAP synthesis and profiling — out to
            the persistent shared pool of :mod:`repro.core.workerpool`
            (created lazily, reused by consecutive ``plan()`` calls and by
            ``synthesis_workers``, torn down by
            :meth:`HierarchicalPlanner.close`) and assembles
            the schedule search and candidate selection in the parent, in
            the serial candidate order with the serial tie-breaks, so the
            selected plan is **bit-identical** to ``planner_workers=1``
            (``tests/test_parallel_planning.py`` enforces it).  Workers
            share a configured :class:`~repro.core.plancache.DiskPlanCache`
            by directory (synthesis done by one worker is a hit for the
            others); an in-memory cache is snapshotted into the workers and
            fresh entries are merged back.  The field is excluded from
            cache keys.  ``reuse_stats`` are replayed from the workers'
            chunk-key logs under serial semantics, so they match serial
            bit for bit too (isomorphic chunks spanning two grid cells may
            cost duplicated worker compute, never a different result).
        verify_after_plan: run the static plan verifier
            (:func:`repro.verify.verify_plan` — partition, boundary,
            round-robin, memory, per-chunk program and schedule checks) on
            the winning plan before :meth:`~HierarchicalPlanner.plan`
            returns, raising
            :class:`~repro.verify.base.PlanVerificationError` on any
            error-severity diagnostic.  Defaults to the ``REPRO_VERIFY``
            environment variable (on in tests).  Independent of this flag,
            every plan-cache hit is *always* structurally verified before it
            is returned — a corrupt or stale entry becomes a diagnosed miss
            (``reuse_stats["cache_rejects"]``) and planning falls through to
            fresh synthesis.  Excluded from plan-cache keys (verification
            never changes the plan).
    """

    stage_candidates: Optional[Sequence[int]] = None
    max_stages: int = 4
    num_microbatches: Optional[int] = None
    microbatch_candidates: Optional[Sequence[int]] = None
    schedules: Optional[Sequence[str]] = None
    num_model_chunks: int = 2
    recompute: str = "auto"
    microbatch_overhead: float = 50e-6
    intra_group_network: Optional[NetworkSpec] = None
    overlap: Optional[float] = None
    shard_optimizer_state: bool = False
    planner: PlannerConfig = field(default_factory=PlannerConfig)
    lr: float = 0.01
    dedupe_subplans: bool = True
    plan_cache: Optional[InMemoryPlanCache] = None
    planner_workers: int = 1
    verify_after_plan: bool = field(default_factory=verify_default)

    def __post_init__(self) -> None:
        if self.planner_workers < 1:
            raise ValueError(
                f"planner_workers must be >= 1, got {self.planner_workers}"
            )
        if self.recompute not in ("never", "always", "auto"):
            raise ValueError(
                f"recompute must be 'never', 'always' or 'auto', got {self.recompute!r}"
            )
        if self.overlap is not None:
            CommOverlapModel(efficiency=self.overlap)  # fail fast on bad values
        for name in self.schedules or ():
            get_schedule(name)  # fail fast on typos


@dataclass
class ChunkPlan:
    """One model chunk: a flat HAP plan for one chunk graph on one group.

    A plan's pipeline is a sequence of ``s * v`` *virtual stages* (``v`` model
    chunks round-robin over ``s`` physical stages); virtual stage
    ``k = chunk * s + stage_index`` runs this chunk's program.  With ``v == 1``
    a chunk is exactly a whole pipeline stage.

    Attributes:
        chunk: model-chunk index ``c`` in ``0..v-1``.
        stage_index: physical stage (machine group) hosting the chunk.
        virtual_index: position ``k = chunk * s + stage_index`` in the
            virtual-stage order.
        subcluster: the machine group this chunk runs on.
        plan: the flat HAP plan for the chunk's training graph.
        info: chunk-graph book-keeping (boundary refs, gradient seeds,
            per-parameter updates) used by the hierarchical runtime.
        send_bytes: full-mini-batch activation bytes handed to later virtual
            stages — for a chunk on the last physical stage that is the
            wrap-around hop back to physical stage 0.
        activation_bytes: full-mini-batch forward activation bytes the chunk
            stashes for its backward pass.
        sharded_param_bytes: parameter bytes the chunk program shards across
            its group (each device holds its ratio's worth).
        replicated_param_bytes: parameter bytes replicated on every device.
        content_key: content address of the (chunk graph, group, planner
            config) planning problem (see :func:`repro.core.plancache.plan_key`);
            ``None`` when plan reuse is disabled.  Two chunks with the same
            key have bit-identical cost profiles (the cost model never looks
            at node names), so the planner and simulator profile each
            distinct key once.
    """

    chunk: int
    stage_index: int
    virtual_index: int
    subcluster: ClusterSpec
    plan: HAPPlan
    info: StageTrainingInfo
    send_bytes: int
    activation_bytes: int = 0
    sharded_param_bytes: int = 0
    replicated_param_bytes: int = 0
    content_key: Optional[str] = None

    @property
    def program(self) -> DistributedProgram:
        return self.plan.program

    @property
    def ratios(self) -> List[float]:
        return self.plan.flat_ratios

    @property
    def forward_nodes(self) -> Set[str]:
        return set(self.info.forward_nodes)

    def weight_bytes_total(self) -> float:
        """Group-aggregate resident parameter/gradient/optimizer bytes."""
        n = self.subcluster.num_devices
        return OPTIMIZER_STATE_FACTOR * (
            self.replicated_param_bytes * n + self.sharded_param_bytes
        )


@dataclass
class StagePlan:
    """One physical pipeline stage: the model chunks resident on one group.

    With a non-interleaved schedule a stage hosts exactly one chunk and the
    single-chunk accessors (``plan``/``info``/``program``/``ratios``/
    ``forward_nodes``) delegate to it; interleaved stages host
    ``num_model_chunks`` chunk programs and those accessors raise — callers
    must iterate ``chunks`` (the runtime and simulator do).

    Attributes:
        index: stage position in the pipeline.
        subcluster: the machine group this stage runs on.
        chunks: the stage's :class:`ChunkPlan`\\ s, in model-chunk order.
    """

    index: int
    subcluster: ClusterSpec
    chunks: List[ChunkPlan]

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)

    def _single(self) -> ChunkPlan:
        if len(self.chunks) != 1:
            raise ValueError(
                f"stage {self.index} hosts {len(self.chunks)} model chunks; "
                "use .chunks for per-chunk access"
            )
        return self.chunks[0]

    @property
    def plan(self) -> HAPPlan:
        return self._single().plan

    @property
    def info(self) -> StageTrainingInfo:
        return self._single().info

    @property
    def program(self) -> DistributedProgram:
        return self._single().program

    @property
    def ratios(self) -> List[float]:
        return self._single().ratios

    @property
    def forward_nodes(self) -> Set[str]:
        return self._single().forward_nodes

    @property
    def send_bytes(self) -> int:
        """Full-mini-batch bytes this stage ships downstream (all chunks)."""
        return sum(c.send_bytes for c in self.chunks)

    @property
    def activation_bytes(self) -> int:
        return sum(c.activation_bytes for c in self.chunks)

    def weight_bytes_total(self) -> float:
        """Group-aggregate resident parameter/gradient/optimizer bytes."""
        return sum(c.weight_bytes_total() for c in self.chunks)

    def peak_device_memory(
        self, peak_stash: float, shard_optimizer_state: bool = False
    ) -> List[float]:
        """Per-device peak bytes given the schedule's aggregate stash.

        ``peak_stash`` is the stage's group-aggregate activation-stash peak
        from :class:`~repro.simulator.schedule.ScheduleResult`.  Activations
        are batch-sharded, so each device holds its sharding-ratio share of
        the stash — chunks may be balanced differently, so the device's worst
        chunk ratio bounds its share — on top of its resident parameter
        state.

        With ``shard_optimizer_state`` (ZeRO-1 style) the optimizer-moment
        bytes of *replicated* parameters are divided by the data-parallel
        group size: each device keeps the full parameter and gradient but
        only its ``1/n`` slice of the optimizer state.  Sharded parameters
        already hold a ratio's worth of all three, so they are unchanged.
        """
        n = self.subcluster.num_devices
        moment = (
            OPTIMIZER_MOMENT_FACTOR / n if shard_optimizer_state else OPTIMIZER_MOMENT_FACTOR
        )
        peaks: List[float] = []
        for j in range(n):
            weight = sum(
                (PARAM_GRAD_FACTOR + moment) * c.replicated_param_bytes
                + OPTIMIZER_STATE_FACTOR * c.sharded_param_bytes * c.ratios[j]
                for c in self.chunks
            )
            share = max(c.ratios[j] for c in self.chunks)
            peaks.append(weight + peak_stash * share)
        return peaks


@dataclass
class HierarchicalPlan:
    """A pipeline of per-group SPMD plans (flat HAP when ``num_stages == 1``).

    Attributes:
        cluster: the full target cluster.
        partition: the machine-group partition the stages run on.
        stages: per-stage plans, in pipeline order.
        cut: the layer cut that produced the stage graphs.
        num_microbatches: microbatch count of the schedule.
        estimated_time: planner estimate of the pipelined iteration time.
        schedule: the schedule estimate behind ``estimated_time``.
        schedule_name: winning schedule (``gpipe``/``1f1b``/…).
        num_model_chunks: model chunks per stage (interleaved only).
        recompute: whether the plan recomputes activations in the backward.
        fits_memory: True when every stage's per-device peak memory fits its
            group's device capacity.
        peak_memory: per-stage group-aggregate peak bytes of the schedule.
        stage_memory_capacity: per-stage group-aggregate memory capacity.
        stage_memory_utilization: per-stage worst-device fraction of device
            capacity at the schedule's in-flight peak — the number behind the
            ``fits_memory`` verdict (>1 means some device does not fit even
            if the group aggregates look comfortable).
        candidate_times: estimated time of every stage count evaluated.
        schedule_candidate_times: estimated time of every
            (stage count, schedule, microbatches, recompute) combination.
        batch_size: global mini-batch size (for runtime ratio snapping).
        overlap: communication overlap efficiency the plan was priced with
            (boundary transfers and per-stage collectives expose only their
            non-hidden part).
        shard_optimizer_state: whether the memory feasibility checks sharded
            replicated parameters' optimizer moments ZeRO-style.
        reuse_stats: how much flat-HAP planning the reuse machinery avoided:
            ``subplans_planned`` chunk plans were actually synthesized,
            ``subplans_deduped`` were renamed from an isomorphic chunk planned
            earlier in the same call, ``cache_hits`` came from the configured
            plan cache, and ``whole_plan_hit`` is 1 when the entire plan was
            served from the cache.
    """

    cluster: ClusterSpec
    partition: ClusterPartition
    stages: List[StagePlan]
    cut: PipelineCut
    num_microbatches: int
    estimated_time: float
    schedule: ScheduleResult
    schedule_name: str = "gpipe"
    num_model_chunks: int = 1
    recompute: bool = False
    fits_memory: bool = True
    overlap: float = 0.0
    shard_optimizer_state: bool = False
    peak_memory: List[float] = field(default_factory=list)
    stage_memory_capacity: List[float] = field(default_factory=list)
    stage_memory_utilization: List[float] = field(default_factory=list)
    candidate_times: Dict[int, float] = field(default_factory=dict)
    schedule_candidate_times: Dict[Tuple[int, str, int, bool], float] = field(
        default_factory=dict
    )
    batch_size: Optional[int] = None
    microbatch_overhead: float = 0.0
    reuse_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def is_flat(self) -> bool:
        """True when planning degenerated to a single flat SPMD program."""
        return self.num_stages == 1

    @property
    def estimated_iteration_time(self) -> float:
        return self.estimated_time

    def chunk_sequence(self) -> List[ChunkPlan]:
        """All chunk plans in virtual-stage order (``k = chunk * s + stage``).

        The order activations flow through the pipeline: chunk 0 of every
        stage front to back, then chunk 1 front to back (entered via the
        wrap hop), and so on.  With ``num_model_chunks == 1`` this is simply
        the stages in pipeline order.
        """
        v = max(stage.num_chunks for stage in self.stages)
        return [stage.chunks[c] for c in range(v) for stage in self.stages]

    @property
    def num_communications(self) -> int:
        return sum(c.program.num_communications for c in self.chunk_sequence())

    def communication_kinds(self) -> Dict[str, int]:
        hist: Dict[str, int] = {}
        for chunk in self.chunk_sequence():
            for kind, count in chunk.program.communication_kinds().items():
                hist[kind] = hist.get(kind, 0) + count
        return hist

    def describe(self) -> str:
        """Readable plan summary (stages, groups, schedule estimate, memory)."""
        recompute = ", recompute" if self.recompute else ""
        zero = ", ZeRO opt-state" if self.shard_optimizer_state else ""
        chunks = (
            f" x{self.num_model_chunks} chunks" if self.num_model_chunks > 1 else ""
        )
        overlap_note = ""
        if self.overlap > 0 and self.schedule.transfer > 0:
            hidden_pct = 100.0 * self.schedule.hidden_transfer / self.schedule.transfer
            overlap_note = (
                f", overlap {self.overlap:.0%} hides {hidden_pct:.0f}% of transfers"
            )
        lines = [
            f"Hierarchical plan on {self.cluster.name!r}: {self.num_stages} stage(s), "
            f"{self.schedule_name}{chunks} schedule, {self.num_microbatches} microbatches"
            f"{recompute}{zero}, estimated {self.estimated_time * 1e3:.2f} ms/iteration "
            f"(bubble {self.schedule.bubble_fraction * 100:.0f}%{overlap_note})"
        ]
        if not self.fits_memory:
            lines.append("  WARNING: no memory-feasible candidate; best infeasible plan kept")
        for stage in self.stages:
            group = stage.subcluster
            peak = (
                self.peak_memory[stage.index] if stage.index < len(self.peak_memory) else 0.0
            )
            cap = (
                self.stage_memory_capacity[stage.index]
                if stage.index < len(self.stage_memory_capacity)
                else 0.0
            )
            util = (
                f", worst device {self.stage_memory_utilization[stage.index] * 100:.0f}%"
                if stage.index < len(self.stage_memory_utilization)
                else ""
            )
            mem = f", peak mem {peak / 1e9:.2f}/{cap / 1e9:.0f} GB{util}" if cap else ""
            nodes = sum(len(c.info.graph) for c in stage.chunks)
            est = sum(c.plan.estimated_time.total for c in stage.chunks)
            chunk_note = (
                f" in {stage.num_chunks} chunk programs" if stage.num_chunks > 1 else ""
            )
            lines.append(
                f"  stage {stage.index}: {nodes} nodes{chunk_note} on "
                f"{group.name} ({group.num_gpus} GPUs), "
                f"est {est * 1e3:.2f} ms flat, "
                f"sends {stage.send_bytes / 1e6:.2f} MB downstream{mem}"
            )
        if self.candidate_times:
            ranked = ", ".join(
                f"{s}->{t * 1e3:.1f}ms" for s, t in sorted(self.candidate_times.items())
            )
            lines.append(f"  candidates: {ranked}")
        if self.reuse_stats:
            planned = self.reuse_stats.get("subplans_planned", 0)
            deduped = self.reuse_stats.get("subplans_deduped", 0)
            cached = self.reuse_stats.get("cache_hits", 0)
            note = " (whole plan from cache)" if self.reuse_stats.get("whole_plan_hit") else ""
            lines.append(
                f"  reuse: {planned} chunk plan(s) synthesized, "
                f"{deduped} deduped, {cached} cache hit(s){note}"
            )
        return "\n".join(lines)


def stage_forward_graph(
    forward: ComputationGraph, cut: PipelineCut, stage: int
) -> ComputationGraph:
    """Build the forward subgraph of one pipeline stage.

    Incoming activations become placeholder nodes carrying the *original*
    node names, so downstream bindings and activation handoff need no
    renaming; the stage's own nodes are copied verbatim in topological order.
    Attribute values are deep-copied: shape lists and nested dicts must not
    be shared between the original graph and the per-stage copies, or a
    mutation through one stage graph would corrupt every other stage.
    """
    graph = ComputationGraph(f"{forward.name}_p{stage}")
    for ref in cut.incoming_refs(stage):
        spec = forward[ref].spec
        graph.add_node(ref, "placeholder", (), {"shape": spec.shape, "dtype": spec.dtype})
    for name in cut.stages[stage]:
        node = forward[name]
        graph.add_node(name, node.op, node.inputs, copy.deepcopy(dict(node.attrs)))
    if forward.loss is not None and forward.loss in graph:
        graph.mark_loss(forward.loss)
    return graph


def _divisors(n: int) -> List[int]:
    """All divisors of ``n``, ascending, enumerated in O(sqrt(n)) pairs."""
    small: List[int] = []
    large: List[int] = []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return small + large[::-1]


def _nearest_divisor(n: int, target: int) -> int:
    """The divisor of ``n`` closest to ``target`` (ties prefer the larger).

    Enumerates divisor pairs in O(sqrt(n)) — this runs inside the planner's
    schedule-search loop, where a linear scan over production batch sizes
    was a hidden O(batch) cost per candidate.
    """
    target = max(1, min(target, n))
    return min(_divisors(n), key=lambda d: (abs(d - target), -d))


class HierarchicalPlanner:
    """Searches (stage count x schedule x microbatches), flat HAP per stage."""

    def __init__(
        self,
        forward: ComputationGraph,
        cluster: ClusterSpec,
        config: Optional[HierarchicalConfig] = None,
    ) -> None:
        if any(node.kind is OpKind.OPTIMIZER for node in forward):
            raise GraphError(
                "HierarchicalPlanner needs the forward graph (with a marked loss): "
                "stages are differentiated individually"
            )
        if forward.loss is None:
            raise GraphError("HierarchicalPlanner needs a forward graph with a marked loss")
        self.forward = forward
        self.cluster = cluster
        self.config = config or HierarchicalConfig()
        if self.config.verify_after_plan:
            # Pre-planning IR check of the forward graph; the per-chunk
            # training graphs are checked again by each HAPPlanner.
            from ..verify.base import PlanVerificationError
            from ..verify.graph import verify_graph

            graph_report = verify_graph(forward)
            if not graph_report.ok:
                raise PlanVerificationError(graph_report)
        self.batch_size = self._batch_size()
        self.overlap = (
            CommOverlapModel.from_cluster(cluster).efficiency
            if self.config.overlap is None
            else self.config.overlap
        )
        # Within-call sub-plan dedupe table and reuse counters; reset per plan().
        self._local_plans: Dict[str, CachedPlan] = {}
        # Cache entries created (not merely hit) by this planner — what a
        # parallel worker ships back for merging into the parent's cache.
        self._fresh_entries: List[CachedPlan] = []
        # Content key of every _plan_chunk call in order (None = reuse off):
        # the parallel parent replays these against serial reuse semantics so
        # reuse_stats never depend on worker scheduling.
        self._chunk_key_log: List[Optional[str]] = []
        self._replayed_keys: Set[str] = set()
        # content_key -> phase_profile buckets: each distinct (chunk graph,
        # group, planner config) problem is profiled once per plan() call.
        self._profile_memo: Dict[str, Dict[str, float]] = {}
        self.reuse_stats: Dict[str, int] = {
            "subplans_planned": 0,
            "subplans_deduped": 0,
            "cache_hits": 0,
            "cache_rejects": 0,
            "whole_plan_hit": 0,
        }

    def _batch_size(self) -> Optional[int]:
        leading = {
            p.spec.shape[0] for p in self.forward.placeholders() if p.spec.rank > 0
        }
        return leading.pop() if len(leading) == 1 else None

    def _candidates(self) -> List[int]:
        if self.config.stage_candidates is not None:
            candidates = sorted(set(self.config.stage_candidates))
        else:
            upper = min(self.config.max_stages, len(self.cluster.machines))
            candidates = list(range(1, upper + 1))
        if 1 not in candidates:
            candidates.insert(0, 1)  # flat HAP is always a candidate
        return [s for s in candidates if 1 <= s <= len(self.cluster.machines)]

    def _microbatch_candidates(self, num_stages: int, schedule_name: str) -> List[int]:
        """Microbatch counts to try, snapped to divisors of the global batch.

        A microbatch count above the batch size would produce empty
        microbatches and one that does not divide the batch would produce
        ragged ones, so candidates are clamped and snapped to the nearest
        batch divisor whenever the batch size is known (graphs with mixed
        leading dimensions fall back to the raw candidate list).  The
        interleaved schedule additionally requires multiples of the stage
        count, so non-conforming candidates are dropped and ``s``/``2s`` are
        offered instead.
        """
        if self.config.num_microbatches is not None:
            base = [self.config.num_microbatches]
        else:
            base = list(self.config.microbatch_candidates or (2, 4, 8, 16, 32))
            if schedule_name == "interleaved-1f1b":
                base += [num_stages, 2 * num_stages]
        out: Set[int] = set()
        if schedule_name == "interleaved-1f1b" and self.batch_size is not None:
            # The interleaved schedule needs m to divide the batch *and* be a
            # multiple of the stage count.  Snap every configured candidate to
            # the nearest such divisor — the candidate list stays bounded by
            # the configured candidates instead of enumerating every multiple
            # of the stage count up to the batch (an O(batch) blow-up at
            # production batch sizes).  An empty ``valid`` means the schedule
            # is genuinely infeasible at this stage count.
            valid = [d for d in _divisors(self.batch_size) if d % num_stages == 0]
            if not valid:
                return []
            for m in base:
                m = max(1, int(m))
                out.add(min(valid, key=lambda d, m=m: (abs(d - m), -d)))
            return sorted(out)
        for m in base:
            m = max(1, int(m))
            if self.batch_size is not None:
                m = _nearest_divisor(self.batch_size, m)
            if schedule_name == "interleaved-1f1b" and m % num_stages != 0:
                continue
            out.add(m)
        return sorted(out)

    # -- per-candidate construction -------------------------------------------------
    def _plan_chunk(
        self, graph: ComputationGraph, group: ClusterSpec
    ) -> Tuple[HAPPlan, Optional[str]]:
        """Flat-HAP plan for one chunk graph, reusing isomorphic work.

        Lookup order: the within-call dedupe table (isomorphic chunks planned
        earlier in this :meth:`plan` call — repeated layers, or the same cut
        re-planned for another schedule variant), then the configured
        persistent cache.  Both key on content only — chunk-graph fingerprint
        x machine-group signature x planner config — and a hit is renamed
        onto this chunk's node names, so the result is identical to planning
        from scratch.  Returns the plan and its content key (``None`` when
        reuse is disabled and no key was computed).
        """
        reuse = self.config.dedupe_subplans or self.config.plan_cache is not None
        if not reuse:
            self.reuse_stats["subplans_planned"] += 1
            self._chunk_key_log.append(None)
            return HAPPlanner(graph, group, self.config.planner).plan(), None
        fingerprint, order = fingerprint_with_order(graph)
        key = plan_key(fingerprint, group, self.config.planner)
        self._chunk_key_log.append(key)
        if self.config.dedupe_subplans:
            entry = self._local_plans.get(key)
            if entry is not None:
                self.reuse_stats["subplans_deduped"] += 1
                return remap_plan(entry.plan, entry.node_names, graph), key
        if self.config.plan_cache is not None:
            entry = self.config.plan_cache.get(key)
            if entry is not None:
                # Trust-but-verify: a cached chunk plan crossed a process or
                # filesystem boundary, so its program is structurally checked
                # (cheap, O(instructions)) before it is accepted.  A corrupt
                # or stale entry becomes a diagnosed miss and the chunk is
                # re-synthesized (overwriting the bad entry below).
                from ..verify.program import verify_program

                try:
                    remapped = remap_plan(entry.plan, entry.node_names, graph)
                    accept = verify_program(remapped.program, check_cost=False).ok
                except Exception:  # unreadable entry == failed verification
                    accept = False
                if accept:
                    self.reuse_stats["cache_hits"] += 1
                    self._local_plans[key] = entry
                    return remapped, key
                self.reuse_stats["cache_rejects"] += 1
        plan = HAPPlanner(graph, group, self.config.planner).plan()
        self.reuse_stats["subplans_planned"] += 1
        entry = CachedPlan(key=key, node_names=order, plan=plan)
        self._local_plans[key] = entry
        if self.config.plan_cache is not None:
            self.config.plan_cache.put(entry)
            self._fresh_entries.append(entry)
        return plan, key

    def _build_stages(
        self, partition: ClusterPartition, num_chunks: int
    ) -> Optional[Tuple[PipelineCut, List[StagePlan]]]:
        """Cut ``s * num_chunks`` real chunks and plan each with flat HAP.

        Returns ``None`` when the graph has too few splittable layer blocks
        for that many contiguous pieces — the caller then drops the chunked
        (or multi-stage) variant rather than falling back to a synthetic
        equal-chunk model.
        """
        s = partition.num_groups
        cut = interleaved_pipeline_cut(
            self.forward, partition.compute_ratios(), num_chunks
        )
        if cut.num_stages != s * num_chunks:
            return None
        chunk_plans: List[ChunkPlan] = []
        for k in range(cut.num_stages):
            stage_idx = k % s
            chunk_fwd = stage_forward_graph(self.forward, cut, k)
            info = build_stage_training_graph(
                chunk_fwd,
                boundary_inputs=tuple(cut.incoming_refs(k)),
                boundary_outputs=cut.cut_refs[k],
                lr=self.config.lr,
            )
            plan, content_key = self._plan_chunk(info.graph, partition.groups[stage_idx])
            # Bytes the chunk's *outgoing hop* actually ships: every tensor in
            # flight across virtual boundary k, including skip-connection
            # tensors produced by earlier chunks that this hop merely relays
            # (charging those only at their producer's hop under-priced every
            # interior hop they cross).  The final virtual stage sends nothing.
            send_bytes = (
                sum(self.forward[ref].spec.size_bytes for ref in cut.crossing_refs(k))
                if k < cut.num_stages - 1
                else 0
            )
            activation_bytes = sum(
                info.graph[name].spec.size_bytes
                for name in info.forward_nodes
                if info.graph[name].kind is not OpKind.SOURCE
            )
            shardings = plan.program.parameter_shardings()
            sharded = sum(
                p.spec.size_bytes
                for p in info.graph.parameters()
                if shardings.get(p.name) is not None
            )
            replicated = sum(
                p.spec.size_bytes
                for p in info.graph.parameters()
                if shardings.get(p.name) is None
            )
            chunk_plans.append(
                ChunkPlan(
                    chunk=k // s,
                    stage_index=stage_idx,
                    virtual_index=k,
                    subcluster=partition.groups[stage_idx],
                    plan=plan,
                    info=info,
                    send_bytes=send_bytes,
                    activation_bytes=activation_bytes,
                    sharded_param_bytes=sharded,
                    replicated_param_bytes=replicated,
                    content_key=content_key,
                )
            )
        stages = [
            StagePlan(
                index=i,
                subcluster=partition.groups[i],
                chunks=[c for c in chunk_plans if c.stage_index == i],
            )
            for i in range(s)
        ]
        return cut, stages

    def _candidate_partition(self, num_stages: int) -> ClusterPartition:
        # The intra-group network only applies to proper partitions: a single
        # group is the whole cluster and still spans the slow flat network.
        intra = self.config.intra_group_network if num_stages > 1 else None
        return self.cluster.partition(num_stages, intra_group_network=intra)

    def _candidate_variants(self, num_stages: int) -> List[int]:
        """Model-chunk counts some (schedule, microbatch) combo will consume.

        Flat-HAP planning per chunk is the expensive part of a candidate, so
        an interleaved-only search skips the 1-chunk cut and a schedule with
        no valid microbatch count (e.g. no batch divisor is a multiple of the
        stage count) never triggers the ``s * v`` cut whose results the
        search would discard.
        """
        v = self.config.num_model_chunks
        needed: Set[int] = set()
        if num_stages == 1:
            needed.add(1)
        else:
            for name in list(self.config.schedules or SCHEDULE_NAMES):
                chunks = v if (name == "interleaved-1f1b" and v > 1) else 1
                if self._microbatch_candidates(num_stages, name):
                    needed.add(chunks)
        return sorted(needed)

    def _build_variant(
        self, partition: ClusterPartition, chunks: int
    ) -> Optional[Tuple[PipelineCut, List[StagePlan], List[StageTimes]]]:
        """Cut, plan and profile one (stage count, model-chunk count) cell.

        This is the expensive, embarrassingly parallel unit of the candidate
        grid — everything downstream (schedule search, memory checks,
        selection) is cheap arithmetic on the returned profiles.
        """
        built = self._build_stages(partition, chunks)
        if built is None:
            return None
        return built[0], built[1], self._stage_times(built[1])

    def candidate_grid(self) -> List[Tuple[int, int]]:
        """The full (stage count, model-chunk count) grid, in serial order.

        One entry per expensive planning cell :meth:`_build_variant` has to
        evaluate; the parallel planner dispatches exactly these cells to its
        worker pool.  (The cheaper inner grid — schedule x microbatches x
        recompute — is searched in the parent over each cell's profiles.)
        """
        return [
            (num_stages, chunks)
            for num_stages in self._candidates()
            for chunks in self._candidate_variants(num_stages)
        ]

    def build_candidate(
        self,
        num_stages: int,
        variants: Optional[
            Dict[int, Tuple[PipelineCut, List[StagePlan], List[StageTimes]]]
        ] = None,
    ) -> Optional[HierarchicalPlan]:
        partition = self._candidate_partition(num_stages)
        if variants is None:
            # variant key = model chunks per stage -> (cut, stages, times).
            variants = {}
            for chunks in self._candidate_variants(num_stages):
                built = self._build_variant(partition, chunks)
                if built is not None:
                    variants[chunks] = built
        if not variants:
            return None  # the graph has fewer splittable layer blocks
        best = self._search_schedules(partition, variants)
        if best is None:
            return None  # no (schedule, microbatch) combination at this stage count
        schedule, schedule_name, recompute, fits, combo_times, win_chunks = best
        cut, stages, _times = variants[win_chunks]
        utilization: List[float] = []
        for stage, stash in zip(stages, schedule.peak_stash):
            peaks = stage.peak_device_memory(
                stash, shard_optimizer_state=self.config.shard_optimizer_state
            )
            utilization.append(
                max(
                    peak / cap
                    for peak, cap in zip(peaks, stage.subcluster.device_memory())
                )
            )
        return HierarchicalPlan(
            cluster=self.cluster,
            partition=partition,
            stages=stages,
            cut=cut,
            num_microbatches=schedule.num_microbatches,
            estimated_time=schedule.total,
            schedule=schedule,
            schedule_name=schedule_name,
            num_model_chunks=schedule.num_model_chunks,
            recompute=recompute,
            fits_memory=fits,
            overlap=self.overlap,
            shard_optimizer_state=self.config.shard_optimizer_state,
            peak_memory=list(schedule.peak_memory),
            stage_memory_capacity=[float(s.subcluster.total_memory()) for s in stages],
            stage_memory_utilization=utilization,
            schedule_candidate_times=combo_times,
            batch_size=self.batch_size,
            microbatch_overhead=0.0 if num_stages == 1 else self.config.microbatch_overhead,
        )

    def _stage_times(self, stages: Sequence[StagePlan]) -> List[StageTimes]:
        """Per-stage (and per-chunk) timing/memory inputs from the cost models.

        Every chunk program is profiled individually, so the schedule
        simulator sees real per-chunk forward/backward times and real
        per-virtual-boundary bytes — including the wrap hop from the last
        physical stage back to stage 0.  Chunks sharing a ``content_key``
        (isomorphic graph, same group signature, same planner config) have
        bit-identical profiles — the cost model never reads node names — so
        each distinct key is profiled once per :meth:`plan` call and the
        buckets are reused across variants and stage counts.
        """
        times: List[StageTimes] = []
        for stage in stages:
            chunk_times: List[ChunkTimes] = []
            fwd = bwd = sync = 0.0
            for chunk in stage.chunks:
                key = chunk.content_key
                buckets = self._profile_memo.get(key) if key is not None else None
                if buckets is None:
                    cost_model = CostModel(
                        chunk.plan.program.graph, stage.subcluster, overlap=self.overlap
                    )
                    buckets = cost_model.phase_profile(
                        chunk.plan.program, chunk.ratios, chunk.forward_nodes
                    )
                    if key is not None:
                        self._profile_memo[key] = buckets
                chunk_times.append(
                    ChunkTimes(
                        forward=buckets["forward"],
                        backward=buckets["backward"],
                        send_bytes=float(chunk.send_bytes),
                        activation_bytes=float(chunk.activation_bytes),
                    )
                )
                fwd += buckets["forward"]
                bwd += buckets["backward"]
                sync += buckets["sync"]
            times.append(
                StageTimes(
                    forward=fwd,
                    backward=bwd,
                    sync=sync,
                    send_bytes=float(stage.send_bytes),
                    activation_bytes=float(stage.activation_bytes),
                    weight_bytes=stage.weight_bytes_total(),
                    chunks=tuple(chunk_times),
                )
            )
        return times

    def _fits_memory(
        self, stages: Sequence[StagePlan], result: ScheduleResult
    ) -> bool:
        """True when every device of every stage group fits its peak bytes."""
        for stage, stash in zip(stages, result.peak_stash):
            capacities = stage.subcluster.device_memory()
            peaks = stage.peak_device_memory(
                stash, shard_optimizer_state=self.config.shard_optimizer_state
            )
            if any(peak > cap for peak, cap in zip(peaks, capacities)):
                return False
        return True

    def _search_schedules(
        self,
        partition: ClusterPartition,
        variants: Dict[int, Tuple[PipelineCut, List[StagePlan], List[StageTimes]]],
    ) -> Optional[
        Tuple[ScheduleResult, str, bool, bool, Dict[Tuple[int, str, int, bool], float], int]
    ]:
        """Best (schedule, microbatch count, recompute) across chunk variants.

        ``variants`` maps a model-chunk count to its real per-chunk plans and
        profiles: non-interleaved schedules evaluate the 1-chunk variant,
        ``interleaved-1f1b`` evaluates the ``num_model_chunks`` variant and is
        skipped entirely when that cut is infeasible — an interleaved plan is
        only ever built from real chunk programs it can execute.

        Combinations are ranked memory-feasible first, then by estimated
        time; activation recomputation trades one extra forward per
        microbatch for an O(1) activation stash, so it can never beat a
        memory-feasible plain run — under the default ``"auto"`` policy the
        recomputing variant is only simulated when plain stashing exceeds
        device memory.  Returns ``None`` when no (schedule, microbatch)
        combination exists for this stage count (e.g. an interleaved-only
        search whose batch has no divisor that is a multiple of the stage
        count) — the flat 1-stage candidate always exists.
        """
        network = partition.inter_group_network
        num_stages = partition.num_groups
        combo_times: Dict[Tuple[int, str, int, bool], float] = {}
        # A single stage is flat SPMD: the whole batch runs at once, so no
        # microbatching (and no per-microbatch overhead) applies.
        if num_stages == 1:
            combos: List[Tuple[str, int, int]] = [("gpipe", 1, 1)]
        else:
            schedules = list(self.config.schedules or SCHEDULE_NAMES)
            combos = []
            for name in schedules:
                chunks = 1
                if name == "interleaved-1f1b" and self.config.num_model_chunks > 1:
                    chunks = self.config.num_model_chunks
                if chunks not in variants:
                    continue  # no real cut at this chunk count: not executable
                combos.extend(
                    (name, m, chunks)
                    for m in self._microbatch_candidates(num_stages, name)
                )
        if not combos:
            return None
        first_recompute = self.config.recompute == "always" and num_stages > 1
        best: Optional[
            Tuple[Tuple[int, float, int], ScheduleResult, str, bool, bool, int]
        ] = None
        for order, (name, m, chunks) in enumerate(combos):
            _cut, stages, times = variants[chunks]
            attempts = [first_recompute]
            for rc in attempts:
                result = simulate_pipeline(
                    times,
                    num_microbatches=m,
                    inter_group_bandwidth=network.bandwidth,
                    inter_group_latency=network.latency,
                    microbatch_overhead=0.0
                    if num_stages == 1
                    else self.config.microbatch_overhead,
                    schedule=name,
                    num_model_chunks=chunks,
                    recompute=rc,
                    overlap=self.overlap,
                )
                fits = self._fits_memory(stages, result)
                combo_times[(num_stages, name, m, rc)] = result.total
                key = (0 if fits else 1, result.total, order)
                if best is None or key < best[0]:
                    best = (key, result, name, rc, fits, chunks)
                if (
                    not rc
                    and not fits
                    and self.config.recompute == "auto"
                    and num_stages > 1
                ):
                    attempts.append(True)  # retry with recomputation
        assert best is not None  # combos is non-empty
        _, result, name, rc, fits, chunks = best
        return result, name, rc, fits, combo_times, chunks

    def _whole_plan_key(self) -> str:
        """Content address of the entire planning request."""
        return plan_key(
            "hierarchical:" + graph_fingerprint(self.forward), self.cluster, self.config
        )

    # -- parallel candidate-grid fan-out ----------------------------------------------
    def _plan_grid_parallel(
        self, grid: Sequence[Tuple[int, int]]
    ) -> Dict[int, Dict[int, Tuple[PipelineCut, List[StagePlan], List[StageTimes]]]]:
        """Evaluate the candidate grid on the shared worker pool.

        One task per (stage count, model-chunk count) cell, dispatched to the
        process-wide pool of :mod:`repro.core.workerpool` — the same workers
        ``synthesis_workers`` shards beam levels across.  The pool is created
        lazily and *persists* across ``plan()`` calls, so warm re-plans no
        longer pay the per-plan ``ProcessPoolExecutor`` fork/teardown this
        method used to incur; :meth:`close` (or
        :func:`repro.core.workerpool.close_shared_pool`) tears it down
        explicitly.  Each cell carries an equal share of this process's
        worker budget, so a cell whose own config sets ``synthesis_workers``
        forks at most ``budget // planner_workers`` nested workers instead of
        oversubscribing the machine.

        A configured :class:`~repro.core.plancache.DiskPlanCache` is shared
        with the workers by directory — synthesis finished by one worker is a
        cache hit for the others and for future runs; a plain in-memory cache
        is snapshotted into every worker and the workers' fresh entries are
        merged back afterwards.  Results are collected in submission order
        (cells are independent, so completion order cannot influence the
        outcome), and ``reuse_stats`` are reconstructed by replaying every
        cell's chunk-key log against the serial reuse semantics (dedupe
        table first, then the pre-dispatch warm cache).  The logs are
        content-determined per cell, so the counters equal the serial ones
        even when workers race each other to a shared cache key.
        """
        cache = self.config.plan_cache
        cache_dir = getattr(cache, "directory", None)
        seed_entries = None
        warm_keys: Set[str] = cache.keys() if cache is not None else set()
        if cache is not None and cache_dir is None:
            seed_entries = cache.entries()
        workers = min(self.config.planner_workers, len(grid))
        # Ship the config without the live cache object (workers rebuild
        # their own view from cache_dir / seed_entries) and already serial.
        base_config = dataclasses.replace(
            self.config, plan_cache=None, planner_workers=1
        )
        child_budget = max(1, workerpool.process_budget() // workers)
        tasks = [
            (
                self.forward,
                self.cluster,
                base_config,
                cache_dir,
                seed_entries,
                num_stages,
                chunks,
                child_budget,
            )
            for num_stages, chunks in grid
        ]
        if workerpool.fork_available():
            pool = workerpool.shared_pool(workers)
            outcomes = pool.run_tasks(_plan_variant_pool_task, None, tasks)
        else:  # pragma: no cover - platforms without fork pay per-plan spawn
            with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as executor:
                futures = [
                    executor.submit(_plan_variant_pool_task, None, task) for task in tasks
                ]
                outcomes = [future.result() for future in futures]
        variants: Dict[int, Dict[int, Tuple[PipelineCut, List[StagePlan], List[StageTimes]]]] = {}
        for num_stages, chunks, built, key_log, fresh in outcomes:
            if built is not None:
                variants.setdefault(num_stages, {})[chunks] = built
            self._replay_reuse_stats(key_log, warm_keys)
            for entry in fresh:
                if cache is not None:
                    cache.put(entry)
                self._local_plans.setdefault(entry.key, entry)
        return variants

    def _replay_reuse_stats(
        self, key_log: Sequence[Optional[str]], warm_keys: Set[str]
    ) -> None:
        """Accumulate one cell's chunk keys under serial reuse semantics.

        Serial :meth:`_plan_chunk` resolves each chunk as dedupe-table hit,
        then cache hit, then fresh plan; the table and the cache fill as the
        call proceeds.  Replaying the (content-determined) key sequences in
        serial cell order against the pre-dispatch warm-key set reproduces
        those counters exactly — independent of which worker actually
        synthesized or raced a shared-cache key.
        """
        seen = self._replayed_keys
        for key in key_log:
            if key is None:
                self.reuse_stats["subplans_planned"] += 1
            elif key in seen:
                if self.config.dedupe_subplans:
                    self.reuse_stats["subplans_deduped"] += 1
                else:
                    # dedupe off: an earlier plan of this key is in the cache
                    self.reuse_stats["cache_hits"] += 1
            elif key in warm_keys:
                self.reuse_stats["cache_hits"] += 1
                seen.add(key)
            else:
                self.reuse_stats["subplans_planned"] += 1
                seen.add(key)

    # -- main entry point -----------------------------------------------------------
    def plan(self) -> HierarchicalPlan:
        """Evaluate every candidate and return the cheapest feasible plan.

        With a configured ``plan_cache`` the finished plan is stored under the
        (forward-graph fingerprint, cluster signature, config signature) key
        and a repeated request is served whole in O(lookup).  Whole plans are
        only replayed when the forward graph's node names match the cached
        request exactly (chunk plans are renamed on reuse; a whole
        hierarchical plan is not), otherwise planning falls through to the
        chunk-level cache, which is name-independent.

        With ``planner_workers > 1`` the grid cells (see
        :meth:`candidate_grid`) are planned by a process pool; the schedule
        search and selection below run in the parent over the workers'
        profiles, in the serial candidate order with the serial tie-breaks,
        so the returned plan is bit-identical to the serial path.
        """
        self._local_plans = {}
        self._fresh_entries = []
        self._chunk_key_log = []
        self._replayed_keys = set()
        self._profile_memo = {}
        self.reuse_stats = {
            "subplans_planned": 0,
            "subplans_deduped": 0,
            "cache_hits": 0,
            "cache_rejects": 0,
            "whole_plan_hit": 0,
        }
        cache = self.config.plan_cache
        whole_key = None
        forward_names = None
        if cache is not None:
            whole_key = self._whole_plan_key()
            forward_names = [node.name for node in self.forward]
            entry = cache.get(whole_key)
            if entry is not None and entry.extra.get("forward_names") == forward_names:
                # A whole plan from the cache is verified structurally (no
                # cost re-derivation, keeping warm hits O(plan size)) before
                # it is replayed; a corrupt entry is a diagnosed miss and
                # planning falls through to the fresh path below.
                from ..verify.plan import verify_plan

                try:
                    accept = verify_plan(
                        entry.plan, self.forward, check_cost=False
                    ).ok
                except Exception:  # unreadable entry == failed verification
                    accept = False
                if accept:
                    self.reuse_stats["whole_plan_hit"] = 1
                    # Shallow copy: the cached entry keeps its own stats and
                    # stays immutable from the caller's point of view.
                    return dataclasses.replace(
                        entry.plan, reuse_stats=dict(self.reuse_stats)
                    )
                self.reuse_stats["cache_rejects"] += 1
        grid = self.candidate_grid()
        prebuilt: Optional[Dict[int, Dict[int, Tuple]]] = None
        if self.config.planner_workers > 1 and len(grid) > 1:
            prebuilt = self._plan_grid_parallel(grid)
        best: Optional[HierarchicalPlan] = None
        candidate_times: Dict[int, float] = {}
        combo_times: Dict[Tuple[int, str, int, bool], float] = {}
        for num_stages in self._candidates():
            if prebuilt is not None:
                candidate = self.build_candidate(
                    num_stages, variants=prebuilt.get(num_stages, {})
                )
            else:
                candidate = self.build_candidate(num_stages)
            if candidate is None:
                continue
            candidate_times[num_stages] = candidate.estimated_time
            combo_times.update(candidate.schedule_candidate_times)
            if best is None or (
                (not candidate.fits_memory, candidate.estimated_time)
                < (not best.fits_memory, best.estimated_time)
            ):
                best = candidate
        assert best is not None  # num_stages == 1 always builds
        best.candidate_times = candidate_times
        best.schedule_candidate_times = combo_times
        best.reuse_stats = dict(self.reuse_stats)
        if cache is not None and whole_key is not None:
            cache.put(
                CachedPlan(
                    key=whole_key,
                    node_names=[],
                    plan=best,
                    extra={"forward_names": forward_names},
                )
            )
        if self.config.verify_after_plan:
            # Imported lazily: repro.verify depends on this module.
            from ..verify.base import PlanVerificationError
            from ..verify.plan import verify_plan

            report = verify_plan(best, self.forward)
            if not report.ok:
                raise PlanVerificationError(report)
        return best

    # -- worker-pool lifecycle --------------------------------------------------------
    def close(self) -> None:
        """Tear down the shared worker pool kept warm between ``plan()`` calls.

        The pool is process-wide (other planners and ``synthesis_workers``
        share it) and re-forks lazily if planning continues afterwards, so
        closing is always safe — it only trades the next plan's warm start
        for releasing the worker processes now.
        """
        workerpool.close_shared_pool()

    def __enter__(self) -> "HierarchicalPlanner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _plan_variant_task(
    forward: ComputationGraph,
    cluster: ClusterSpec,
    config: HierarchicalConfig,
    cache_dir: Optional[str],
    seed_entries: Optional[List[CachedPlan]],
    num_stages: int,
    chunks: int,
):
    """Plan one (stage count, model-chunk count) grid cell in a worker process.

    Rebuilds the planning context from picklable ingredients: a
    ``cache_dir`` opens the shared :class:`~repro.core.plancache.DiskPlanCache`
    directory, ``seed_entries`` reconstructs a snapshot of the parent's
    in-memory cache, and no cache at all mirrors a cache-less parent.  The
    worker never fans out another grid (``planner_workers=1``); its synthesis
    may still shard beam levels within the worker budget installed by
    :func:`_plan_variant_pool_task`.  Returns the built variant, the
    ordered chunk-key log (the parent replays it into ``reuse_stats``), and
    the cache entries the worker created (for the parent to merge back).
    """
    cache: Optional[InMemoryPlanCache]
    if cache_dir is not None:
        cache = DiskPlanCache(cache_dir)
    elif seed_entries is not None:
        cache = InMemoryPlanCache()
        for entry in seed_entries:
            cache.put(entry)
    else:
        cache = None
    worker_config = dataclasses.replace(config, plan_cache=cache, planner_workers=1)
    planner = HierarchicalPlanner(forward, cluster, worker_config)
    partition = planner._candidate_partition(num_stages)
    built = planner._build_variant(partition, chunks)
    return num_stages, chunks, built, list(planner._chunk_key_log), list(planner._fresh_entries)


def _plan_variant_pool_task(_payload, args):
    """Shared-pool adapter of :func:`_plan_variant_task`.

    Installs the cell's share of the parent's worker budget before planning,
    so a cell whose synthesis config sets ``synthesis_workers`` forks at most
    ``budget // planner_workers`` nested beam workers (usually 1, i.e. serial
    synthesis) instead of oversubscribing the machine.  The unused first
    parameter is the worker-pool payload slot (grid cells carry their whole
    context in ``args``).
    """
    (
        forward,
        cluster,
        config,
        cache_dir,
        seed_entries,
        num_stages,
        chunks,
        child_budget,
    ) = args
    workerpool.set_process_budget(child_budget)
    return _plan_variant_task(
        forward, cluster, config, cache_dir, seed_entries, num_stages, chunks
    )
