"""Hierarchical planning: pipeline parallelism over per-group SPMD programs.

Flat HAP synthesizes one SPMD program spanning every device, which makes the
slow inter-machine link carry the full gradient traffic on heterogeneous,
bandwidth-constrained clusters.  The hierarchical planner instead

1. partitions the cluster into contiguous machine groups
   (:meth:`~repro.cluster.spec.ClusterSpec.partition`),
2. cuts the model into pipeline stages balanced against each group's
   aggregate compute (:func:`~repro.graph.analysis.pipeline_cut`),
3. differentiates each stage in isolation
   (:func:`~repro.autodiff.build_stage_training_graph`), and
4. runs the *existing* flat :class:`~repro.core.pipeline.HAPPlanner` on every
   (stage graph, machine group) pair, so all of HAP's program synthesis and
   load balancing is reused unchanged inside each stage.

Candidates with different stage counts are scored with the GPipe schedule
simulator (:mod:`repro.simulator.schedule`) — microbatched pipelining with
bubble and inter-group activation transfers — and the cheapest wins.  One
stage is always a candidate and reproduces flat HAP exactly, so flat planning
is the degenerate case of hierarchical planning rather than a parallel code
path.  This follows HetPipe's pipelining across heterogeneous machine groups
and Hetu's hierarchical heterogeneous SPMD annotations (see PAPERS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..autodiff.backward import StageTrainingInfo, build_stage_training_graph
from ..cluster.spec import ClusterPartition, ClusterSpec, NetworkSpec
from ..graph.analysis import PipelineCut, pipeline_cut
from ..graph.graph import ComputationGraph, GraphError
from ..graph.ops import OpKind
from ..simulator.schedule import ScheduleResult, StageTimes, simulate_pipeline
from .config import PlannerConfig
from .costmodel import CostModel
from .pipeline import HAPPlan, HAPPlanner
from .program import DistributedProgram


@dataclass
class HierarchicalConfig:
    """Knobs of the hierarchical (pipeline-over-SPMD) planner.

    Attributes:
        stage_candidates: stage counts to evaluate; defaults to
            ``1..min(max_stages, num_machines)``.  1 is flat HAP.
        max_stages: cap on the default candidate range.
        num_microbatches: microbatches per iteration used by the pipeline
            schedule (GPipe-style fill/drain).
        microbatch_overhead: fixed per-microbatch launch/scheduling cost that
            does not shrink with the microbatch size.
        intra_group_network: network model inside each machine group; defaults
            to the cluster's own network.  Pass the fast rack-local network
            when the cluster's flat network is the slow inter-rack bottleneck.
        planner: configuration of the flat HAP planner run per stage.
        lr: learning rate stored on the stage graphs' ``sgd_update`` nodes.
    """

    stage_candidates: Optional[Sequence[int]] = None
    max_stages: int = 4
    num_microbatches: int = 8
    microbatch_overhead: float = 50e-6
    intra_group_network: Optional[NetworkSpec] = None
    planner: PlannerConfig = field(default_factory=PlannerConfig)
    lr: float = 0.01


@dataclass
class StagePlan:
    """One pipeline stage: a flat HAP plan on one machine group.

    Attributes:
        index: stage position in the pipeline.
        subcluster: the machine group this stage runs on.
        plan: the flat HAP plan for the stage's training graph.
        info: stage-graph book-keeping (boundary refs, gradient seeds,
            per-parameter updates) used by the hierarchical runtime.
        send_bytes: full-mini-batch activation bytes sent to later stages.
    """

    index: int
    subcluster: ClusterSpec
    plan: HAPPlan
    info: StageTrainingInfo
    send_bytes: int

    @property
    def program(self) -> DistributedProgram:
        return self.plan.program

    @property
    def ratios(self) -> List[float]:
        return self.plan.flat_ratios

    @property
    def forward_nodes(self) -> Set[str]:
        return set(self.info.forward_nodes)


@dataclass
class HierarchicalPlan:
    """A pipeline of per-group SPMD plans (flat HAP when ``num_stages == 1``).

    Attributes:
        cluster: the full target cluster.
        partition: the machine-group partition the stages run on.
        stages: per-stage plans, in pipeline order.
        cut: the layer cut that produced the stage graphs.
        num_microbatches: microbatch count of the schedule.
        estimated_time: planner estimate of the pipelined iteration time.
        schedule: the schedule estimate behind ``estimated_time``.
        candidate_times: estimated time of every stage count evaluated.
        batch_size: global mini-batch size (for runtime ratio snapping).
    """

    cluster: ClusterSpec
    partition: ClusterPartition
    stages: List[StagePlan]
    cut: PipelineCut
    num_microbatches: int
    estimated_time: float
    schedule: ScheduleResult
    candidate_times: Dict[int, float] = field(default_factory=dict)
    batch_size: Optional[int] = None
    microbatch_overhead: float = 0.0

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def is_flat(self) -> bool:
        """True when planning degenerated to a single flat SPMD program."""
        return self.num_stages == 1

    @property
    def estimated_iteration_time(self) -> float:
        return self.estimated_time

    @property
    def num_communications(self) -> int:
        return sum(s.program.num_communications for s in self.stages)

    def communication_kinds(self) -> Dict[str, int]:
        hist: Dict[str, int] = {}
        for stage in self.stages:
            for kind, count in stage.program.communication_kinds().items():
                hist[kind] = hist.get(kind, 0) + count
        return hist

    def describe(self) -> str:
        """Readable plan summary (stages, groups, schedule estimate)."""
        lines = [
            f"Hierarchical plan on {self.cluster.name!r}: {self.num_stages} stage(s), "
            f"{self.num_microbatches} microbatches, "
            f"estimated {self.estimated_time * 1e3:.2f} ms/iteration "
            f"(bubble {self.schedule.bubble_fraction * 100:.0f}%)"
        ]
        for stage in self.stages:
            group = stage.subcluster
            lines.append(
                f"  stage {stage.index}: {len(stage.info.graph)} nodes on "
                f"{group.name} ({group.num_gpus} GPUs), "
                f"est {stage.plan.estimated_time.total * 1e3:.2f} ms flat, "
                f"sends {stage.send_bytes / 1e6:.2f} MB downstream"
            )
        if self.candidate_times:
            ranked = ", ".join(
                f"{s}->{t * 1e3:.1f}ms" for s, t in sorted(self.candidate_times.items())
            )
            lines.append(f"  candidates: {ranked}")
        return "\n".join(lines)


def stage_forward_graph(
    forward: ComputationGraph, cut: PipelineCut, stage: int
) -> ComputationGraph:
    """Build the forward subgraph of one pipeline stage.

    Incoming activations become placeholder nodes carrying the *original*
    node names, so downstream bindings and activation handoff need no
    renaming; the stage's own nodes are copied verbatim in topological order.
    """
    graph = ComputationGraph(f"{forward.name}_p{stage}")
    for ref in cut.incoming_refs(stage):
        spec = forward[ref].spec
        graph.add_node(ref, "placeholder", (), {"shape": spec.shape, "dtype": spec.dtype})
    for name in cut.stages[stage]:
        node = forward[name]
        graph.add_node(name, node.op, node.inputs, dict(node.attrs))
    if forward.loss is not None and forward.loss in graph:
        graph.mark_loss(forward.loss)
    return graph


class HierarchicalPlanner:
    """Searches over pipeline-stage counts, planning each stage with flat HAP."""

    def __init__(
        self,
        forward: ComputationGraph,
        cluster: ClusterSpec,
        config: Optional[HierarchicalConfig] = None,
    ) -> None:
        if any(node.kind is OpKind.OPTIMIZER for node in forward):
            raise GraphError(
                "HierarchicalPlanner needs the forward graph (with a marked loss): "
                "stages are differentiated individually"
            )
        if forward.loss is None:
            raise GraphError("HierarchicalPlanner needs a forward graph with a marked loss")
        self.forward = forward
        self.cluster = cluster
        self.config = config or HierarchicalConfig()
        self.batch_size = self._batch_size()

    def _batch_size(self) -> Optional[int]:
        leading = {
            p.spec.shape[0] for p in self.forward.placeholders() if p.spec.rank > 0
        }
        return leading.pop() if len(leading) == 1 else None

    def _candidates(self) -> List[int]:
        if self.config.stage_candidates is not None:
            candidates = sorted(set(self.config.stage_candidates))
        else:
            upper = min(self.config.max_stages, len(self.cluster.machines))
            candidates = list(range(1, upper + 1))
        if 1 not in candidates:
            candidates.insert(0, 1)  # flat HAP is always a candidate
        return [s for s in candidates if 1 <= s <= len(self.cluster.machines)]

    # -- per-candidate construction -------------------------------------------------
    def build_candidate(self, num_stages: int) -> Optional[HierarchicalPlan]:
        # The intra-group network only applies to proper partitions: a single
        # group is the whole cluster and still spans the slow flat network.
        intra = self.config.intra_group_network if num_stages > 1 else None
        partition = self.cluster.partition(num_stages, intra_group_network=intra)
        cut = pipeline_cut(self.forward, partition.compute_ratios())
        if cut.num_stages != partition.num_groups:
            return None  # the graph has fewer splittable layer blocks
        stages: List[StagePlan] = []
        for idx in range(cut.num_stages):
            stage_fwd = stage_forward_graph(self.forward, cut, idx)
            info = build_stage_training_graph(
                stage_fwd,
                boundary_inputs=tuple(cut.incoming_refs(idx)),
                boundary_outputs=cut.cut_refs[idx],
                lr=self.config.lr,
            )
            plan = HAPPlanner(info.graph, partition.groups[idx], self.config.planner).plan()
            send_bytes = sum(self.forward[ref].spec.size_bytes for ref in cut.cut_refs[idx])
            stages.append(
                StagePlan(
                    index=idx,
                    subcluster=partition.groups[idx],
                    plan=plan,
                    info=info,
                    send_bytes=send_bytes,
                )
            )
        schedule = self._estimate_schedule(partition, stages)
        return HierarchicalPlan(
            cluster=self.cluster,
            partition=partition,
            stages=stages,
            cut=cut,
            num_microbatches=schedule.num_microbatches,
            estimated_time=schedule.total,
            schedule=schedule,
            batch_size=self.batch_size,
            microbatch_overhead=0.0 if cut.num_stages == 1 else self.config.microbatch_overhead,
        )

    def _estimate_schedule(
        self, partition: ClusterPartition, stages: Sequence[StagePlan]
    ) -> ScheduleResult:
        """Pipelined iteration-time estimate from the stage cost models."""
        times: List[StageTimes] = []
        for stage in stages:
            cost_model = CostModel(stage.plan.program.graph, stage.subcluster)
            buckets = cost_model.phase_profile(
                stage.plan.program, stage.ratios, stage.forward_nodes
            )
            times.append(
                StageTimes(
                    forward=buckets["forward"],
                    backward=buckets["backward"],
                    sync=buckets["sync"],
                    send_bytes=float(stage.send_bytes),
                )
            )
        # A single stage is flat SPMD: the whole batch runs at once, so no
        # microbatching (and no per-microbatch overhead) applies.
        flat = len(stages) == 1
        return simulate_pipeline(
            times,
            num_microbatches=1 if flat else self.config.num_microbatches,
            inter_group_bandwidth=partition.inter_group_network.bandwidth,
            inter_group_latency=partition.inter_group_network.latency,
            microbatch_overhead=0.0 if flat else self.config.microbatch_overhead,
        )

    # -- main entry point -----------------------------------------------------------
    def plan(self) -> HierarchicalPlan:
        """Evaluate every stage-count candidate and return the cheapest plan."""
        best: Optional[HierarchicalPlan] = None
        candidate_times: Dict[int, float] = {}
        for num_stages in self._candidates():
            candidate = self.build_candidate(num_stages)
            if candidate is None:
                continue
            candidate_times[num_stages] = candidate.estimated_time
            if best is None or candidate.estimated_time < best.estimated_time:
                best = candidate
        assert best is not None  # num_stages == 1 always builds
        best.candidate_times = candidate_times
        return best
