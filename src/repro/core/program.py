"""Distributed-program container produced by the synthesizer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..graph.graph import ComputationGraph
from ..graph.ops import OpKind
from .instructions import CommInstruction, CompInstruction, Instruction
from .properties import Property

#: Pipeline phases of a program's instructions (see :meth:`instruction_phases`).
PHASE_FORWARD = "forward"
PHASE_BACKWARD = "backward"
PHASE_SYNC = "sync"


@dataclass
class Stage:
    """One synchronisation stage (Sec. 3.2): a collective followed by compute.

    The first stage of a program has no leading collective.  ``comps`` may
    also contain local ``slice`` pseudo-collectives, which cost (almost)
    nothing and do not synchronise devices.
    """

    comm: Optional[CommInstruction]
    comps: List[Instruction] = field(default_factory=list)

    @property
    def instructions(self) -> List[Instruction]:
        out: List[Instruction] = []
        if self.comm is not None:
            out.append(self.comm)
        out.extend(self.comps)
        return out

    def dependent_mask(self) -> List[bool]:
        """Which ``comps`` (transitively) consume this stage's collective output.

        The dual-stream timing model overlaps the stage's collective with the
        compute that follows it *when that compute does not need the
        collective's result* — e.g. a gradient all-reduce (sync phase, its
        consumer is the optimizer update) runs on the communication stream
        while the backward compute of earlier layers proceeds.  The mask is
        exact reference-level dependency tracking within the stage: a comp is
        dependent when any of its inputs is the collective's output or the
        output of an already-dependent comp.  Without a collective every comp
        is independent.
        """
        if self.comm is None:
            return [False] * len(self.comps)
        # Conservative reference-level taint: a comp touching the collective's
        # tensor in *any* distribution state is treated as dependent.
        mask: List[bool] = []
        tainted = {self.comm.output.ref}
        for comp in self.comps:
            inputs = (
                (comp.input,) if isinstance(comp, CommInstruction) else comp.inputs
            )
            depends = any(p.ref in tainted for p in inputs)
            mask.append(depends)
            if depends:
                tainted.add(comp.output.ref)
        return mask


@dataclass
class DistributedProgram:
    """A complete distributed program ``Q``.

    Attributes:
        graph: the single-device training graph this program emulates.
        instructions: the instruction sequence, in execution order.
        properties: the final property set ``P(Q)``.
        num_devices: number of virtual devices the program runs on.
    """

    graph: ComputationGraph
    instructions: List[Instruction]
    properties: FrozenSet[Property]
    num_devices: int

    # -- structure -------------------------------------------------------------
    def stages(self) -> List[Stage]:
        """Split the instruction sequence into synchronisation stages."""
        stages: List[Stage] = [Stage(comm=None)]
        for instr in self.instructions:
            if isinstance(instr, CommInstruction) and instr.synchronises:
                stages.append(Stage(comm=instr))
            else:
                stages[-1].comps.append(instr)
        return stages

    @property
    def num_communications(self) -> int:
        """Number of collective instructions in the program."""
        return sum(1 for i in self.instructions if i.is_communication)

    @property
    def num_computations(self) -> int:
        """Number of computation instructions in the program."""
        return len(self.instructions) - self.num_communications

    def communication_kinds(self) -> Dict[str, int]:
        """Histogram of collective kinds used by the program."""
        hist: Dict[str, int] = {}
        for instr in self.instructions:
            if isinstance(instr, CommInstruction):
                hist[instr.kind.value] = hist.get(instr.kind.value, 0) + 1
        return hist

    def instruction_phases(self, forward_nodes) -> List[str]:
        """Pipeline phase of every instruction, in instruction order.

        Used by the hierarchical planner and the pipeline-schedule simulator
        to split a stage program's time into the part that repeats per
        microbatch (``forward`` / ``backward``) and the part paid once per
        iteration (``sync``):

        * optimizer updates and parameter-source instructions are ``sync``;
        * collectives over parameters (sharded-parameter gathers) and over
          gradients consumed by an optimizer node (gradient all-reduce) are
          ``sync`` — parameters only change once per iteration and gradients
          are accumulated across microbatches;
        * everything over a node in ``forward_nodes`` is ``forward``;
        * the rest (activation gradients) is ``backward``.

        Args:
            forward_nodes: names of the graph's forward-pass nodes.
        """
        forward = set(forward_nodes)
        consumers = self.graph.consumers()
        phases: List[str] = []
        for instr in self.instructions:
            if isinstance(instr, CommInstruction):
                ref = instr.input.ref
                node = self.graph[ref]
                if node.op == "parameter":
                    phases.append(PHASE_SYNC)
                elif any(
                    self.graph[c].kind is OpKind.OPTIMIZER
                    for c in consumers.get(ref, [])
                ):
                    phases.append(PHASE_SYNC)
                elif ref in forward:
                    phases.append(PHASE_FORWARD)
                else:
                    phases.append(PHASE_BACKWARD)
            else:
                node = self.graph[instr.node]
                if node.kind is OpKind.OPTIMIZER or node.op == "parameter":
                    phases.append(PHASE_SYNC)
                elif instr.node in forward:
                    phases.append(PHASE_FORWARD)
                else:
                    phases.append(PHASE_BACKWARD)
        return phases

    def sharding_of(self, ref: str) -> List[Property]:
        """All properties established for a reference tensor."""
        return sorted((p for p in self.properties if p.ref == ref), key=str)

    def parameter_shardings(self) -> Dict[str, Optional[int]]:
        """Sharding dimension chosen for each parameter (None = replicated)."""
        out: Dict[str, Optional[int]] = {}
        for instr in self.instructions:
            if isinstance(instr, CompInstruction) and instr.op == "parameter":
                out[instr.node] = instr.output.state.dim if instr.output.state.is_sharded else None
        return out

    def describe(self) -> str:
        """Readable listing of the program, stage by stage."""
        lines = [
            f"DistributedProgram for {self.graph.name!r}: "
            f"{self.num_computations} compute + {self.num_communications} collective instructions"
        ]
        for idx, stage in enumerate(self.stages()):
            lines.append(f"-- stage {idx} --")
            for instr in stage.instructions:
                lines.append(f"  {instr.describe()}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.instructions)
