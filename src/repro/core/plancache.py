"""Content-addressed plan cache: never synthesize the same problem twice.

Planning a (training graph, machine group) pair is a pure function of three
ingredients — the graph's *content* (ops, shapes, attributes, wiring), the
group's hardware model, and the planner configuration.  Node names are not an
ingredient: flat HAP plans for two isomorphic chunk graphs differ only by a
reference renaming.  This module turns that observation into a cache:

* :func:`plan_key` hashes the three ingredients into a stable content address
  (graph via :func:`repro.graph.canonical.graph_fingerprint`, cluster via
  :func:`cluster_signature`, configuration via :func:`config_signature`);
* :class:`CachedPlan` stores a :class:`~repro.core.pipeline.HAPPlan` together
  with the canonical node order it was keyed under, so a hit can be
  re-expressed in the requesting graph's own node names
  (:func:`remap_plan` + :func:`repro.graph.canonical.canonical_rename_map`);
* :class:`InMemoryPlanCache` and :class:`DiskPlanCache` provide the two
  obvious backends; the disk backend writes atomically and keeps a
  write-through in-memory layer, which makes it safe to share one directory
  between repeated planner invocations (the first brick of
  planner-as-a-service).

**Concurrency guarantee.**  One :class:`DiskPlanCache` directory may be
shared by any number of *processes* reading and writing concurrently — this
is the topology the parallel planner (``HierarchicalConfig.planner_workers``)
relies on.  Every ``put`` pickles into a process-private temporary file in
the cache directory and publishes it with :func:`os.replace`, which is atomic
on POSIX and on NTFS: a concurrent ``get`` observes either the complete old
entry, the complete new entry, or no file — never a torn pickle.  Racing
writers of the *same* key are last-writer-wins, which is harmless because
keys are content addresses: every writer of a key is storing an equivalent
plan for the same planning problem.  A corrupt or unreadable entry (e.g. a
file truncated by the surrounding filesystem, not by this module) is treated
as a miss and re-written on the next ``put``.  The in-memory write-through
layer is per-process and never shared, so no locks are needed anywhere;
``tests/test_parallel_planning.py`` stress-tests the same-key multi-writer
race.  :class:`InMemoryPlanCache` itself is process-local and makes no
cross-process claims.

Invalidation is purely structural: any change to the graph content, device
specs, network model, or any configuration field changes the key, and
:data:`CACHE_VERSION` is baked into every key so cache entries from older
layouts of the planner can never be replayed.  Two configuration fields are
deliberately *excluded* from keys: ``plan_cache`` (the cache never keys on
itself) and ``planner_workers`` (how many processes evaluated the candidate
grid cannot influence the resulting plan — the parallel planner is
bit-identical to serial — so serial and parallel runs must share entries).
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

from ..cluster.spec import ClusterSpec
from ..graph.canonical import canonical_rename_map
from ..graph.graph import ComputationGraph
from .instructions import CommInstruction, CompInstruction, Instruction
from .pipeline import HAPPlan
from .program import DistributedProgram
from .properties import Property

#: Bump when the plan layout or the key ingredients change: old entries are
#: then unreachable (their keys embed the old version) instead of replayed.
#: v2: ``ChunkPlan`` gained ``content_key`` and configs gained the
#: vectorized-cost flags.
CACHE_VERSION = 2

#: Configuration fields excluded from cache keys: the cache itself, the
#: parallel-planner worker count (result-identical by contract, so serial and
#: parallel runs must address the same entries), and the static-verifier flag
#: (verification never changes the plan, so verified and unverified runs must
#: share entries too).
_NON_KEY_FIELDS = frozenset(
    {"plan_cache", "planner_workers", "synthesis_workers", "verify_after_plan"}
)


# -- key construction ---------------------------------------------------------------
def _canon(value) -> object:
    """Deterministic, content-only encoding of configuration-ish values."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = []
        for f in dataclasses.fields(value):
            if f.name in _NON_KEY_FIELDS:
                continue
            fields.append((f.name, _canon(getattr(value, f.name))))
        return (type(value).__name__, tuple(fields))
    if isinstance(value, Enum):
        return (type(value).__name__, value.value)
    if isinstance(value, dict):
        return tuple(sorted((_canon(k), _canon(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_canon(v) for v in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot build a cache signature from {type(value).__name__}")


def cluster_signature(cluster: ClusterSpec) -> Tuple:
    """Everything about a cluster that influences planning, name-free.

    Two clusters with the same signature produce identical cost models and
    identical memory checks, so their plans are interchangeable; the cluster
    *name* is deliberately excluded.
    """
    devices = tuple(
        (
            d.machine.gpu.peak_tflops,
            d.machine.gpu.memory_bytes,
            d.machine.gpu.sustained_fraction,
            d.num_gpus,
            d.machine.intra_bandwidth,
            d.machine.intra_latency,
        )
        for d in cluster.virtual_devices
    )
    network = (
        cluster.network.bandwidth,
        cluster.network.latency,
        cluster.network.kernel_launch_overhead,
    )
    return (
        devices,
        network,
        cluster.group_by_machine,
        cluster.memory_reserve_fraction,
        cluster.comm_overlap_efficiency,
    )


def config_signature(config) -> Tuple:
    """Content signature of a (nested) configuration dataclass.

    Recurses through dataclass fields so *every* knob — synthesis flags,
    load-balancer segments, schedule lists, intra-group networks — lands in
    the key; the ``plan_cache`` field itself is excluded.
    """
    return _canon(config)  # type: ignore[return-value]


def plan_key(fingerprint: str, cluster: ClusterSpec, config) -> str:
    """Stable content address of one planning problem."""
    payload = repr((CACHE_VERSION, fingerprint, cluster_signature(cluster), _canon(config)))
    return hashlib.sha256(payload.encode()).hexdigest()


# -- plan renaming -------------------------------------------------------------------
def _rename_property(prop: Property, rename: Dict[str, str]) -> Property:
    return Property(rename[prop.ref], prop.state)


def _rename_instruction(instr: Instruction, rename: Dict[str, str]) -> Instruction:
    if isinstance(instr, CompInstruction):
        return CompInstruction(
            node=rename[instr.node],
            op=instr.op,
            inputs=tuple(_rename_property(p, rename) for p in instr.inputs),
            output=_rename_property(instr.output, rename),
            flops_sharded=instr.flops_sharded,
        )
    return CommInstruction(
        kind=instr.kind,
        input=_rename_property(instr.input, rename),
        output=_rename_property(instr.output, rename),
        dim=instr.dim,
        dim2=instr.dim2,
    )


def remap_program(
    program: DistributedProgram, rename: Dict[str, str], target: ComputationGraph
) -> DistributedProgram:
    """Re-express a program over an isomorphic graph's node names."""
    return DistributedProgram(
        graph=target,
        instructions=[_rename_instruction(i, rename) for i in program.instructions],
        properties=frozenset(_rename_property(p, rename) for p in program.properties),
        num_devices=program.num_devices,
    )


def remap_plan(plan: HAPPlan, source_names: List[str], target: ComputationGraph) -> HAPPlan:
    """Re-express a cached :class:`HAPPlan` over ``target``'s node names.

    ``source_names`` is the canonical node order the plan was stored under;
    matching it positionally against ``target``'s canonical order yields the
    rename map (the graphs are isomorphic by construction — they share a
    fingerprint).  Costs, ratios and round history carry over untouched:
    the cost model only sees shapes and states, never names.
    """
    rename = canonical_rename_map(source_names, target)
    if all(old == new for old, new in rename.items()):
        return plan
    program = remap_program(plan.program, rename, target)
    segment_of = (
        {rename[name]: seg for name, seg in plan.segment_of.items()}
        if plan.segment_of is not None
        else None
    )
    return HAPPlan(
        program=program,
        ratios=[list(r) for r in plan.ratios],
        estimated_time=plan.estimated_time,
        rounds=list(plan.rounds),
        segment_of=segment_of,
        synthesis=replace(plan.synthesis, program=program),
    )


# -- cache backends ------------------------------------------------------------------
@dataclass
class CachedPlan:
    """One cache entry: a plan plus the canonical node order it is keyed under.

    ``node_names`` lets a hit be renamed onto the requesting graph; ``extra``
    carries small planner-specific payloads (e.g. the hierarchical planner's
    whole-plan entries store the forward graph's node names there for the
    exact-name guard).
    """

    key: str
    node_names: List[str]
    plan: object
    extra: Dict[str, object] = field(default_factory=dict)


class InMemoryPlanCache:
    """Process-local plan cache (no persistence)."""

    def __init__(self) -> None:
        self._entries: Dict[str, CachedPlan] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> Optional[CachedPlan]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, entry: CachedPlan) -> None:
        self._entries[entry.key] = entry

    def entries(self) -> List[CachedPlan]:
        """Snapshot of every entry (used to seed parallel-planner workers)."""
        return list(self._entries.values())

    def keys(self) -> Set[str]:
        """Keys currently resolvable by :meth:`get` (the warm set)."""
        return set(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def clear(self) -> None:
        self._entries.clear()


class DiskPlanCache(InMemoryPlanCache):
    """Persistent plan cache: one pickle per key under ``directory``.

    Writes go through a temporary file and :func:`os.replace`, so a reader
    never observes a torn entry and concurrent writers of the same key are
    last-writer-wins.  Reads are write-through cached in memory.  A corrupt
    or unreadable entry is treated as a miss (and re-written on ``put``).
    Safe to share one directory between concurrent processes — see the
    module docstring for the exact guarantee.
    """

    def __init__(self, directory: str) -> None:
        super().__init__()
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.plan")

    def get(self, key: str) -> Optional[CachedPlan]:
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            return entry
        try:
            with open(self._path(key), "rb") as fh:
                entry = pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            self.misses += 1
            return None
        if not isinstance(entry, CachedPlan) or entry.key != key:
            self.misses += 1
            return None
        self._entries[key] = entry
        self.hits += 1
        return entry

    def keys(self) -> Set[str]:
        """In-memory keys plus every published entry file in the directory."""
        on_disk = {
            name[: -len(".plan")]
            for name in os.listdir(self.directory)
            if name.endswith(".plan")
        }
        return set(self._entries) | on_disk

    def put(self, entry: CachedPlan) -> None:
        super().put(entry)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(entry, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(entry.key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
