"""Linear cost model for distributed programs (Sec. 3.2 of the paper).

A program is split into synchronisation stages; stage ``i`` costs
``comm_i(B) + max_j comp_ij(B_j)`` when collectives and compute serialize.
Per-device computation time is linear in the device's sharding ratio;
communication time is linear in the *largest* ratio (padded collectives are
bottlenecked by the largest shard).  The same model serves three purposes:

* scoring candidate programs during A* synthesis,
* evaluating ``t(Q, B)`` in the outer iterative optimisation, and
* producing the linear coefficients consumed by the LP load balancer.

Real stacks do not serialize: collectives run on a dedicated communication
stream and hide behind the compute that does not consume their result
(:class:`~repro.cluster.spec.CommOverlapModel`).  The dual-stream stage time
is

    ``max_j [ comp_j + comm - e * min(comm, indep_j) ]``

where ``indep_j`` is device ``j``'s compute in the stage that does *not*
(transitively) depend on the stage's collective output
(:meth:`~repro.core.program.Stage.dependent_mask`) and ``e`` is the overlap
efficiency.  ``e = 0`` reduces to the serialized sum bit-for-bit.  The model
is still piecewise linear in the ratios, so the LP load balancer optimises
the same overlapped objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..cluster.spec import ClusterSpec, CommOverlapModel
from ..collectives.cost import CollectiveCostModel, CollectiveKind
from ..graph.graph import ComputationGraph
from .instructions import CommInstruction, CompInstruction, Instruction
from .program import DistributedProgram, Stage


@dataclass
class StageCoefficients:
    """Linear description of one stage, used by the LP load balancer.

    Serialized stage time ``= comm_const + comm_slope * max_j(B_j)
    + max_j (comp_slope[j] * B_j + comp_const[j])``; the dual-stream time
    subtracts the hidden fraction of the communication (see :meth:`time`).

    Attributes:
        segment: index of the model segment this stage belongs to.
        comm_const: communication time independent of the sharding ratios.
        comm_slope: communication time per unit of the largest ratio.
        comp_slope: per-device computation seconds per unit sharding ratio.
        comp_const: per-device computation seconds independent of the ratio.
        indep_slope: per-device seconds-per-ratio of the compute that does
            not depend on the stage's collective (the overlap window).
        indep_const: ratio-independent part of the overlap window.
    """

    segment: int
    comm_const: float
    comm_slope: float
    comp_slope: List[float]
    comp_const: List[float]
    indep_slope: List[float] = field(default_factory=list)
    indep_const: List[float] = field(default_factory=list)

    def comm_time(self, ratios: Sequence[float]) -> float:
        return self.comm_const + self.comm_slope * max(ratios)

    def comp_time(self, ratios: Sequence[float]) -> float:
        return max(
            s * r + c for s, r, c in zip(self.comp_slope, ratios, self.comp_const)
        )

    def exposed_comm(
        self, ratios: Sequence[float], overlap: float, comm: float, comp: float
    ) -> float:
        """Exposed collective seconds given precomputed ``comm``/``comp``.

        With ``overlap == 0`` the whole collective serializes; otherwise the
        stage wall is ``max_j(comp_j + comm - overlap * min(comm, indep_j))``
        and the exposure is whatever it adds on top of the compute wall.
        """
        if overlap == 0.0:
            return comm  # serialized: bit-for-bit the pre-overlap model
        indep_slope = self.indep_slope or [0.0] * len(self.comp_slope)
        indep_const = self.indep_const or [0.0] * len(self.comp_const)
        stage = max(
            s * r + c + comm - overlap * min(comm, max(i_s * r + i_c, 0.0))
            for s, r, c, i_s, i_c in zip(
                self.comp_slope, ratios, self.comp_const, indep_slope, indep_const
            )
        )
        return stage - comp

    def time(self, ratios: Sequence[float], overlap: float = 0.0) -> float:
        """Stage time for concrete sharding ratios and overlap efficiency."""
        comm = self.comm_time(ratios)
        comp = self.comp_time(ratios)
        return comp + self.exposed_comm(ratios, overlap, comm, comp)


class StageCoefficientArrays:
    """A program's :class:`StageCoefficients` stacked into numpy arrays.

    Prices ``K`` ratio assignments per call instead of one — the batched
    evaluation path behind ``enable_vectorized_cost``.  Bit-identical to the
    scalar path by construction: every per-device quantity is computed by the
    same elementwise operations in the same order (``slope * ratio + const``,
    then the max/min/subtract chain of :meth:`StageCoefficients.exposed_comm`),
    and per-stage totals are accumulated stage by stage with ``+=`` — never
    :func:`numpy.sum`, whose pairwise reduction would round differently.

    Attributes:
        num_stages: number of synchronisation stages ``S``.
        num_devices: number of virtual devices ``m``.
        segments: per-stage model-segment index, length ``S``.
        comm_const / comm_slope: shape ``(S,)`` collective-time lines.
        comp_slope / comp_const: shape ``(S, m)`` per-device compute lines.
        indep_slope / indep_const: shape ``(S, m)`` overlap-window lines.
    """

    def __init__(self, coeffs: Sequence[StageCoefficients], num_devices: int) -> None:
        m = num_devices
        self.num_stages = len(coeffs)
        self.num_devices = m
        self.segments: List[int] = [c.segment for c in coeffs]
        self.comm_const = np.array([c.comm_const for c in coeffs], dtype=float)
        self.comm_slope = np.array([c.comm_slope for c in coeffs], dtype=float)
        zeros = [0.0] * m
        self.comp_slope = np.array([c.comp_slope for c in coeffs], dtype=float).reshape(-1, m)
        self.comp_const = np.array([c.comp_const for c in coeffs], dtype=float).reshape(-1, m)
        self.indep_slope = np.array(
            [list(c.indep_slope) or zeros for c in coeffs], dtype=float
        ).reshape(-1, m)
        self.indep_const = np.array(
            [list(c.indep_const) or zeros for c in coeffs], dtype=float
        ).reshape(-1, m)

    @property
    def num_segments(self) -> int:
        return max(self.segments, default=0) + 1

    def breakdowns(self, seg_ratios: np.ndarray, overlap: float) -> List[CostBreakdown]:
        """Price ``K`` ratio assignments; one :class:`CostBreakdown` each.

        Args:
            seg_ratios: array of shape ``(K, G, m)`` — candidate ``k`` assigns
                ``seg_ratios[k, g]`` to stages of segment ``g`` (``G`` must
                cover every index in :attr:`segments`).
            overlap: communication/computation overlap efficiency.
        """
        totals = self._accumulate(seg_ratios, overlap, want_detail=True)
        total_comm, total_comp, total_exposed, stage_times = totals
        out: List[CostBreakdown] = []
        for k in range(seg_ratios.shape[0]):
            out.append(
                CostBreakdown(
                    total=float(total_comp[k] + total_exposed[k]),
                    communication=float(total_comm[k]),
                    computation=float(total_comp[k]),
                    stage_times=[float(t[k]) for t in stage_times],
                    exposed_communication=float(total_exposed[k]),
                    hidden_communication=float(total_comm[k] - total_exposed[k]),
                )
            )
        return out

    def times(self, ratios: np.ndarray, overlap: float) -> np.ndarray:
        """Total estimated seconds for ``K`` single-segment ratio vectors.

        ``ratios`` has shape ``(K, m)``; every stage is priced with its row
        (per-segment assignments go through :meth:`breakdowns`).  Returns a
        ``(K,)`` array equal, element for element, to ``K`` scalar
        :meth:`CostModel.evaluate` calls.
        """
        ratios = np.asarray(ratios, dtype=float)
        total_comm, total_comp, total_exposed, _ = self._accumulate(
            ratios[:, None, :], overlap, want_detail=False
        )
        return total_comp + total_exposed

    def _accumulate(
        self, seg_ratios: np.ndarray, overlap: float, want_detail: bool
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[np.ndarray]]:
        seg_ratios = np.asarray(seg_ratios, dtype=float)
        k = seg_ratios.shape[0]
        total_comm = np.zeros(k)
        total_comp = np.zeros(k)
        total_exposed = np.zeros(k)
        stage_times: List[np.ndarray] = []
        for i in range(self.num_stages):
            r = seg_ratios[:, self.segments[i], :]  # (K, m)
            comm = self.comm_const[i] + self.comm_slope[i] * r.max(axis=1)
            comp_dev = self.comp_slope[i] * r + self.comp_const[i]
            comp = comp_dev.max(axis=1)
            if overlap == 0.0:
                exposed = comm
            else:
                indep = np.maximum(self.indep_slope[i] * r + self.indep_const[i], 0.0)
                wall = (
                    comp_dev + comm[:, None] - overlap * np.minimum(comm[:, None], indep)
                ).max(axis=1)
                exposed = wall - comp
            total_comm += comm
            total_comp += comp
            total_exposed += exposed
            if want_detail:
                stage_times.append(comp + exposed)
        return total_comm, total_comp, total_exposed, stage_times


@dataclass
class CostBreakdown:
    """Estimated per-iteration time of a program, with per-stage detail.

    ``communication`` is the raw collective seconds;
    ``exposed_communication`` is the part left on the critical path after
    overlapping with independent compute (equal to ``communication`` when
    the overlap efficiency is 0), and ``total = computation +
    exposed_communication``.
    """

    total: float
    communication: float
    computation: float
    stage_times: List[float] = field(default_factory=list)
    exposed_communication: float = 0.0
    hidden_communication: float = 0.0

    def __float__(self) -> float:  # pragma: no cover - convenience
        return self.total


class CostModel:
    """Estimates ``t(Q, B)`` for distributed programs on a cluster.

    Args:
        graph: the single-device training graph being distributed.
        cluster: the target cluster.
        memoize: cache per-(instruction, ratios-signature) evaluations of
            :meth:`comp_times` and :meth:`comm_time`.  During synthesis the
            same rule is applied to thousands of partial programs under the
            same sharding ratios, so the hit rate is very high; the cached
            values are exactly what the uncached path computes.
        overlap: communication/computation overlap efficiency used by
            :meth:`evaluate` and :meth:`phase_profile`; defaults to the
            cluster's ``comm_overlap_efficiency``.  Pass 0.0 for the fully
            serialized (blocking) model.
    """

    def __init__(
        self,
        graph: ComputationGraph,
        cluster: ClusterSpec,
        memoize: bool = True,
        overlap: Optional[float] = None,
    ) -> None:
        self.graph = graph
        self.cluster = cluster
        self.overlap_model = (
            CommOverlapModel.from_cluster(cluster)
            if overlap is None
            else CommOverlapModel(efficiency=overlap)
        )
        self.overlap = self.overlap_model.efficiency
        self.devices = cluster.virtual_devices
        self.num_devices = cluster.num_devices
        self.collectives = CollectiveCostModel(cluster)
        self.memoize = memoize
        self._flops_cache: Dict[str, float] = {}
        self._bytes_cache: Dict[str, int] = {}
        self._device_flops = cluster.device_flops()
        self._comp_memo: Dict[Tuple[CompInstruction, Tuple[float, ...]], Tuple[float, ...]] = {}
        self._comm_memo: Dict[Tuple[CommInstruction, Tuple[float, ...]], float] = {}
        # Per-(program, segmentation) coefficient caches.  Keys are object
        # ids; the values keep strong references to the keyed objects so an
        # id can never be recycled while its entry is alive.  Programs are
        # immutable once synthesized, so the cached lists stay valid.
        self._coeff_memo: Dict[
            Tuple[int, int], Tuple[object, object, List[StageCoefficients]]
        ] = {}
        self._array_memo: Dict[
            Tuple[int, int], Tuple[object, object, StageCoefficientArrays]
        ] = {}

    # -- per-node cached quantities ------------------------------------------
    def node_flops(self, name: str) -> float:
        if name not in self._flops_cache:
            self._flops_cache[name] = self.graph.node_flops(name)
        return self._flops_cache[name]

    def ref_bytes(self, name: str) -> int:
        if name not in self._bytes_cache:
            self._bytes_cache[name] = self.graph[name].spec.size_bytes
        return self._bytes_cache[name]

    # -- per-instruction costs --------------------------------------------------
    def comp_times(self, instr: CompInstruction, ratios: Sequence[float]) -> Sequence[float]:
        """Per-device execution time of one computation instruction."""
        if self.memoize:
            key = (instr, tuple(ratios))
            cached = self._comp_memo.get(key)
            if cached is None:
                cached = self._comp_memo[key] = tuple(self._comp_times(instr, ratios))
            return cached
        return self._comp_times(instr, ratios)

    def _comp_times(self, instr: CompInstruction, ratios: Sequence[float]) -> List[float]:
        flops = self.node_flops(instr.node)
        times: List[float] = []
        for j in range(len(self.devices)):
            share = ratios[j] if instr.flops_sharded else 1.0
            t = flops * share / self._device_flops[j]
            t += self._intra_sync_time(instr, j, share)
            times.append(t)
        return times

    def _intra_sync_time(self, instr: CompInstruction, device_idx: int, share: float) -> float:
        """Intra-machine gradient synchronisation for machine-level devices.

        When a virtual device is a whole machine, data parallelism runs inside
        it and the gradients consumed by parameter updates must be all-reduced
        over the machine's GPUs (Sec. 3.2 / Sec. 6).
        """
        device = self.devices[device_idx]
        if device.num_gpus <= 1 or instr.op != "sgd_update":
            return 0.0
        grad_bytes = self.ref_bytes(instr.node) * share
        g = device.num_gpus
        return 2.0 * (g - 1) / g * grad_bytes / device.intra_bandwidth

    def comm_time(self, instr: CommInstruction, ratios: Sequence[float]) -> float:
        """Execution time of one collective instruction."""
        if self.memoize:
            key = (instr, tuple(ratios))
            cached = self._comm_memo.get(key)
            if cached is None:
                cached = self._comm_memo[key] = self._comm_time(instr, ratios)
            return cached
        return self._comm_time(instr, ratios)

    def _comm_time(self, instr: CommInstruction, ratios: Sequence[float]) -> float:
        nbytes = float(self.ref_bytes(instr.input.ref))
        time = self.collectives.collective_time(instr.kind, nbytes, ratios)
        time += self._intra_collective_overhead(nbytes, ratios)
        return time

    def _intra_collective_overhead(self, nbytes: float, ratios: Sequence[float]) -> float:
        """Gather/scatter step inside machine-level virtual devices (Sec. 6)."""
        overhead = 0.0
        largest = nbytes * max(ratios)
        for device in self.devices:
            if device.num_gpus > 1:
                g = device.num_gpus
                overhead = max(
                    overhead, 2.0 * (g - 1) / g * largest / device.intra_bandwidth
                )
        return overhead

    # -- whole-program evaluation -------------------------------------------------
    def evaluate(
        self,
        program: DistributedProgram,
        ratios: Sequence[float],
        ratios_per_segment: Optional[Mapping[int, Sequence[float]]] = None,
        segment_of: Optional[Mapping[str, int]] = None,
        overlap: Optional[float] = None,
    ) -> CostBreakdown:
        """Estimated per-iteration time ``t(Q, B)`` on the dual-stream model.

        Args:
            program: the distributed program.
            ratios: global sharding ratios (one entry per virtual device).
            ratios_per_segment: optional per-segment ratios overriding
                ``ratios`` for stages assigned to that segment.
            segment_of: node-name -> segment-index map (required when
                ``ratios_per_segment`` is given).
            overlap: overlap efficiency overriding the model's default
                (``self.overlap``); 0.0 gives the serialized estimate.
        """
        e = self.overlap if overlap is None else overlap
        total_comm = 0.0
        total_comp = 0.0
        total_exposed = 0.0
        stage_times: List[float] = []
        for coeff in self.stage_coefficients(program, segment_of):
            seg_ratios = list(ratios)
            if ratios_per_segment is not None and coeff.segment in ratios_per_segment:
                seg_ratios = list(ratios_per_segment[coeff.segment])
            comm = coeff.comm_time(seg_ratios)
            comp = coeff.comp_time(seg_ratios)
            exposed = coeff.exposed_comm(seg_ratios, e, comm, comp)
            total_comm += comm
            total_comp += comp
            total_exposed += exposed
            stage_times.append(comp + exposed)
        return CostBreakdown(
            total=total_comp + total_exposed,
            communication=total_comm,
            computation=total_comp,
            stage_times=stage_times,
            exposed_communication=total_exposed,
            hidden_communication=total_comm - total_exposed,
        )

    def coefficient_arrays(
        self,
        program: DistributedProgram,
        segment_of: Optional[Mapping[str, int]] = None,
    ) -> StageCoefficientArrays:
        """Stacked-array view of :meth:`stage_coefficients` (memoized alike)."""
        if not self.memoize:
            return StageCoefficientArrays(
                self.stage_coefficients(program, segment_of), self.num_devices
            )
        key = (id(program), id(segment_of))
        hit = self._array_memo.get(key)
        if hit is not None and hit[0] is program and hit[1] is segment_of:
            return hit[2]
        arrays = StageCoefficientArrays(
            self.stage_coefficients(program, segment_of), self.num_devices
        )
        self._array_memo[key] = (program, segment_of, arrays)
        return arrays

    def evaluate_many(
        self,
        program: DistributedProgram,
        ratio_sets: Sequence[
            Tuple[Sequence[float], Optional[Mapping[int, Sequence[float]]]]
        ],
        segment_of: Optional[Mapping[str, int]] = None,
        overlap: Optional[float] = None,
    ) -> List[CostBreakdown]:
        """Batched :meth:`evaluate`: price ``K`` ratio assignments in one pass.

        Each entry of ``ratio_sets`` is a ``(ratios, ratios_per_segment)``
        pair with the same meaning as the :meth:`evaluate` arguments.  The
        returned breakdowns are bit-identical to ``K`` scalar calls (see
        :class:`StageCoefficientArrays`), but the program is linearised once
        and the per-stage arithmetic runs on stacked arrays.
        """
        e = self.overlap if overlap is None else overlap
        arrays = self.coefficient_arrays(program, segment_of)
        g = arrays.num_segments
        m = arrays.num_devices
        tensor = np.empty((len(ratio_sets), g, m), dtype=float)
        for k, (base, per_segment) in enumerate(ratio_sets):
            base_row = np.asarray(list(base), dtype=float)
            for seg in range(g):
                if per_segment is not None and seg in per_segment:
                    tensor[k, seg] = np.asarray(list(per_segment[seg]), dtype=float)
                else:
                    tensor[k, seg] = base_row
        return arrays.breakdowns(tensor, e)

    def evaluate_batch(
        self,
        program: DistributedProgram,
        ratios: np.ndarray,
        overlap: Optional[float] = None,
    ) -> np.ndarray:
        """Total times of ``K`` single-segment ratio vectors, shape ``(K,)``.

        ``ratios`` is ``(K, num_devices)``; equivalent to ``K``
        ``evaluate(program, ratios[k]).total`` calls, bit for bit.
        """
        e = self.overlap if overlap is None else overlap
        return self.coefficient_arrays(program).times(np.asarray(ratios, dtype=float), e)

    def phase_profile(
        self,
        program: DistributedProgram,
        ratios: Sequence[float],
        forward_nodes,
        comp_times_fn=None,
        comm_time_fn=None,
        per_stage_overhead: float = 0.0,
        overlap: Optional[float] = None,
    ) -> Dict[str, float]:
        """Split a program's estimated time into pipeline phases.

        Walks the synchronisation stages exactly like :meth:`evaluate`
        (``comm + max_j comp_j`` per stage) but attributes every instruction
        to its pipeline phase (see
        :meth:`~repro.core.program.DistributedProgram.instruction_phases`):
        per-stage communication goes to the collective's phase, and the
        per-device computation vectors are accumulated — and maxed — per
        phase.  The execution simulator injects its richer per-instruction
        models through ``comp_times_fn`` / ``comm_time_fn`` so planner
        estimates and simulator measurements share one decomposition.

        With a non-zero overlap efficiency the part of each stage's
        collective that hides behind the stage's own *independent* compute
        (:meth:`~repro.core.program.Stage.dependent_mask`) is subtracted
        from the collective's phase bucket, so downstream consumers (the
        pipeline-schedule search, :func:`simulate_hierarchical`) price
        stages by their **exposed** communication.  The overlap window is
        additionally scoped to compute of the **collective's own phase**:
        in a pipelined iteration the forward/backward buckets are split
        across microbatches and replayed in a different temporal region
        than the once-per-iteration sync collectives, so a gradient
        all-reduce may only hide behind other sync work (parameter updates,
        independent collectives' consumers), never behind the full-batch
        backward window it would overstate by the microbatch count.
        ``overlap=0`` leaves every bucket exactly as the serialized model
        computed it.

        Returns:
            ``{"forward": s, "backward": s, "sync": s}`` in seconds.
        """
        comp_times_fn = comp_times_fn or self.comp_times
        comm_time_fn = comm_time_fn or self.comm_time
        e = self.overlap if overlap is None else overlap
        phases = program.instruction_phases(forward_nodes)
        phase_of = {id(instr): p for instr, p in zip(program.instructions, phases)}
        buckets: Dict[str, float] = {"forward": 0.0, "backward": 0.0, "sync": 0.0}
        m = self.num_devices
        for stage in program.stages():
            stage_phase = None
            comm_t = 0.0
            if stage.comm is not None:
                stage_phase = phase_of[id(stage.comm)]
                comm_t = comm_time_fn(stage.comm, ratios)
                buckets[stage_phase] += comm_t
            vectors: Dict[str, List[float]] = {}
            comm_phase = stage_phase
            indep = [0.0] * m
            dependent = stage.dependent_mask() if (e > 0.0 and comm_t > 0.0) else None
            for idx, comp in enumerate(stage.comps):
                if isinstance(comp, CommInstruction):
                    continue  # local slice pseudo-collective: no cost
                phase = phase_of[id(comp)]
                if stage_phase is None:
                    stage_phase = phase
                vec = vectors.setdefault(phase, [0.0] * m)
                times = comp_times_fn(comp, ratios)
                for j, t in enumerate(times):
                    vec[j] += t
                if (
                    dependent is not None
                    and not dependent[idx]
                    and phase == comm_phase
                ):
                    for j, t in enumerate(times):
                        indep[j] += t
            for phase, vec in vectors.items():
                buckets[phase] += max(vec)
            if dependent is not None and comm_phase is not None:
                # Hidden seconds on the critical path, computed like
                # :meth:`evaluate` (serialized wall minus the per-device
                # dual-stream wall) but against the collective's own phase
                # bucket only — the window actually co-resident with it in a
                # pipelined iteration.
                window = vectors.get(comm_phase, [0.0] * m)
                dual = max(
                    d + comm_t - e * min(comm_t, i)
                    for d, i in zip(window, indep)
                )
                hidden = max(window) + comm_t - dual
                buckets[comm_phase] -= max(hidden, 0.0)
            buckets[stage_phase or "forward"] += per_stage_overhead
        return buckets

    # -- LP-facing linearisation ---------------------------------------------------
    def comm_linear(self, instr: CommInstruction) -> Tuple[float, float]:
        """(const, slope) of a collective's time as a function of max ratio.

        The collective cost model is piecewise linear in the largest sharding
        ratio; we recover the line exactly by evaluating it at the even ratio
        (``1/m``) and at ``1`` (all data on one device).
        """
        n = self.num_devices
        even = [1.0 / n] * n
        skew = [1.0] + [0.0] * (n - 1)
        t_even = self.comm_time(instr, even)
        t_skew = self.comm_time(instr, skew)
        if n == 1:
            return t_even, 0.0
        slope = (t_skew - t_even) / (1.0 - 1.0 / n)
        const = t_even - slope / n
        return const, slope

    def comp_linear(self, instr: CompInstruction) -> Tuple[List[float], List[float]]:
        """Per-device (slope, const) of a computation instruction's time."""
        flops = self.node_flops(instr.node)
        slopes: List[float] = []
        consts: List[float] = []
        for j, device in enumerate(self.devices):
            base = flops / self._device_flops[j]
            intra = 0.0
            if device.num_gpus > 1 and instr.op == "sgd_update":
                g = device.num_gpus
                intra = 2.0 * (g - 1) / g * self.ref_bytes(instr.node) / device.intra_bandwidth
            if instr.flops_sharded:
                slopes.append(base + intra)
                consts.append(0.0)
            else:
                slopes.append(0.0)
                consts.append(base + intra)
        return slopes, consts

    def stage_coefficients(
        self,
        program: DistributedProgram,
        segment_of: Optional[Mapping[str, int]] = None,
    ) -> List[StageCoefficients]:
        """Linear coefficients of every stage of a program.

        Memoized per ``(program, segment_of)`` identity when ``memoize`` is
        on: one planner round prices the same program through
        :meth:`evaluate`, the LP load balancer *and* the post-balance
        re-evaluation, and the linearisation (two collective-model calls per
        stage plus a per-instruction sweep) is by far the most expensive part
        of each.  The cached list is exactly what the uncached path computes.
        """
        if not self.memoize:
            return self._stage_coefficients(program, segment_of)
        key = (id(program), id(segment_of))
        hit = self._coeff_memo.get(key)
        if hit is not None and hit[0] is program and hit[1] is segment_of:
            return hit[2]
        coeffs = self._stage_coefficients(program, segment_of)
        self._coeff_memo[key] = (program, segment_of, coeffs)
        return coeffs

    def _stage_coefficients(
        self,
        program: DistributedProgram,
        segment_of: Optional[Mapping[str, int]] = None,
    ) -> List[StageCoefficients]:
        coeffs: List[StageCoefficients] = []
        m = self.num_devices
        for stage in program.stages():
            comm_const, comm_slope = 0.0, 0.0
            if stage.comm is not None:
                comm_const, comm_slope = self.comm_linear(stage.comm)
            comp_slope = [0.0] * m
            comp_const = [0.0] * m
            indep_slope = [0.0] * m
            indep_const = [0.0] * m
            segment = 0
            dependent = stage.dependent_mask()
            for idx, comp in enumerate(stage.comps):
                if isinstance(comp, CommInstruction):
                    continue  # local slice pseudo-collectives cost ~nothing
                slopes, consts = self.comp_linear(comp)
                for j in range(m):
                    comp_slope[j] += slopes[j]
                    comp_const[j] += consts[j]
                    if not dependent[idx]:
                        indep_slope[j] += slopes[j]
                        indep_const[j] += consts[j]
            if segment_of is not None:
                nodes = [c.node for c in stage.comps]
                if stage.comm is not None:
                    nodes.append(stage.comm.input.ref)
                segments = [segment_of.get(n, 0) for n in nodes]
                segment = max(set(segments), key=segments.count) if segments else 0
            coeffs.append(
                StageCoefficients(
                    segment=segment,
                    comm_const=comm_const,
                    comm_slope=comm_slope,
                    comp_slope=comp_slope,
                    comp_const=comp_const,
                    indep_slope=indep_slope,
                    indep_const=indep_const,
                )
            )
        return coeffs

    # -- search-support quantities ---------------------------------------------------
    def ideal_node_time(self, name: str) -> float:
        """Lower bound on a node's contribution assuming perfect balance.

        Used as the admissible heuristic ``ecost`` of the A* search: the
        node's flops spread over the aggregate flops of the whole cluster,
        with infinite bandwidth.
        """
        return self.node_flops(name) / self.cluster.total_flops()


# -- beam-ranking order (shared by serial and sharded beam levels) ----------------
def beam_rank_order(
    vectors: Sequence[Tuple[float, ...]],
    stage_comps: Sequence[Tuple[float, ...]],
    vectorized: bool = True,
) -> List[int]:
    """Deterministic ranking permutation of one beam level's merged children.

    ``vectors[i]`` is candidate *i*'s per-device ``closed + stage_comp``
    vector and ``stage_comps[i]`` its open-stage computation vector.  The
    primary key is the cost accumulated so far, ``max(vectors[i])`` — which
    equals ``closed + max(stage_comp)`` bit-exactly, because adding one
    constant to every element moves the maximum by that constant in IEEE
    arithmetic — and the tie-breaker is total device work,
    ``sum(stage_comps[i])`` with left-to-right float accumulation.

    **Tie-break contract** (relied on by ``synthesis_workers``): both the
    ``np.lexsort`` path and the ``sorted`` path are *stable*, so candidates
    with equal ``(cost, work)`` keys survive in *input order*.  Serial beam
    levels pass candidates in generation order (entering-state order, then
    rule order, then option order); sharded expansion must therefore
    reassemble its workers' children in that same serial generation order
    before calling this function — any other concatenation order would
    resolve equal-cost ties differently and silently break the bit-identical
    guarantee of every result-identical flag downstream.  The two paths also
    rank identically to each other: the column-wise ``+=`` matches Python's
    left-to-right ``sum()`` and ``lexsort``'s last-key-primary ordering
    matches the ``(cost, work)`` tuple key.

    Both sequences may also be float64 ``np.ndarray`` matrices (one row per
    candidate) — the form the sharded path assembles directly from worker
    replies.  Rows hold the same doubles the tuple form would, so both input
    forms rank identically.

    Returns the list of input indexes in surviving order (best first).
    """
    count = len(vectors)
    if count <= 1:
        return list(range(count))
    if vectorized:
        arr = np.asarray(vectors)
        final = arr.max(axis=1)
        stage = np.asarray(stage_comps)
        work = np.zeros(count)
        for j in range(stage.shape[1]):
            work += stage[:, j]
        return [int(i) for i in np.lexsort((work, final))]
    if isinstance(vectors, np.ndarray):
        # The scalar path needs Python floats so its left-to-right `sum`
        # matches the serial tuple form bit for bit.
        vectors = vectors.tolist()
        stage_comps = stage_comps.tolist()  # type: ignore[union-attr]
    keys = [
        (max(vector) if vector else 0.0, sum(stage))
        for vector, stage in zip(vectors, stage_comps)
    ]
    return sorted(range(count), key=lambda i: keys[i])
