"""Distributed-tensor properties (the vocabulary of the background theory).

Following Sec. 4.2 of the paper, the semantics of a distributed program are a
set of *properties* of the form ``e | I``: executing instruction ``I`` on the
distributed tensor recovers the reference tensor ``e`` of the single-device
graph on every device.  Exactly three property shapes arise:

* ``e | Identity``      — every device holds a full replica of ``e``;
* ``e | All-Gather(d)`` — every device holds a shard of ``e`` along dim ``d``;
* ``e | All-Reduce``    — every device holds a partial value whose sum is ``e``.

We encode them as a :class:`DistState` (replicated / sharded(d) / partial)
attached to a reference-tensor name, the pair being a :class:`Property`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple


class StateKind(Enum):
    """How a distributed tensor relates to its reference tensor."""

    REPLICATED = "replicated"  # e | Identity
    SHARDED = "sharded"        # e | All-Gather(dim)
    PARTIAL = "partial"        # e | All-Reduce


@dataclass(frozen=True)
class DistState:
    """Distribution state of one tensor (kind + optional shard dimension)."""

    kind: StateKind
    dim: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind is StateKind.SHARDED and (self.dim is None or self.dim < 0):
            raise ValueError("sharded state requires a non-negative dimension")
        if self.kind is not StateKind.SHARDED and self.dim is not None:
            raise ValueError(f"{self.kind.value} state must not carry a dimension")
        # States are hashed millions of times by the synthesizer's dominance
        # tables; precompute the (immutable) hash once.
        object.__setattr__(self, "_hash", hash((self.kind, self.dim)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    # -- convenience constructors ------------------------------------------
    @staticmethod
    def replicated() -> DistState:
        return _REPLICATED

    @staticmethod
    def partial() -> DistState:
        return _PARTIAL

    @staticmethod
    def sharded(dim: int) -> DistState:
        return DistState(StateKind.SHARDED, dim)

    # -- predicates ----------------------------------------------------------
    @property
    def is_replicated(self) -> bool:
        return self.kind is StateKind.REPLICATED

    @property
    def is_sharded(self) -> bool:
        return self.kind is StateKind.SHARDED

    @property
    def is_partial(self) -> bool:
        return self.kind is StateKind.PARTIAL

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_sharded:
            return f"all-gather({self.dim})"
        if self.is_partial:
            return "all-reduce"
        return "identity"


_REPLICATED = DistState(StateKind.REPLICATED)
_PARTIAL = DistState(StateKind.PARTIAL)


@dataclass(frozen=True)
class Property:
    """``ref | state``: a reference tensor held in a particular distribution."""

    ref: str
    state: DistState

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.ref, self.state)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.ref} | {self.state}"


def replicated(ref: str) -> Property:
    """Property ``ref | Identity``."""
    return Property(ref, DistState.replicated())


def partial(ref: str) -> Property:
    """Property ``ref | All-Reduce``."""
    return Property(ref, DistState.partial())


def sharded(ref: str, dim: int) -> Property:
    """Property ``ref | All-Gather(dim)``."""
    return Property(ref, DistState.sharded(dim))


PropertySet = frozenset
