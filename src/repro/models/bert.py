"""BERT-Base style language model.

Token embeddings, a stack of Transformer encoder layers, and a vocabulary
prediction head with a summed token-level cross-entropy loss (masked-LM
training shape).  Table 1 lists 102 M parameters for BERT-Base; the exact
count depends on the vocabulary and whether the LM head is tied — we report
our count in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.builder import GraphBuilder
from ..graph.graph import ComputationGraph
from ..graph.tensor import DType
from .common import finalize, language_model_head


@dataclass(frozen=True)
class BERTConfig:
    """Configuration of the BERT-Base benchmark model.

    Attributes:
        batch_size: global batch size.
        seq_len: sequence length (the paper uses WikiText-2 with 128 tokens).
        hidden_size: transformer width (768 for BERT-Base).
        num_layers: encoder layers (12 for BERT-Base).
        num_heads: attention heads (12 for BERT-Base).
        mlp_ratio: FFN width multiplier (4 for BERT-Base).
        vocab_size: vocabulary size.
    """

    batch_size: int = 64
    seq_len: int = 128
    hidden_size: int = 768
    num_layers: int = 12
    num_heads: int = 12
    mlp_ratio: int = 4
    vocab_size: int = 30522


def build_bert(config: BERTConfig = BERTConfig(), name: str = "bert_base") -> ComputationGraph:
    """Build the BERT forward graph with a summed token cross-entropy loss."""
    b = GraphBuilder(name)
    ids = b.placeholder((config.batch_size, config.seq_len), dtype=DType.INT64, name="input_ids")
    table = b.parameter((config.vocab_size, config.hidden_size), name="token_embeddings")
    x = b.embedding(ids, table)
    # The learned positional term is folded into the first layer norm's
    # affine parameters, so no position-embedding compute (or parameter)
    # appears in the IR.
    flat = b.reshape(x, (config.batch_size * config.seq_len, config.hidden_size))
    x = b.reshape(flat, (config.batch_size, config.seq_len, config.hidden_size))
    for i in range(config.num_layers):
        x = b.transformer_layer(
            x,
            num_heads=config.num_heads,
            ffn_hidden=config.hidden_size * config.mlp_ratio,
            prefix=f"layer{i}",
        )
    x = b.layernorm(x)
    loss = language_model_head(b, x, config.vocab_size, config.batch_size, config.seq_len)
    return finalize(b, loss)


def tiny_bert(
    batch_size: int = 8,
    seq_len: int = 8,
    hidden_size: int = 32,
    num_layers: int = 1,
    vocab_size: int = 64,
) -> ComputationGraph:
    """Scaled-down BERT used by unit tests."""
    config = BERTConfig(
        batch_size=batch_size,
        seq_len=seq_len,
        hidden_size=hidden_size,
        num_layers=num_layers,
        num_heads=4,
        mlp_ratio=2,
        vocab_size=vocab_size,
    )
    return build_bert(config, name="bert_tiny")
