"""Benchmark model zoo: VGG19, ViT, BERT-Base and BERT-MoE (Table 1)."""

from .bert import BERTConfig, build_bert, tiny_bert
from .common import ModelInfo, model_info
from .moe import BERTMoEConfig, build_bert_moe, tiny_bert_moe
from .registry import (
    MODEL_NAMES,
    MODEL_TASKS,
    PAPER_ALIASES,
    PER_DEVICE_BATCH,
    BenchmarkScale,
    build_model,
    build_tiny_model,
    canonical_name,
    table1_inventory,
)
from .vgg import VGG19_LAYOUT, VGGConfig, build_vgg19, tiny_vgg
from .vit import ViTConfig, build_vit, tiny_vit

__all__ = [
    "BERTConfig",
    "build_bert",
    "tiny_bert",
    "ModelInfo",
    "model_info",
    "BERTMoEConfig",
    "build_bert_moe",
    "tiny_bert_moe",
    "BenchmarkScale",
    "MODEL_NAMES",
    "MODEL_TASKS",
    "PAPER_ALIASES",
    "PER_DEVICE_BATCH",
    "build_model",
    "build_tiny_model",
    "canonical_name",
    "table1_inventory",
    "VGGConfig",
    "VGG19_LAYOUT",
    "build_vgg19",
    "tiny_vgg",
    "ViTConfig",
    "build_vit",
    "tiny_vit",
]
