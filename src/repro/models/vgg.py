"""VGG19 (Simonyan & Zisserman) for image classification.

The paper trains VGG19 on CIFAR-10; its Table 1 reports 133 M parameters,
which corresponds to the original configuration with 224x224 inputs and the
4096-wide fully-connected classifier (CIFAR images are upscaled).  The
fully-connected layers make the model communication-heavy under data
parallelism, which is exactly the regime where HAP's model-parallel sharding
pays off (Sec. 7.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

from ..graph.builder import GraphBuilder
from ..graph.graph import ComputationGraph
from .common import classification_head, finalize

#: VGG19 configuration "E": output channels or 'M' for 2x2 max-pooling.
VGG19_LAYOUT: List[Union[int, str]] = [
    64, 64, "M",
    128, 128, "M",
    256, 256, 256, 256, "M",
    512, 512, 512, 512, "M",
    512, 512, 512, 512, "M",
]


@dataclass(frozen=True)
class VGGConfig:
    """Configuration of the VGG19 benchmark model.

    Attributes:
        batch_size: global batch size (the paper uses 64 per GPU, weak
            scaling with the number of devices).
        image_size: input resolution; 224 reproduces the 133 M-parameter
            configuration of Table 1, 32 is the native CIFAR-10 size.
        num_classes: classifier width (10 for CIFAR-10).
        channel_multiplier: scales every convolution width (used by scaled-
            down unit-test and benchmark variants).
        fc_width: width of the two hidden fully-connected layers.
    """

    batch_size: int = 64
    image_size: int = 224
    num_classes: int = 10
    channel_multiplier: float = 1.0
    fc_width: int = 4096

    def scaled(self, channels: int) -> int:
        return max(8, int(round(channels * self.channel_multiplier)))


def build_vgg19(config: VGGConfig = VGGConfig()) -> ComputationGraph:
    """Build the VGG19 forward graph with a summed cross-entropy loss."""
    b = GraphBuilder("vgg19")
    x = b.placeholder((config.batch_size, 3, config.image_size, config.image_size), name="images")
    in_channels = 3
    for item in VGG19_LAYOUT:
        if item == "M":
            x = b.maxpool2d(x, kernel=2, stride=2)
            continue
        out_channels = config.scaled(int(item))
        weight = b.parameter((out_channels, in_channels, 3, 3))
        x = b.conv2d(x, weight, stride=1, padding=1)
        x = b.relu(x)
        in_channels = out_channels
    x = b.flatten(x)
    x = b.linear(x, config.fc_width, prefix="fc1")
    x = b.relu(x)
    x = b.dropout(x)
    x = b.linear(x, config.fc_width, prefix="fc2")
    x = b.relu(x)
    x = b.dropout(x)
    loss = classification_head(b, x, config.num_classes, config.batch_size)
    return finalize(b, loss)


def tiny_vgg(batch_size: int = 8, image_size: int = 32, num_classes: int = 10) -> ComputationGraph:
    """A drastically scaled-down VGG used by unit tests (fast numpy execution)."""
    config = VGGConfig(
        batch_size=batch_size,
        image_size=image_size,
        num_classes=num_classes,
        channel_multiplier=0.125,
        fc_width=64,
    )
    return build_vgg19(config)
