"""Shared helpers for the benchmark model zoo.

All models follow two conventions required by the SPMD runtime:

* every data placeholder carries the *batch* dimension as dimension 0 with the
  same size, so that sharding the batch produces consistent local shapes
  across placeholders (inputs and labels);
* the training loss is the *sum* of per-sample cross-entropy terms, so that
  partial losses computed under data parallelism All-Reduce to the
  single-device value exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..graph.builder import GraphBuilder
from ..graph.graph import ComputationGraph
from ..graph.tensor import DType


def classification_head(
    b: GraphBuilder, features: str, num_classes: int, batch: int, label_name: str = "labels"
) -> str:
    """Linear classifier + summed cross-entropy loss over ``[batch, F]`` features."""
    logits = b.linear(features, num_classes, prefix="classifier")
    labels = b.placeholder((batch,), dtype=DType.INT64, name=label_name)
    return b.cross_entropy(logits, labels)


def language_model_head(
    b: GraphBuilder,
    hidden_states: str,
    vocab_size: int,
    batch: int,
    seq_len: int,
    label_name: str = "labels",
) -> str:
    """Token-level LM head: project to the vocabulary and sum token losses.

    Labels are provided as a ``[batch, seq]`` placeholder (batch dimension
    first) and flattened inside the graph, keeping every placeholder sharded
    consistently along the batch dimension.
    """
    hidden = b.spec(hidden_states).shape[-1]
    flat = b.reshape(hidden_states, (batch * seq_len, hidden))
    logits = b.linear(flat, vocab_size, prefix="lm_head")
    labels2d = b.placeholder((batch, seq_len), dtype=DType.INT64, name=label_name)
    labels = b.reshape(labels2d, (batch * seq_len,))
    return b.cross_entropy(logits, labels)


def finalize(b: GraphBuilder, loss: str) -> ComputationGraph:
    """Mark the loss and validate the forward graph."""
    b.loss(loss)
    return b.build()


@dataclass(frozen=True)
class ModelInfo:
    """Summary of a built model, used by the Table 1 benchmark."""

    name: str
    task: str
    parameters: int
    nodes: int
    flops_per_iteration: float

    @property
    def parameters_millions(self) -> float:
        return self.parameters / 1e6


def model_info(graph: ComputationGraph, task: str) -> ModelInfo:
    """Collect the Table 1 statistics of a forward graph."""
    return ModelInfo(
        name=graph.name,
        task=task,
        parameters=graph.parameter_count(),
        nodes=len(graph),
        flops_per_iteration=graph.total_flops(),
    )
