"""BERT-MoE: BERT with Mixture-of-Experts feed-forward layers.

Following the paper (Sec. 7.1), every second Transformer layer's feed-forward
block is replaced by a GShard-style MoE layer.  The number of experts scales
with the number of devices (weak scaling of the model), so Table 1 reports the
parameter count as ``84 + 36m`` million for ``m`` devices.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.builder import GraphBuilder
from ..graph.graph import ComputationGraph
from ..graph.tensor import DType
from .common import finalize, language_model_head


@dataclass(frozen=True)
class BERTMoEConfig:
    """Configuration of the BERT-MoE benchmark model.

    Attributes:
        batch_size: global batch size (the paper uses 32 per GPU for MoE).
        seq_len: sequence length.
        hidden_size: transformer width.
        num_layers: encoder layers; every second one uses an MoE FFN.
        num_heads: attention heads.
        mlp_ratio: FFN width multiplier (dense layers and each expert).
        vocab_size: vocabulary size.
        num_experts: total number of experts in each MoE layer (the paper
            scales this with the number of devices).
        capacity_factor: GShard capacity factor for top-1 routing.
    """

    batch_size: int = 32
    seq_len: int = 128
    hidden_size: int = 768
    num_layers: int = 12
    num_heads: int = 12
    mlp_ratio: int = 4
    vocab_size: int = 30522
    num_experts: int = 16
    capacity_factor: float = 1.25

    @staticmethod
    def for_devices(num_devices: int, experts_per_device: int = 2, **overrides) -> BERTMoEConfig:
        """Weak-scaling configuration: experts proportional to device count."""
        return BERTMoEConfig(num_experts=max(2, experts_per_device * num_devices), **overrides)


def build_bert_moe(config: BERTMoEConfig = BERTMoEConfig(), name: str = "bert_moe") -> ComputationGraph:
    """Build the BERT-MoE forward graph with a summed token cross-entropy loss."""
    b = GraphBuilder(name)
    ids = b.placeholder((config.batch_size, config.seq_len), dtype=DType.INT64, name="input_ids")
    table = b.parameter((config.vocab_size, config.hidden_size), name="token_embeddings")
    x = b.embedding(ids, table)
    for i in range(config.num_layers):
        if i % 2 == 1:
            # MoE layer: attention block followed by an MoE feed-forward.
            normed = b.layernorm(x)
            attn = b.self_attention(normed, config.num_heads, prefix=f"layer{i}_attn")
            x = b.add(x, attn)
            x = b.moe_layer(
                x,
                num_experts=config.num_experts,
                ffn_hidden=config.hidden_size * config.mlp_ratio,
                capacity_factor=config.capacity_factor,
                prefix=f"layer{i}_moe",
            )
        else:
            x = b.transformer_layer(
                x,
                num_heads=config.num_heads,
                ffn_hidden=config.hidden_size * config.mlp_ratio,
                prefix=f"layer{i}",
            )
    x = b.layernorm(x)
    loss = language_model_head(b, x, config.vocab_size, config.batch_size, config.seq_len)
    return finalize(b, loss)


def tiny_bert_moe(
    batch_size: int = 8,
    seq_len: int = 8,
    hidden_size: int = 32,
    num_layers: int = 2,
    num_experts: int = 4,
    vocab_size: int = 64,
) -> ComputationGraph:
    """Scaled-down BERT-MoE used by unit tests."""
    config = BERTMoEConfig(
        batch_size=batch_size,
        seq_len=seq_len,
        hidden_size=hidden_size,
        num_layers=num_layers,
        num_heads=4,
        mlp_ratio=2,
        vocab_size=vocab_size,
        num_experts=num_experts,
        capacity_factor=2.0,
    )
    return build_bert_moe(config, name="bert_moe_tiny")
