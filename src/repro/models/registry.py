"""Model registry: build benchmark models by name.

Names follow the paper's ``config.py`` conventions (``Vvgg``, ``Vtransformer``,
``Rtransformer``, ``Rmoe``) as well as plain aliases (``vgg19``, ``vit``,
``bert_base``, ``bert_moe``).  Each entry accepts the number of devices so the
weak-scaling conventions of Sec. 7.1 (global batch proportional to device
count, MoE experts proportional to device count) are applied automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..graph.graph import ComputationGraph
from .bert import BERTConfig, build_bert, tiny_bert
from .common import ModelInfo, model_info
from .moe import BERTMoEConfig, build_bert_moe, tiny_bert_moe
from .vgg import VGGConfig, build_vgg19, tiny_vgg
from .vit import ViTConfig, build_vit, tiny_vit


@dataclass(frozen=True)
class BenchmarkScale:
    """Controls how large the built benchmark models are.

    The ``paper`` scale matches the configurations of Table 1; the ``reduced``
    scale keeps the same structure (and therefore the same sharding decisions)
    but with fewer layers, so that planning and simulation finish quickly in
    CI; ``tiny`` is for unit tests that actually execute the graphs with numpy.

    ``batch_per_device`` overrides the paper's per-GPU batch
    (:data:`PER_DEVICE_BATCH`) when set; ``None`` keeps the per-model paper
    default, so ``paper()``/``reduced()`` preserve e.g. BERT-MoE's smaller
    per-device batch of 32.
    """

    name: str
    layer_fraction: float
    batch_per_device: Optional[int] = None

    @staticmethod
    def paper() -> BenchmarkScale:
        return BenchmarkScale("paper", layer_fraction=1.0)

    @staticmethod
    def reduced() -> BenchmarkScale:
        return BenchmarkScale("reduced", layer_fraction=0.25)


#: Per-GPU batch sizes used by the paper (Sec. 7.1).
PER_DEVICE_BATCH = {"vgg19": 64, "vit": 64, "bert_base": 64, "bert_moe": 32}

#: Aliases used by the paper's configuration files.
PAPER_ALIASES = {
    "Vvgg": "vgg19",
    "Vtransformer": "vit",
    "Rtransformer": "bert_base",
    "Rmoe": "bert_moe",
}

MODEL_NAMES = ["vgg19", "vit", "bert_base", "bert_moe"]
MODEL_TASKS = {
    "vgg19": "Image Classification",
    "vit": "Image Classification",
    "bert_base": "Language Model",
    "bert_moe": "Language Model",
}


def canonical_name(name: str) -> str:
    """Resolve paper aliases to canonical model names."""
    resolved = PAPER_ALIASES.get(name, name).lower()
    if resolved not in MODEL_NAMES:
        raise KeyError(f"unknown model {name!r}; known: {MODEL_NAMES} (+ aliases {list(PAPER_ALIASES)})")
    return resolved


def _layers(full: int, fraction: float) -> int:
    return max(1, int(round(full * fraction)))


def build_model(
    name: str,
    num_gpus: int = 8,
    scale: Optional[BenchmarkScale] = None,
    num_experts: Optional[int] = None,
) -> ComputationGraph:
    """Build a benchmark model configured for ``num_gpus`` (weak scaling).

    Args:
        name: model name or paper alias.
        num_gpus: total number of GPUs participating in training; the global
            batch size is ``per_device_batch * num_gpus`` and the number of
            MoE experts is proportional to it.
        scale: benchmark scale (paper-sized by default); its
            ``batch_per_device`` — when set — replaces the paper's per-GPU
            batch, so reduced-scale and weak-scaling studies can actually
            shrink the global batch.
        num_experts: override the MoE expert count (used by the Fig. 17
            uneven-experts study).

    Returns:
        The forward graph with a marked loss.
    """
    name = canonical_name(name)
    scale = scale or BenchmarkScale.paper()
    per_device = (
        scale.batch_per_device
        if scale.batch_per_device is not None
        else PER_DEVICE_BATCH[name]
    )
    batch = per_device * num_gpus

    if name == "vgg19":
        return build_vgg19(VGGConfig(batch_size=batch))
    if name == "vit":
        return build_vit(ViTConfig(batch_size=batch, num_layers=_layers(8, scale.layer_fraction)))
    if name == "bert_base":
        return build_bert(BERTConfig(batch_size=batch, num_layers=_layers(12, scale.layer_fraction)))
    if name == "bert_moe":
        experts = num_experts if num_experts is not None else max(2, 2 * num_gpus)
        config = BERTMoEConfig(
            batch_size=batch,
            num_layers=_layers(12, scale.layer_fraction),
            num_experts=experts,
        )
        return build_bert_moe(config)
    raise AssertionError("unreachable")


def build_tiny_model(name: str) -> ComputationGraph:
    """Build the unit-test-sized variant of a benchmark model."""
    name = canonical_name(name)
    builders: Dict[str, Callable[[], ComputationGraph]] = {
        "vgg19": tiny_vgg,
        "vit": tiny_vit,
        "bert_base": tiny_bert,
        "bert_moe": tiny_bert_moe,
    }
    return builders[name]()


def table1_inventory(num_gpus: int = 8) -> List[ModelInfo]:
    """Model statistics reproducing Table 1 of the paper."""
    return [
        model_info(build_model(name, num_gpus=num_gpus), MODEL_TASKS[name])
        for name in MODEL_NAMES
    ]
