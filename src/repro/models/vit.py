"""Vision Transformer (ViT) for image classification.

The paper's ViT has 54 M parameters (Table 1); that corresponds roughly to a
ViT with 768-wide hidden states and 8 encoder layers on CIFAR-scale inputs.
Patch extraction is expressed with reshape/transpose so that the whole model
consists of operators the synthesizer has sharding rules for, and the batch
dimension stays outermost throughout.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.builder import GraphBuilder
from ..graph.graph import ComputationGraph
from .common import classification_head, finalize


@dataclass(frozen=True)
class ViTConfig:
    """Configuration of the ViT benchmark model.

    Attributes:
        batch_size: global batch size.
        image_size: input resolution (CIFAR-10 images are 32x32).
        patch_size: square patch edge; ``image_size`` must be divisible by it.
        hidden_size: transformer width.
        num_layers: number of encoder layers.
        num_heads: attention heads.
        mlp_ratio: FFN width multiplier.
        num_classes: classifier width.
    """

    batch_size: int = 64
    image_size: int = 32
    patch_size: int = 4
    hidden_size: int = 768
    num_layers: int = 8
    num_heads: int = 12
    mlp_ratio: int = 4
    num_classes: int = 10

    @property
    def num_patches(self) -> int:
        return (self.image_size // self.patch_size) ** 2

    @property
    def patch_dim(self) -> int:
        return 3 * self.patch_size * self.patch_size


def build_vit(config: ViTConfig = ViTConfig()) -> ComputationGraph:
    """Build the ViT forward graph with a summed cross-entropy loss."""
    if config.image_size % config.patch_size:
        raise ValueError("image_size must be divisible by patch_size")
    b = GraphBuilder("vit")
    batch, side, patch = config.batch_size, config.image_size, config.patch_size
    grid = side // patch

    images = b.placeholder((batch, 3, side, side), name="images")
    # Patchify: (B, 3, H, W) -> (B, grid*grid, 3*patch*patch)
    x = b.reshape(images, (batch, 3, grid, patch, grid, patch))
    x = b.transpose(x, (0, 2, 4, 1, 3, 5))
    x = b.reshape(x, (batch, grid * grid, config.patch_dim))
    # Patch embedding.
    x = b.linear(x, config.hidden_size, prefix="patch_embed")
    for i in range(config.num_layers):
        x = b.transformer_layer(
            x,
            num_heads=config.num_heads,
            ffn_hidden=config.hidden_size * config.mlp_ratio,
            prefix=f"encoder{i}",
        )
    x = b.layernorm(x)
    # Mean-pool over patches, expressed as reshape + scaled sum_leading-free
    # path: flatten patches into features and classify (keeps batch dim 0).
    x = b.reshape(x, (batch, config.num_patches * config.hidden_size))
    loss = classification_head(b, x, config.num_classes, batch)
    return finalize(b, loss)


def tiny_vit(batch_size: int = 8, hidden_size: int = 32, num_layers: int = 1) -> ComputationGraph:
    """Scaled-down ViT used by unit tests."""
    config = ViTConfig(
        batch_size=batch_size,
        image_size=16,
        patch_size=4,
        hidden_size=hidden_size,
        num_layers=num_layers,
        num_heads=4,
        num_classes=10,
    )
    return build_vit(config)
