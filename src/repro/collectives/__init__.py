"""Collective communication: analytic cost models and functional emulation."""

from .cost import (
    MEMCPY_BANDWIDTH,
    CollectiveCostModel,
    CollectiveKind,
    CommRequest,
    max_ratio,
)
from .functional import all_gather, all_reduce, all_to_all, broadcast, reduce_scatter, split

__all__ = [
    "CollectiveCostModel",
    "CollectiveKind",
    "CommRequest",
    "MEMCPY_BANDWIDTH",
    "max_ratio",
    "all_gather",
    "all_reduce",
    "all_to_all",
    "broadcast",
    "reduce_scatter",
    "split",
]
