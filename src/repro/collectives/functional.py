"""Functional (numpy) implementations of the collective primitives.

The SPMD runtime (:mod:`repro.runtime.spmd`) emulates ``m`` ranks inside one
process: every rank holds its local shard/replica as a numpy array, and a
collective is a pure function from the list of per-rank inputs to the list of
per-rank outputs.  These implementations are the semantic ground truth used to
verify that synthesized distributed programs are equivalent to the
single-device program.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def _check_world(tensors: Sequence[np.ndarray]) -> int:
    if not tensors:
        raise ValueError("collective requires at least one participant")
    return len(tensors)


def all_gather(shards: Sequence[np.ndarray], dim: int) -> List[np.ndarray]:
    """Concatenate per-rank shards along ``dim``; every rank gets the result.

    Shards may have unequal sizes along ``dim`` (HAP's uneven sharding); this
    corresponds to the grouped-Broadcast implementation, while NCCL's padded
    implementation produces the same value after trimming.
    """
    _check_world(shards)
    full = np.concatenate([np.asarray(s) for s in shards], axis=dim)
    return [full.copy() for _ in shards]


def all_reduce(replicas: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Element-wise sum of per-rank replicas; every rank gets the sum."""
    _check_world(replicas)
    total = np.sum(np.stack([np.asarray(r) for r in replicas], axis=0), axis=0)
    return [total.copy() for _ in replicas]


def reduce_scatter(
    replicas: Sequence[np.ndarray], dim: int, shard_sizes: Sequence[int]
) -> List[np.ndarray]:
    """All-Reduce followed by sharding the result along ``dim``.

    ``shard_sizes`` gives each rank's slice length along ``dim`` and must sum
    to the full dimension size.
    """
    world = _check_world(replicas)
    if len(shard_sizes) != world:
        raise ValueError("shard_sizes must have one entry per rank")
    total = np.sum(np.stack([np.asarray(r) for r in replicas], axis=0), axis=0)
    if sum(shard_sizes) != total.shape[dim]:
        raise ValueError(
            f"shard sizes {tuple(shard_sizes)} do not sum to dimension {total.shape[dim]}"
        )
    return split(total, dim, shard_sizes)


def all_to_all(
    shards: Sequence[np.ndarray],
    src_dim: int,
    dst_dim: int,
    dst_sizes: Sequence[int],
) -> List[np.ndarray]:
    """Reshard a tensor from ``src_dim`` sharding to ``dst_dim`` sharding.

    Functionally equivalent to gathering the full tensor and re-splitting it;
    a real implementation exchanges only the off-diagonal blocks.
    """
    world = _check_world(shards)
    if len(dst_sizes) != world:
        raise ValueError("dst_sizes must have one entry per rank")
    full = np.concatenate([np.asarray(s) for s in shards], axis=src_dim)
    return split(full, dst_dim, dst_sizes)


def broadcast(value: np.ndarray, world: int) -> List[np.ndarray]:
    """Replicate one rank's tensor to all ranks."""
    if world < 1:
        raise ValueError("world size must be >= 1")
    arr = np.asarray(value)
    return [arr.copy() for _ in range(world)]


def split(full: np.ndarray, dim: int, shard_sizes: Sequence[int]) -> List[np.ndarray]:
    """Split a full tensor into per-rank shards along ``dim``.

    A zero entry in ``shard_sizes`` produces an empty shard for that rank.
    """
    if sum(shard_sizes) != full.shape[dim]:
        raise ValueError(
            f"shard sizes {tuple(shard_sizes)} do not sum to dimension {full.shape[dim]}"
        )
    out: List[np.ndarray] = []
    offset = 0
    for size in shard_sizes:
        index = [slice(None)] * full.ndim
        index[dim] = slice(offset, offset + size)
        out.append(np.ascontiguousarray(full[tuple(index)]))
        offset += size
    return out
