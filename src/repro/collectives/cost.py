"""Analytic cost models of collective communication on heterogeneous clusters.

These play the role NCCL profiling plays in the paper: given the cluster's
network parameters they predict the time of each collective for a given total
payload and sharding ratios.  The models are standard alpha-beta (latency +
bandwidth) formulas for ring algorithms, extended with the two All-Gather
implementations the paper studies for unevenly sharded tensors (Sec. 2.5.1):

* **padded All-Gather** — shards are padded to the largest shard, a regular
  NCCL ring All-Gather runs over the padded buffers, then the result is
  trimmed.  Time scales with the *largest* shard.
* **grouped Broadcast** — each shard is broadcast separately inside one group
  call.  Time scales with the *total* size but pays a per-shard launch
  overhead.

With nearly even shards the padded variant wins; with heavy skew the grouped
variant wins, reproducing the crossover in Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..cluster.spec import ClusterSpec


#: Device-memory copy bandwidth used to account for pad/trim passes (bytes/s).
MEMCPY_BANDWIDTH = 300e9


class CollectiveKind(Enum):
    """Collective communication primitives used by distributed programs."""

    ALL_REDUCE = "all_reduce"
    ALL_GATHER = "all_gather"                # padded NCCL implementation
    ALL_GATHER_GROUPED = "all_gather_grouped"  # grouped Broadcast implementation
    REDUCE_SCATTER = "reduce_scatter"
    ALL_TO_ALL = "all_to_all"
    BROADCAST = "broadcast"
    SLICE = "slice"  # local slice of a replicated tensor; involves no network traffic


def max_ratio(ratios: Sequence[float]) -> float:
    """Largest sharding ratio, clipped to [1/n, 1]."""
    if not ratios:
        raise ValueError("ratios must be non-empty")
    return min(max(max(ratios), 1.0 / len(ratios)), 1.0)


@dataclass(frozen=True)
class CommRequest:
    """One collective to be costed.

    Attributes:
        kind: the collective primitive.
        total_bytes: size of the full (unsharded) reference tensor in bytes.
        ratios: sharding ratios across the participating virtual devices.
    """

    kind: CollectiveKind
    total_bytes: float
    ratios: Tuple[float, ...]


class CollectiveCostModel:
    """Predicts collective execution times on a given cluster.

    The model assumes the flat inter-machine network of the paper's testbed
    (uniform point-to-point bandwidth, measured with iperf3) and ring-style
    algorithms.  Intra-machine aggregation of grouped GPUs is handled
    separately by the computation-side cost model (Sec. 3.2), matching the
    paper's treatment of machine-level virtual devices.
    """

    def __init__(self, cluster: ClusterSpec) -> None:
        self.cluster = cluster
        self.num_devices = cluster.num_devices
        self.bandwidth = cluster.network.bandwidth
        self.latency = cluster.network.latency
        self.kernel_overhead = cluster.network.kernel_launch_overhead

    # -- individual collectives -------------------------------------------------
    def all_reduce(self, total_bytes: float) -> float:
        """Ring All-Reduce of a replicated tensor of ``total_bytes``."""
        n = self.num_devices
        if n <= 1:
            return 0.0
        return 2.0 * (n - 1) / n * total_bytes / self.bandwidth + 2.0 * (n - 1) * self.latency

    def broadcast(self, shard_bytes: float) -> float:
        """Pipelined broadcast of one shard from its owner to all devices."""
        if self.num_devices <= 1:
            return 0.0
        return shard_bytes / self.bandwidth + self.latency

    def all_gather_padded(self, total_bytes: float, ratios: Sequence[float]) -> float:
        """Padded NCCL All-Gather (Sec. 2.5.1, left of Fig. 3)."""
        n = self.num_devices
        if n <= 1:
            return 0.0
        largest = total_bytes * max_ratio(ratios)
        padded_total = n * largest
        ring = (n - 1) * largest / self.bandwidth + (n - 1) * self.latency
        pad_trim = max(padded_total - total_bytes, 0.0) / MEMCPY_BANDWIDTH
        return ring + pad_trim + self.kernel_overhead

    def all_gather_grouped(self, total_bytes: float, ratios: Sequence[float]) -> float:
        """Grouped-Broadcast All-Gather (Sec. 2.5.1, right of Fig. 3)."""
        n = self.num_devices
        if n <= 1:
            return 0.0
        transfer = total_bytes / self.bandwidth
        per_call = n * (self.latency + self.kernel_overhead)
        return transfer + per_call

    def reduce_scatter(self, total_bytes: float, ratios: Sequence[float]) -> float:
        """Padded ring Reduce-Scatter; time follows the largest output shard."""
        n = self.num_devices
        if n <= 1:
            return 0.0
        largest = total_bytes * max_ratio(ratios)
        ring = (n - 1) * largest / self.bandwidth + (n - 1) * self.latency
        pad_trim = max(n * largest - total_bytes, 0.0) / MEMCPY_BANDWIDTH
        return ring + pad_trim + self.kernel_overhead

    def all_to_all(self, total_bytes: float, ratios: Sequence[float]) -> float:
        """All-To-All resharding between two sharding dimensions."""
        n = self.num_devices
        if n <= 1:
            return 0.0
        largest = total_bytes * max_ratio(ratios)
        return (n - 1) * largest / self.bandwidth + (n - 1) * self.latency + self.kernel_overhead

    # -- dispatch ----------------------------------------------------------------
    def collective_time(
        self, kind: CollectiveKind, total_bytes: float, ratios: Sequence[float]
    ) -> float:
        """Time of an arbitrary collective request."""
        if kind is CollectiveKind.ALL_REDUCE:
            return self.all_reduce(total_bytes)
        if kind is CollectiveKind.ALL_GATHER:
            return self.all_gather_padded(total_bytes, ratios)
        if kind is CollectiveKind.ALL_GATHER_GROUPED:
            return self.all_gather_grouped(total_bytes, ratios)
        if kind is CollectiveKind.REDUCE_SCATTER:
            return self.reduce_scatter(total_bytes, ratios)
        if kind is CollectiveKind.ALL_TO_ALL:
            return self.all_to_all(total_bytes, ratios)
        if kind is CollectiveKind.BROADCAST:
            return self.broadcast(total_bytes * max_ratio(ratios))
        if kind is CollectiveKind.SLICE:
            # Purely local: a strided copy of the device's own slice.
            return total_bytes * max_ratio(ratios) / MEMCPY_BANDWIDTH
        raise ValueError(f"unknown collective kind {kind!r}")

    def time(self, request: CommRequest) -> float:
        """Time of a :class:`CommRequest`."""
        return self.collective_time(request.kind, request.total_bytes, request.ratios)

    def best_all_gather(
        self, total_bytes: float, ratios: Sequence[float]
    ) -> Tuple[CollectiveKind, float]:
        """Choose the faster All-Gather implementation for these ratios.

        Returns the winning kind and its predicted time; this is the decision
        HAP folds into program synthesis via the Grouped-Broadcast rule.
        """
        padded = self.all_gather_padded(total_bytes, ratios)
        grouped = self.all_gather_grouped(total_bytes, ratios)
        if padded <= grouped:
            return CollectiveKind.ALL_GATHER, padded
        return CollectiveKind.ALL_GATHER_GROUPED, grouped

    def effective_bandwidth(
        self, kind: CollectiveKind, total_bytes: float, ratios: Sequence[float]
    ) -> float:
        """Apparent bandwidth (full tensor size / time), the Fig. 4 metric."""
        t = self.collective_time(kind, total_bytes, ratios)
        return total_bytes / t if t > 0 else float("inf")
