"""Numpy execution runtimes: single-device reference and SPMD emulation."""

from .single import SingleDeviceExecutor, init_parameters, make_batch

__all__ = ["SingleDeviceExecutor", "init_parameters", "make_batch"]
