"""Numpy execution runtimes: single-device reference and SPMD emulation."""

from .single import SingleDeviceExecutor, init_parameters, make_batch
from .spmd import (
    BoundaryChannel,
    HierarchicalExecutor,
    HierarchicalResult,
    SPMDExecutor,
    SPMDResult,
    run_hierarchical_plan,
    run_plan,
)

__all__ = [
    "SingleDeviceExecutor",
    "init_parameters",
    "make_batch",
    "BoundaryChannel",
    "SPMDExecutor",
    "SPMDResult",
    "run_plan",
    "HierarchicalExecutor",
    "HierarchicalResult",
    "run_hierarchical_plan",
]
