"""SPMD emulation runtime: execute a distributed program on simulated ranks.

The paper executes the synthesized program ``Q`` on every worker with the
PyTorch runtime and NCCL collectives.  This reproduction emulates the same
execution inside one process: every virtual device is a *rank* holding numpy
arrays, computation instructions run the reference operator kernel on each
rank's local operands, and collective instructions call the functional
implementations in :mod:`repro.collectives.functional`.

The runtime is the semantic ground truth used by the test suite: for any
synthesized program, the loss and the updated parameters it produces must
match the single-device execution of the original training graph (up to
floating-point reduction-order noise).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..collectives import functional
from ..collectives.cost import CollectiveKind
from ..core.instructions import CommInstruction, CompInstruction, Instruction
from ..core.program import DistributedProgram
from ..core.properties import DistState, Property, StateKind
from ..graph.graph import ComputationGraph, GraphError
from ..graph.ops import get_op
from .sharding import local_sizes, split_along


@dataclass
class SPMDResult:
    """Result of one emulated training iteration.

    Attributes:
        loss: the global scalar loss (partial losses summed across ranks when
            the loss is held in a partial state).
        outputs: per-output global tensors, reassembled from the ranks.
        per_rank_bytes: rough per-rank memory footprint of live tensors.
    """

    loss: Optional[float]
    outputs: Dict[str, np.ndarray]
    per_rank_bytes: List[int]


class SPMDExecutor:
    """Executes a :class:`DistributedProgram` on ``m`` emulated ranks."""

    def __init__(
        self,
        program: DistributedProgram,
        ratios: Sequence[float],
        batch_hint: Optional[int] = None,
        batch_scale: int = 1,
    ) -> None:
        self.program = program
        self.graph: ComputationGraph = program.graph
        self.world = program.num_devices
        if len(list(ratios)) != self.world:
            raise ValueError(
                f"expected {self.world} ratios, got {len(list(ratios))}"
            )
        #: Explicit batch size for ratio snapping.  Pipeline-stage graphs mix
        #: placeholders whose leading dimension is the batch (data, incoming
        #: activations) with flattened ``batch*seq`` activations and gradient
        #: seeds, so the batch cannot always be inferred from the graph alone.
        self._batch_hint = batch_hint
        #: Microbatch execution: the program's node specs describe the *full*
        #: mini-batch, but bindings arrive with every batch-derived leading
        #: dimension divided by ``batch_scale``.  Placeholder shape checks
        #: and shape-bearing attributes (reshape targets, conv input shapes,
        #: broadcast targets) are rescaled accordingly; all operator kernels
        #: already compute from the actual operand sizes.
        if batch_scale < 1:
            raise ValueError("batch_scale must be >= 1")
        self._batch_scale = batch_scale
        self.ratios = self._snap_to_batch(list(ratios))
        # (ref, state) -> list of per-rank local arrays
        self._env: Dict[Tuple[str, DistState], List[np.ndarray]] = {}
        # Registry of uneven per-rank sizes along MoE capacity dimensions,
        # keyed by the total concatenated size; used to undo an All-To-All.
        self._uneven_splits: Dict[int, List[int]] = {}

    def _snap_to_batch(self, ratios: List[float]) -> List[float]:
        """Quantise ratios to the batch-dimension granularity.

        All data placeholders share the batch size ``B`` (a model-zoo
        convention).  Using exact multiples of ``1/B`` as ratios guarantees
        that every tensor whose leading dimension is a multiple of the batch
        (e.g. the flattened ``B*seq`` token dimension) is split into local
        sizes consistent with the locally derived shards, even under heavily
        skewed ratios.  The planner's fractional ratios are rounded to the
        nearest feasible integer partition of the batch, exactly as the
        paper's runtime loads "a mini-batch of input data according to their
        sharding ratios" (Sec. 6).
        """
        if self._batch_hint is not None:
            batch = self._batch_hint
        else:
            placeholders = self.graph.placeholders()
            batch_sizes = {p.spec.shape[0] for p in placeholders if p.spec.rank > 0}
            if len(batch_sizes) != 1:
                return ratios
            batch = batch_sizes.pop()
        from ..graph.tensor import shard_sizes

        sizes = shard_sizes(batch, ratios)
        return [s / batch for s in sizes]

    # -- public API ---------------------------------------------------------------
    def run(
        self,
        bindings: Mapping[str, np.ndarray],
        stop_after: Optional[Sequence[str]] = None,
    ) -> SPMDResult:
        """Execute the program for one iteration.

        Args:
            bindings: *global* values for every placeholder and parameter of
                the single-device graph (each rank receives its shard/replica
                according to the program's source instructions).
            stop_after: optional reference-tensor names; execution stops as
                soon as all of them have been produced (in any distribution
                state).  Used by the hierarchical runtime's forward sweep to
                harvest boundary activations without paying for the stage's
                backward pass.

        Returns:
            The global loss and reassembled output tensors (of whatever was
            produced before stopping).
        """
        self._env.clear()
        self._uneven_splits.clear()
        remaining = set(stop_after) if stop_after else None
        for instr in self.program.instructions:
            if isinstance(instr, CommInstruction):
                self._run_comm(instr)
            else:
                self._run_comp(instr, bindings)
            if remaining is not None:
                remaining.discard(instr.output.ref)
                if not remaining:
                    break
        return self._collect_results()

    # -- result assembly -------------------------------------------------------------
    def _collect_results(self) -> SPMDResult:
        outputs: Dict[str, np.ndarray] = {}
        loss_value: Optional[float] = None
        for name in self.graph.outputs:
            value = self._gather_ref(name)
            if value is not None:
                outputs[name] = value
        if self.graph.loss is not None:
            loss = self._gather_ref(self.graph.loss)
            if loss is not None:
                loss_value = float(loss)
        per_rank = [0] * self.world
        for (_ref, _state), arrays in self._env.items():
            for j, arr in enumerate(arrays):
                per_rank[j] += arr.nbytes
        return SPMDResult(loss=loss_value, outputs=outputs, per_rank_bytes=per_rank)

    def _gather_ref(self, ref: str) -> Optional[np.ndarray]:
        """Reassemble the global value of a reference tensor from any state."""
        for (name, state), arrays in self._env.items():
            if name != ref:
                continue
            if state.is_replicated:
                return arrays[0]
            if state.is_partial:
                return np.sum(np.stack(arrays, axis=0), axis=0)
            if state.is_sharded:
                parts = [a for a in arrays if a.size > 0]
                return np.concatenate(parts, axis=state.dim)
        return None

    def gather(self, ref: str) -> Optional[np.ndarray]:
        """Global value of any tensor produced by the most recent :meth:`run`.

        Unlike :class:`SPMDResult` outputs this is not limited to the graph's
        marked outputs; the hierarchical runtime uses it to harvest raw
        per-parameter gradients for cross-microbatch accumulation.
        """
        return self._gather_ref(ref)

    # -- computation instructions -------------------------------------------------------
    def _run_comp(self, instr: CompInstruction, bindings: Mapping[str, np.ndarray]) -> None:
        if instr.op in ("placeholder", "parameter", "constant"):
            self._run_source(instr, bindings)
            return
        op = get_op(instr.op)
        node = self.graph[instr.node]
        locals_per_rank: List[np.ndarray] = []
        inputs_per_rank = [
            self._lookup(prop) for prop in instr.inputs
        ]  # list over operands of list over ranks
        batch_scaled = self._input_is_batch_scaled(instr, inputs_per_rank)
        for rank in range(self.world):
            args = [operand[rank] for operand in inputs_per_rank]
            attrs = self._local_attrs(instr, node.attrs, args, rank, batch_scaled)
            locals_per_rank.append(np.asarray(op.execute(args, attrs)))
        self._store(instr.output, locals_per_rank)

    def _input_is_batch_scaled(
        self, instr: CompInstruction, inputs_per_rank: Sequence[List[np.ndarray]]
    ) -> bool:
        """True when operand 0 runs at ``1/batch_scale`` of its spec size.

        Microbatched execution shrinks batch-derived tensors but leaves
        batch-independent ones (positional embeddings, parameters) at spec
        size; comparing the operand's actual global numel against its spec is
        exact evidence either way, unlike leading-dim divisibility.
        """
        if self._batch_scale == 1 or not inputs_per_rank:
            return False
        arrays = inputs_per_rank[0]
        state = instr.inputs[0].state
        global_numel = sum(a.size for a in arrays) if state.is_sharded else arrays[0].size
        return global_numel * self._batch_scale == self.graph[instr.inputs[0].ref].spec.numel

    def _scaled_shape(self, shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Shape with the batch-derived leading dimension divided by the scale.

        Batch-derived leading dimensions are the batch or a ``batch*seq``
        flattening — always a multiple of the full batch size, which is how
        they are recognised when the batch hint is available (so a seq- or
        hidden-sized leading dimension is never falsely rescaled).  Without a
        hint, divisibility by the scale is the fallback guard.
        """
        scale = self._batch_scale
        if scale == 1 or not shape:
            return shape
        full_batch = self._batch_hint * scale if self._batch_hint else None
        if full_batch is not None:
            if shape[0] % full_batch != 0:
                return shape
        elif shape[0] % scale != 0:
            return shape
        return (shape[0] // scale,) + tuple(shape[1:])

    def _run_source(self, instr: CompInstruction, bindings: Mapping[str, np.ndarray]) -> None:
        node = self.graph[instr.node]
        expected = node.spec.shape
        if instr.op == "constant":
            value = np.broadcast_to(
                np.asarray(node.attrs.get("value", 0.0), dtype=np.float32), expected
            ).astype(np.float32)
        else:
            if instr.node not in bindings:
                raise GraphError(f"missing binding for {instr.op} {instr.node!r}")
            value = np.asarray(bindings[instr.node])
            if instr.op == "placeholder" and self._batch_scale > 1:
                # Microbatched bindings shrink in batch-derived dimensions —
                # including MoE capacity dimensions that are not leading — so
                # only the rank is checked; every kernel computes from the
                # actual operand sizes.
                if value.ndim != len(node.spec.shape):
                    raise GraphError(
                        f"binding for {instr.node!r} has rank {value.ndim}, "
                        f"expected {len(node.spec.shape)}"
                    )
            elif tuple(value.shape) != expected:
                raise GraphError(
                    f"binding for {instr.node!r} has shape {value.shape}, expected {expected}"
                )
        state = instr.output.state
        if state.is_replicated:
            arrays = [value.copy() for _ in range(self.world)]
        elif state.is_sharded:
            arrays = split_along(value, state.dim, self.ratios)
        else:
            raise GraphError(f"source {instr.node!r} cannot be created in a partial state")
        self._store(instr.output, arrays)

    def _local_attrs(
        self,
        instr: CompInstruction,
        attrs: Mapping[str, object],
        args: Sequence[np.ndarray],
        rank: int,
        batch_scaled: bool = False,
    ) -> Dict[str, object]:
        """Adjust shape-bearing attributes for the rank-local operand sizes."""
        local = dict(attrs)
        out_state = instr.output.state
        if instr.op in ("reshape",) and out_state.is_sharded:
            shape = [int(d) for d in local["shape"]]
            if batch_scaled and shape[0] % self._batch_scale == 0:
                # Rescale the batch-derived leading dimension first, so a
                # shard dimension other than 0 is not made to absorb the
                # microbatch scaling.  Guarded by actual operand-size
                # evidence, so batch-independent reshapes are never touched.
                shape[0] //= self._batch_scale
            other = 1
            for i, d in enumerate(shape):
                if i != out_state.dim:
                    other *= d
            local_numel = int(args[0].size)
            shape[out_state.dim] = max(local_numel // max(other, 1), 0)
            local["shape"] = tuple(shape)
        elif instr.op in ("reshape",) and batch_scaled:
            # Microbatched replicated reshape: the attribute's leading
            # dimension carries the full-batch size; recover it from the
            # actual operand numel.
            shape = [int(d) for d in local["shape"]]
            other = 1
            for d in shape[1:]:
                other *= d
            shape[0] = max(int(args[0].size) // max(other, 1), 0)
            local["shape"] = tuple(shape)
        elif instr.op == "broadcast_to" and out_state.is_sharded:
            raise GraphError("broadcast_to cannot produce a sharded tensor")
        elif instr.op == "broadcast_to" and self._batch_scale > 1:
            local["shape"] = self._scaled_shape(tuple(int(d) for d in local["shape"]))
        elif instr.op == "conv2d_grad_input" and (
            out_state.is_sharded or self._batch_scale > 1
        ):
            shape = [int(d) for d in local["input_shape"]]
            shape[0] = int(args[0].shape[0])
            local["input_shape"] = tuple(shape)
        elif instr.op == "cross_entropy_grad":
            pass  # shapes follow the operands
        elif instr.op == "moe_combine_grad" and (
            out_state.is_sharded or self._batch_scale > 1
        ):
            # Local capacity must match the local forward dispatch: recompute
            # it from the local token count with the layer's capacity factor.
            gates = args[1]
            num_experts = gates.shape[1]
            factor = float(local.get("capacity_factor", 1.25))
            local_tokens = int(gates.shape[0])
            local["capacity"] = max(1, int(math.ceil(local_tokens / num_experts * factor)))
        return local

    # -- communication instructions ---------------------------------------------------------
    def _run_comm(self, instr: CommInstruction) -> None:
        arrays = self._lookup(instr.input)
        kind = instr.kind
        if kind is CollectiveKind.ALL_REDUCE:
            out = functional.all_reduce(arrays)
        elif kind in (CollectiveKind.ALL_GATHER, CollectiveKind.ALL_GATHER_GROUPED):
            out = functional.all_gather(arrays, instr.input.state.dim)
        elif kind is CollectiveKind.REDUCE_SCATTER:
            dim = instr.output.state.dim
            # The actual operand size, not the spec's: under microbatched
            # execution batch-derived dimensions run at 1/batch_scale.
            sizes = local_sizes(arrays[0].shape[dim], self.ratios)
            out = functional.reduce_scatter(arrays, dim, sizes)
        elif kind is CollectiveKind.ALL_TO_ALL:
            out = self._run_all_to_all(instr, arrays)
        elif kind is CollectiveKind.SLICE:
            dim = instr.output.state.dim
            out = [
                split_along(arrays[rank], dim, self.ratios)[rank]
                for rank in range(self.world)
            ]
        elif kind is CollectiveKind.BROADCAST:
            out = functional.broadcast(arrays[0], self.world)
        else:  # pragma: no cover - defensive
            raise GraphError(f"unsupported collective {kind!r}")
        self._store(instr.output, out)

    def _run_all_to_all(
        self, instr: CommInstruction, arrays: Sequence[np.ndarray]
    ) -> List[np.ndarray]:
        src_dim = instr.input.state.dim
        dst_dim = instr.output.state.dim
        src_sizes = [a.shape[src_dim] for a in arrays]
        concat_total = sum(src_sizes)
        dst_total = arrays[0].shape[dst_dim]
        # Remember how the source dimension was split so the inverse
        # All-To-All (e.g. MoE backward) can restore exactly the same layout.
        self._uneven_splits[concat_total] = src_sizes
        if dst_total in self._uneven_splits and len(self._uneven_splits[dst_total]) == self.world:
            dst_sizes = self._uneven_splits[dst_total]
        else:
            dst_sizes = local_sizes(dst_total, self.ratios)
        return functional.all_to_all(arrays, src_dim, dst_dim, dst_sizes)

    # -- environment helpers --------------------------------------------------------------
    def _lookup(self, prop: Property) -> List[np.ndarray]:
        key = (prop.ref, prop.state)
        if key not in self._env:
            raise GraphError(
                f"distributed tensor {prop.ref!r} in state {prop.state} has not been produced"
            )
        return self._env[key]

    def _store(self, prop: Property, arrays: List[np.ndarray]) -> None:
        self._env[(prop.ref, prop.state)] = arrays


def run_plan(
    plan,
    bindings: Mapping[str, np.ndarray],
) -> SPMDResult:
    """Execute a :class:`~repro.core.pipeline.HAPPlan` for one iteration."""
    executor = SPMDExecutor(plan.program, plan.flat_ratios)
    return executor.run(bindings)


# ---------------------------------------------------------------------------
# Hierarchical (pipeline-over-SPMD) execution
# ---------------------------------------------------------------------------

class BoundaryChannel:
    """Double-buffered boundary handoff between pipeline tasks.

    The emulation analogue of asynchronous sends on a stage's communication
    stream: a task *issues* its boundary payload (activations downstream,
    gradient contributions upstream) the moment it completes and immediately
    frees its compute stream for the next task in its schedule order; the
    receiving task *drains* the payloads of its microbatch when it starts.
    Between issue and drain the payload is in flight — with a 1F1B steady
    state the sender typically runs the compute for microbatch ``k + 1``
    while microbatch ``k``'s output is still undelivered, which is exactly
    the task order the schedule simulator times.

    The channel records an event log (``("send"|"drain", kind, virtual_stage,
    microbatch)``) and the peak number of simultaneously in-flight payloads,
    so tests can assert the double-buffered ordering and the extra buffer
    occupancy it costs.
    """

    def __init__(self) -> None:
        #: microbatch -> ref -> activation payload awaiting delivery.
        self._acts: Dict[int, Dict[str, np.ndarray]] = {}
        #: microbatch -> ref -> list of gradient contributions awaiting
        #: delivery (several downstream consumers may send for the same ref).
        self._grads: Dict[int, Dict[str, List[np.ndarray]]] = {}
        self.events: List[Tuple[str, str, int, int]] = []
        self.inflight_payloads = 0
        self.peak_inflight_payloads = 0

    def send_activations(
        self, virtual_stage: int, microbatch: int, payload: Mapping[str, np.ndarray]
    ) -> None:
        """Issue a forward task's boundary activations without blocking."""
        store = self._acts.setdefault(microbatch, {})
        for ref, value in payload.items():
            store[ref] = value
            self.inflight_payloads += 1
        self.peak_inflight_payloads = max(
            self.peak_inflight_payloads, self.inflight_payloads
        )
        self.events.append(("send", "act", virtual_stage, microbatch))

    def send_gradients(
        self, virtual_stage: int, microbatch: int, payload: Mapping[str, np.ndarray]
    ) -> None:
        """Issue a backward task's upstream gradient contributions."""
        store = self._grads.setdefault(microbatch, {})
        for ref, value in payload.items():
            store.setdefault(ref, []).append(value)
            self.inflight_payloads += 1
        self.peak_inflight_payloads = max(
            self.peak_inflight_payloads, self.inflight_payloads
        )
        self.events.append(("send", "grad", virtual_stage, microbatch))

    def drain(
        self,
        virtual_stage: int,
        microbatch: int,
        activations: Dict[str, np.ndarray],
        grads: Dict[str, np.ndarray],
    ) -> None:
        """Deliver every in-flight payload of ``microbatch`` to the consumer.

        Gradient contributions for the same reference are summed on
        delivery, mirroring the accumulation the blocking handoff performed
        at send time.
        """
        acts = self._acts.pop(microbatch, None)
        if acts:
            self.inflight_payloads -= len(acts)
            activations.update(acts)
        pending = self._grads.pop(microbatch, None)
        if pending:
            for ref, contributions in pending.items():
                self.inflight_payloads -= len(contributions)
                total = contributions[0]
                for extra in contributions[1:]:
                    total = total + extra
                grads[ref] = grads[ref] + total if ref in grads else total
        self.events.append(("drain", "any", virtual_stage, microbatch))

    @property
    def drained(self) -> bool:
        """True when nothing is left in flight (end-of-iteration invariant)."""
        return not self._acts and not self._grads


@dataclass
class HierarchicalResult:
    """Result of one emulated iteration of a hierarchical plan.

    Attributes:
        loss: the global scalar loss (computed by the last stage).
        updated_parameters: parameter name -> updated global value, unified
            across stages (stage graphs generate their own update-node names,
            so results are keyed by the original parameter).
        outputs: raw per-stage output tensors keyed by output-node name.
        per_stage_rank_bytes: per-stage per-rank memory footprints.
    """

    loss: Optional[float]
    updated_parameters: Dict[str, np.ndarray]
    outputs: Dict[str, np.ndarray]
    per_stage_rank_bytes: List[List[int]]


class HierarchicalExecutor:
    """Executes a :class:`~repro.core.hierarchical.HierarchicalPlan`.

    Every *model chunk* of the plan is an independent :class:`SPMDExecutor`
    over its stage's machine group — an interleaved plan keeps ``v`` chunk
    programs resident per group, a plain pipeline keeps one (the degenerate
    ``v == 1`` case of the same code path).  Execution chains the chunks in
    virtual-stage order (``k = chunk * s + stage``) through explicit
    activation/gradient handoff on **every virtual boundary** — interior hops
    and the interleaved wrap hops from the last physical stage back to the
    first alike — the emulation analogue of the point-to-point sends of a
    real pipeline schedule:

    1. a *forward task* of virtual stage ``k`` runs its chunk program only
       until its boundary-output activations are produced (the backward
       instructions never execute; gradient seeds are bound to zeros purely
       as a fallback), and hands the activations downstream;
    2. a *backward task* re-runs the chunk program with the gradient seeds
       bound to the (summed) gradients received from its downstream
       consumers, producing the chunk's parameter updates and the gradients
       it sends upstream.

    When the plan schedules ``m > 1`` microbatches (and the global batch is
    divisible by ``m``), the mini-batch is split along the leading dimension
    and the tasks execute **in the plan's schedule order** (Megatron-style
    interleaved 1F1B included), resolved one task at a time through the same
    dependency rules as the schedule simulator.  The task order only affects
    timing, not numerics: per-parameter gradients are accumulated across
    microbatches (per physical stage the backward tasks of a chunk run in
    microbatch order, so the accumulation order matches a sequential sweep)
    and the SGD update is applied exactly once per iteration, mirroring the
    once-per-iteration gradient synchronisation of the simulated schedules.
    Because the IR's loss reductions are sums over the batch, the summed
    microbatch gradients and losses match the full-batch run bit-for-bit up
    to floating-point reduction order.

    The re-execution of the forward part during a backward task is exactly
    activation recomputation (gradient checkpointing); with deterministic
    kernels the recomputed activations are identical, so the chained result
    matches single-device training up to floating-point reduction order.
    """

    def __init__(self, plan, num_microbatches: Optional[int] = None) -> None:
        self.plan = plan
        self.chunks = list(plan.chunk_sequence())
        self.num_stages = len(plan.stages)
        self.chunks_per_stage = len(self.chunks) // self.num_stages
        m = plan.num_microbatches if num_microbatches is None else num_microbatches
        batch = plan.batch_size
        if m > 1 and (batch is None or batch % m != 0):
            m = 1  # cannot split evenly: run the whole batch at once
        self.num_microbatches = max(1, int(m))
        scale = self.num_microbatches
        hint = batch // scale if (batch is not None and scale > 1) else batch
        self.executors = [
            SPMDExecutor(chunk.program, chunk.ratios, batch_hint=hint, batch_scale=scale)
            for chunk in self.chunks
        ]
        #: Boundary channel of the most recent scheduled run (for inspection).
        self.channel: Optional[BoundaryChannel] = None

    def _chunk_bindings(
        self,
        chunk,
        bindings: Mapping[str, np.ndarray],
        activations: Mapping[str, np.ndarray],
        grads: Optional[Mapping[str, np.ndarray]],
    ) -> Dict[str, np.ndarray]:
        """Bindings for one chunk run: data, params, activations, grad seeds."""
        info = chunk.info
        scale = self.num_microbatches
        seed_ref = {seed: ref for ref, seed in info.grad_input_of.items()}
        out: Dict[str, np.ndarray] = {}
        for node in info.graph:
            if node.op not in ("placeholder", "parameter"):
                continue
            name = node.name
            if name in seed_ref:
                ref = seed_ref[name]
                if grads is not None and ref in grads:
                    out[name] = grads[ref]
                else:
                    shape = list(node.spec.shape)
                    batch = self.plan.batch_size
                    if scale > 1 and shape and batch and shape[0] % batch == 0:
                        shape[0] //= scale
                    out[name] = np.zeros(tuple(shape), dtype=np.float32)
            elif name in activations:
                out[name] = activations[name]
            elif name in bindings:
                out[name] = np.asarray(bindings[name])
            else:
                raise GraphError(
                    f"virtual stage {chunk.virtual_index}: no binding or "
                    f"upstream activation for {name!r}"
                )
        return out

    def _data_placeholders(self) -> set:
        """Original-graph placeholders fed from user bindings (not handoffs)."""
        seeds: set = set()
        incoming: set = set()
        for chunk in self.chunks:
            seeds.update(chunk.info.grad_input_of.values())
            incoming.update(chunk.info.boundary_outputs)
        names: set = set()
        for chunk in self.chunks:
            for node in chunk.info.graph:
                if (
                    node.op == "placeholder"
                    and node.name not in seeds
                    and node.name not in incoming
                ):
                    names.add(node.name)
        return names

    def _record_bytes(
        self, per_chunk_bytes: List[List[int]], k: int, rank_bytes: Sequence[int]
    ) -> None:
        if per_chunk_bytes[k]:
            per_chunk_bytes[k] = [
                max(a, b) for a, b in zip(per_chunk_bytes[k], rank_bytes)
            ]
        else:
            per_chunk_bytes[k] = list(rank_bytes)

    def _per_stage_bytes(self, per_chunk_bytes: List[List[int]]) -> List[List[int]]:
        """Fold per-chunk rank footprints into per-physical-stage totals.

        Chunk programs of one group are resident simultaneously, so their
        peak footprints add.
        """
        per_stage: List[List[int]] = []
        for stage in self.plan.stages:
            totals: Optional[List[int]] = None
            for chunk in stage.chunks:
                b = per_chunk_bytes[chunk.virtual_index]
                if not b:
                    continue
                totals = list(b) if totals is None else [x + y for x, y in zip(totals, b)]
            per_stage.append(totals or [])
        return per_stage

    def _forward_task(
        self,
        k: int,
        micro_bindings: Mapping[str, np.ndarray],
        activations: Dict[str, np.ndarray],
        per_chunk_bytes: List[List[int]],
        channel: Optional[BoundaryChannel] = None,
        microbatch: int = 0,
    ) -> None:
        """Run chunk ``k``'s forward up to its boundary and issue the send.

        With a :class:`BoundaryChannel` the boundary activations are issued
        as an in-flight payload (the sender's next task may run before the
        receiver drains it); without one they are delivered synchronously —
        the blocking handoff of the whole-batch path.
        """
        chunk = self.chunks[k]
        if not chunk.info.boundary_outputs:
            return  # final chunk: its forward is folded into the backward task
        executor = self.executors[k]
        result = executor.run(
            self._chunk_bindings(chunk, micro_bindings, activations, None),
            stop_after=chunk.info.boundary_outputs,
        )
        self._record_bytes(per_chunk_bytes, k, result.per_rank_bytes)
        payload = {ref: result.outputs[ref] for ref in chunk.info.boundary_outputs}
        if channel is not None:
            channel.send_activations(k, microbatch, payload)
        else:
            activations.update(payload)

    def _backward_task(
        self,
        k: int,
        micro_bindings: Mapping[str, np.ndarray],
        activations: Dict[str, np.ndarray],
        grads: Dict[str, np.ndarray],
        gradients: Optional[Dict[str, np.ndarray]],
        outputs: Optional[Dict[str, np.ndarray]],
        per_chunk_bytes: List[List[int]],
        channel: Optional[BoundaryChannel] = None,
        microbatch: int = 0,
    ) -> Optional[float]:
        """Full run of chunk ``k`` with downstream gradient seeds bound.

        Accumulates per-parameter gradients into ``gradients`` (when
        provided), issues the upstream boundary gradients (through the
        double-buffered ``channel`` when given, synchronously otherwise) and
        frees the chunk's own handoffs — once its backward ran, every
        downstream consumer of this microbatch is already done and drained.
        """
        chunk = self.chunks[k]
        executor = self.executors[k]
        result = executor.run(
            self._chunk_bindings(chunk, micro_bindings, activations, grads)
        )
        self._record_bytes(per_chunk_bytes, k, result.per_rank_bytes)
        if gradients is not None:
            for param, grad_node in chunk.info.gradients.items():
                value = executor.gather(grad_node)
                if value is not None:
                    gradients[param] = (
                        value if param not in gradients else gradients[param] + value
                    )
        upstream = {
            ref: result.outputs[grad_node]
            for ref, grad_node in chunk.info.grad_output_of.items()
        }
        if channel is not None:
            if upstream:
                channel.send_gradients(k, microbatch, upstream)
        else:
            for ref, contribution in upstream.items():
                grads[ref] = grads[ref] + contribution if ref in grads else contribution
        if outputs is not None:
            outputs.update(result.outputs)
        for ref in chunk.info.boundary_outputs:
            activations.pop(ref, None)
            grads.pop(ref, None)
        return result.loss if chunk.info.loss is not None else None

    def _one_pass(
        self,
        bindings: Mapping[str, np.ndarray],
        per_chunk_bytes: List[List[int]],
    ):
        """One forward+backward sweep over all chunks for the whole batch.

        Returns ``(loss, outputs)``; the chunk graphs' own ``sgd_update``
        nodes compute the updated parameters, so no gradient reassembly or
        accumulation is needed.
        """
        activations: Dict[str, np.ndarray] = {}
        for k in range(len(self.chunks) - 1):
            self._forward_task(k, bindings, activations, per_chunk_bytes)
        grads: Dict[str, np.ndarray] = {}
        loss: Optional[float] = None
        outputs: Dict[str, np.ndarray] = {}
        for k in reversed(range(len(self.chunks))):
            task_loss = self._backward_task(
                k, bindings, activations, grads, None, outputs, per_chunk_bytes
            )
            if task_loss is not None:
                loss = task_loss
        return loss, outputs

    def _task_orders(self, m: int) -> List[List]:
        """Per-physical-stage task lists in the plan's schedule order.

        Falls back to a sequential per-microbatch sweep when the plan's
        schedule cannot express the configuration (e.g. a microbatch count
        override that violates the interleaved divisibility rule, or a
        single-chunk schedule name with several resident chunks).
        """
        from ..simulator.schedule import get_schedule

        s, v = self.num_stages, self.chunks_per_stage
        name = getattr(self.plan, "schedule_name", "gpipe")
        try:
            impl = get_schedule(name, num_model_chunks=v)
            if impl.num_model_chunks != v:
                raise ValueError(f"schedule {name!r} cannot host {v} chunks per stage")
            impl.validate(s, m)
            return impl.task_orders(s, m, v)
        except (KeyError, ValueError):
            orders: List[List] = [[] for _ in range(s)]
            for j in range(m):
                for c in range(v):
                    for i in range(s):
                        orders[i].append(("F", c, j))
                for c in reversed(range(v)):
                    for i in range(s):
                        orders[i].append(("B", c, j))
            return orders

    def _run_scheduled(self, bindings: Mapping[str, np.ndarray]) -> HierarchicalResult:
        """Microbatched iteration driven by the schedule's task order.

        Tasks are executed one at a time; a stage's head task runs as soon
        as its dependencies are met (forward: upstream chunk forward done;
        backward: own forward and downstream backward done) — the same rules
        the schedule simulator times, minus the clock.  Boundary handoff is
        double-buffered through a :class:`BoundaryChannel`: a completed task
        issues its send and its stage immediately proceeds to the next task
        in its order, draining incoming payloads only when the consuming
        task actually starts — the executed task order therefore matches the
        asynchronous-transfer model the schedule simulator prices.
        """
        m = self.num_microbatches
        s = self.num_stages
        batch = self.plan.batch_size
        micro = batch // m
        data_names = self._data_placeholders()
        micro_bindings: List[Dict[str, np.ndarray]] = []
        for j in range(m):
            mb: Dict[str, np.ndarray] = {}
            for name, value in bindings.items():
                arr = np.asarray(value)
                if name in data_names and arr.ndim > 0 and arr.shape[0] == batch:
                    mb[name] = arr[j * micro : (j + 1) * micro]
                else:
                    mb[name] = arr
            micro_bindings.append(mb)

        orders = self._task_orders(m)
        last = len(self.chunks) - 1
        activations: List[Dict[str, np.ndarray]] = [{} for _ in range(m)]
        grads: List[Dict[str, np.ndarray]] = [{} for _ in range(m)]
        channel = self.channel = BoundaryChannel()
        done_f: set = set()
        done_b: set = set()
        heads = [0] * s
        remaining = sum(len(order) for order in orders)
        per_chunk_bytes: List[List[int]] = [[] for _ in self.chunks]
        grad_sums: Dict[str, np.ndarray] = {}
        loss_total: Optional[float] = None
        while remaining:
            progressed = False
            for i in range(s):
                while heads[i] < len(orders[i]):
                    kind, c, j = orders[i][heads[i]]
                    k = c * s + i
                    if kind == "F":
                        if k > 0 and (k - 1, j) not in done_f:
                            break
                        channel.drain(k, j, activations[j], grads[j])
                        self._forward_task(
                            k,
                            micro_bindings[j],
                            activations[j],
                            per_chunk_bytes,
                            channel=channel,
                            microbatch=j,
                        )
                        done_f.add((k, j))
                    else:
                        if (k, j) not in done_f or (
                            k != last and (k + 1, j) not in done_b
                        ):
                            break
                        channel.drain(k, j, activations[j], grads[j])
                        loss = self._backward_task(
                            k,
                            micro_bindings[j],
                            activations[j],
                            grads[j],
                            grad_sums,
                            None,
                            per_chunk_bytes,
                            channel=channel,
                            microbatch=j,
                        )
                        if loss is not None:
                            loss_total = loss if loss_total is None else loss_total + loss
                        done_b.add((k, j))
                    heads[i] += 1
                    remaining -= 1
                    progressed = True
            if not progressed:  # pragma: no cover - defensive (orders are valid)
                raise GraphError(
                    f"pipeline task order deadlocked with {remaining} tasks left"
                )
        assert channel.drained, "boundary channel must be empty after the iteration"

        updated = self._apply_updates(bindings, grad_sums)
        # Per-iteration outputs: the updated parameters under their
        # update-node names (matching the whole-batch contract) and the loss.
        # Raw per-microbatch activations/gradients are not reassembled.
        outputs: Dict[str, np.ndarray] = {}
        for chunk in self.chunks:
            for param, update_node in chunk.info.updates.items():
                outputs[update_node] = updated[param]
            if chunk.info.loss is not None and loss_total is not None:
                outputs[chunk.info.loss] = np.asarray(loss_total, dtype=np.float32)
        return HierarchicalResult(
            loss=loss_total,
            updated_parameters=updated,
            outputs=outputs,
            per_stage_rank_bytes=self._per_stage_bytes(per_chunk_bytes),
        )

    def run(self, bindings: Mapping[str, np.ndarray]) -> HierarchicalResult:
        """Execute one training iteration across all pipeline chunks.

        Args:
            bindings: global values for every placeholder and parameter of
                the *original* single-device graph (chunk graphs reuse the
                original node names, so one bindings dict serves all chunks).
        """
        if self.num_microbatches > 1:
            return self._run_scheduled(bindings)
        per_chunk_bytes: List[List[int]] = [[] for _ in self.chunks]
        loss, outputs = self._one_pass(bindings, per_chunk_bytes)
        # Whole-batch run: the graph's own sgd_update nodes computed the
        # new parameters; no accumulation is needed.
        updated = {
            param: outputs[update_node]
            for chunk in self.chunks
            for param, update_node in chunk.info.updates.items()
        }
        return HierarchicalResult(
            loss=loss,
            updated_parameters=updated,
            outputs=outputs,
            per_stage_rank_bytes=self._per_stage_bytes(per_chunk_bytes),
        )

    def _apply_updates(
        self, bindings: Mapping[str, np.ndarray], gradients: Mapping[str, np.ndarray]
    ) -> Dict[str, np.ndarray]:
        """Once-per-iteration SGD step from the microbatch-accumulated gradients.

        The chunk graphs' ``sgd_update`` nodes operate on a single pass's
        gradient, so the cross-microbatch step must be applied here in closed
        form (``param - lr * sum(grads)``).  The microbatch parity tests
        compare this against the graph-executed single-device update every
        run, so a drift in ``sgd_update`` semantics would fail loudly; the
        ``lr`` attribute is read strictly for the same reason.
        """
        updated: Dict[str, np.ndarray] = {}
        for chunk in self.chunks:
            for param, update_node in chunk.info.updates.items():
                lr = float(chunk.info.graph[update_node].attrs["lr"])
                base = np.asarray(bindings[param], dtype=np.float32)
                grad = gradients.get(param)
                updated[param] = base.copy() if grad is None else base - lr * grad
        return updated


def run_hierarchical_plan(
    plan,
    bindings: Mapping[str, np.ndarray],
    num_microbatches: Optional[int] = None,
) -> HierarchicalResult:
    """Execute a :class:`~repro.core.hierarchical.HierarchicalPlan` once."""
    return HierarchicalExecutor(plan, num_microbatches=num_microbatches).run(bindings)
