"""SPMD emulation runtime: execute a distributed program on simulated ranks.

The paper executes the synthesized program ``Q`` on every worker with the
PyTorch runtime and NCCL collectives.  This reproduction emulates the same
execution inside one process: every virtual device is a *rank* holding numpy
arrays, computation instructions run the reference operator kernel on each
rank's local operands, and collective instructions call the functional
implementations in :mod:`repro.collectives.functional`.

The runtime is the semantic ground truth used by the test suite: for any
synthesized program, the loss and the updated parameters it produces must
match the single-device execution of the original training graph (up to
floating-point reduction-order noise).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..collectives import functional
from ..collectives.cost import CollectiveKind
from ..core.instructions import CommInstruction, CompInstruction, Instruction
from ..core.program import DistributedProgram
from ..core.properties import DistState, Property, StateKind
from ..graph.graph import ComputationGraph, GraphError
from ..graph.ops import get_op
from .sharding import local_sizes, split_along


@dataclass
class SPMDResult:
    """Result of one emulated training iteration.

    Attributes:
        loss: the global scalar loss (partial losses summed across ranks when
            the loss is held in a partial state).
        outputs: per-output global tensors, reassembled from the ranks.
        per_rank_bytes: rough per-rank memory footprint of live tensors.
    """

    loss: Optional[float]
    outputs: Dict[str, np.ndarray]
    per_rank_bytes: List[int]


class SPMDExecutor:
    """Executes a :class:`DistributedProgram` on ``m`` emulated ranks."""

    def __init__(
        self,
        program: DistributedProgram,
        ratios: Sequence[float],
        batch_hint: Optional[int] = None,
    ) -> None:
        self.program = program
        self.graph: ComputationGraph = program.graph
        self.world = program.num_devices
        if len(list(ratios)) != self.world:
            raise ValueError(
                f"expected {self.world} ratios, got {len(list(ratios))}"
            )
        #: Explicit batch size for ratio snapping.  Pipeline-stage graphs mix
        #: placeholders whose leading dimension is the batch (data, incoming
        #: activations) with flattened ``batch*seq`` activations and gradient
        #: seeds, so the batch cannot always be inferred from the graph alone.
        self._batch_hint = batch_hint
        self.ratios = self._snap_to_batch(list(ratios))
        # (ref, state) -> list of per-rank local arrays
        self._env: Dict[Tuple[str, DistState], List[np.ndarray]] = {}
        # Registry of uneven per-rank sizes along MoE capacity dimensions,
        # keyed by the total concatenated size; used to undo an All-To-All.
        self._uneven_splits: Dict[int, List[int]] = {}

    def _snap_to_batch(self, ratios: List[float]) -> List[float]:
        """Quantise ratios to the batch-dimension granularity.

        All data placeholders share the batch size ``B`` (a model-zoo
        convention).  Using exact multiples of ``1/B`` as ratios guarantees
        that every tensor whose leading dimension is a multiple of the batch
        (e.g. the flattened ``B*seq`` token dimension) is split into local
        sizes consistent with the locally derived shards, even under heavily
        skewed ratios.  The planner's fractional ratios are rounded to the
        nearest feasible integer partition of the batch, exactly as the
        paper's runtime loads "a mini-batch of input data according to their
        sharding ratios" (Sec. 6).
        """
        if self._batch_hint is not None:
            batch = self._batch_hint
        else:
            placeholders = self.graph.placeholders()
            batch_sizes = {p.spec.shape[0] for p in placeholders if p.spec.rank > 0}
            if len(batch_sizes) != 1:
                return ratios
            batch = batch_sizes.pop()
        from ..graph.tensor import shard_sizes

        sizes = shard_sizes(batch, ratios)
        return [s / batch for s in sizes]

    # -- public API ---------------------------------------------------------------
    def run(
        self,
        bindings: Mapping[str, np.ndarray],
        stop_after: Optional[Sequence[str]] = None,
    ) -> SPMDResult:
        """Execute the program for one iteration.

        Args:
            bindings: *global* values for every placeholder and parameter of
                the single-device graph (each rank receives its shard/replica
                according to the program's source instructions).
            stop_after: optional reference-tensor names; execution stops as
                soon as all of them have been produced (in any distribution
                state).  Used by the hierarchical runtime's forward sweep to
                harvest boundary activations without paying for the stage's
                backward pass.

        Returns:
            The global loss and reassembled output tensors (of whatever was
            produced before stopping).
        """
        self._env.clear()
        self._uneven_splits.clear()
        remaining = set(stop_after) if stop_after else None
        for instr in self.program.instructions:
            if isinstance(instr, CommInstruction):
                self._run_comm(instr)
            else:
                self._run_comp(instr, bindings)
            if remaining is not None:
                remaining.discard(instr.output.ref)
                if not remaining:
                    break
        return self._collect_results()

    # -- result assembly -------------------------------------------------------------
    def _collect_results(self) -> SPMDResult:
        outputs: Dict[str, np.ndarray] = {}
        loss_value: Optional[float] = None
        for name in self.graph.outputs:
            value = self._gather_ref(name)
            if value is not None:
                outputs[name] = value
        if self.graph.loss is not None:
            loss = self._gather_ref(self.graph.loss)
            if loss is not None:
                loss_value = float(loss)
        per_rank = [0] * self.world
        for (_ref, _state), arrays in self._env.items():
            for j, arr in enumerate(arrays):
                per_rank[j] += arr.nbytes
        return SPMDResult(loss=loss_value, outputs=outputs, per_rank_bytes=per_rank)

    def _gather_ref(self, ref: str) -> Optional[np.ndarray]:
        """Reassemble the global value of a reference tensor from any state."""
        for (name, state), arrays in self._env.items():
            if name != ref:
                continue
            if state.is_replicated:
                return arrays[0]
            if state.is_partial:
                return np.sum(np.stack(arrays, axis=0), axis=0)
            if state.is_sharded:
                parts = [a for a in arrays if a.size > 0]
                return np.concatenate(parts, axis=state.dim)
        return None

    # -- computation instructions -------------------------------------------------------
    def _run_comp(self, instr: CompInstruction, bindings: Mapping[str, np.ndarray]) -> None:
        if instr.op in ("placeholder", "parameter", "constant"):
            self._run_source(instr, bindings)
            return
        op = get_op(instr.op)
        node = self.graph[instr.node]
        locals_per_rank: List[np.ndarray] = []
        inputs_per_rank = [
            self._lookup(prop) for prop in instr.inputs
        ]  # list over operands of list over ranks
        for rank in range(self.world):
            args = [operand[rank] for operand in inputs_per_rank]
            attrs = self._local_attrs(instr, node.attrs, args, rank)
            locals_per_rank.append(np.asarray(op.execute(args, attrs)))
        self._store(instr.output, locals_per_rank)

    def _run_source(self, instr: CompInstruction, bindings: Mapping[str, np.ndarray]) -> None:
        node = self.graph[instr.node]
        if instr.op == "constant":
            value = np.broadcast_to(
                np.asarray(node.attrs.get("value", 0.0), dtype=np.float32), node.spec.shape
            ).astype(np.float32)
        else:
            if instr.node not in bindings:
                raise GraphError(f"missing binding for {instr.op} {instr.node!r}")
            value = np.asarray(bindings[instr.node])
            if tuple(value.shape) != node.spec.shape:
                raise GraphError(
                    f"binding for {instr.node!r} has shape {value.shape}, expected {node.spec.shape}"
                )
        state = instr.output.state
        if state.is_replicated:
            arrays = [value.copy() for _ in range(self.world)]
        elif state.is_sharded:
            arrays = split_along(value, state.dim, self.ratios)
        else:
            raise GraphError(f"source {instr.node!r} cannot be created in a partial state")
        self._store(instr.output, arrays)

    def _local_attrs(
        self,
        instr: CompInstruction,
        attrs: Mapping[str, object],
        args: Sequence[np.ndarray],
        rank: int,
    ) -> Dict[str, object]:
        """Adjust shape-bearing attributes for the rank-local operand sizes."""
        local = dict(attrs)
        out_state = instr.output.state
        if instr.op in ("reshape",) and out_state.is_sharded:
            shape = [int(d) for d in local["shape"]]
            other = 1
            for i, d in enumerate(shape):
                if i != out_state.dim:
                    other *= d
            local_numel = int(args[0].size)
            shape[out_state.dim] = max(local_numel // max(other, 1), 0)
            local["shape"] = tuple(shape)
        elif instr.op == "broadcast_to" and out_state.is_sharded:
            raise GraphError("broadcast_to cannot produce a sharded tensor")
        elif instr.op == "conv2d_grad_input" and out_state.is_sharded:
            shape = [int(d) for d in local["input_shape"]]
            shape[0] = int(args[0].shape[0])
            local["input_shape"] = tuple(shape)
        elif instr.op == "cross_entropy_grad":
            pass  # shapes follow the operands
        elif instr.op == "moe_combine_grad" and out_state.is_sharded:
            # Local capacity must match the local forward dispatch: recompute
            # it from the local token count with the layer's capacity factor.
            gates = args[1]
            num_experts = gates.shape[1]
            factor = float(local.get("capacity_factor", 1.25))
            local_tokens = int(gates.shape[0])
            local["capacity"] = max(1, int(math.ceil(local_tokens / num_experts * factor)))
        return local

    # -- communication instructions ---------------------------------------------------------
    def _run_comm(self, instr: CommInstruction) -> None:
        arrays = self._lookup(instr.input)
        kind = instr.kind
        ref_spec = self.graph[instr.input.ref].spec
        if kind is CollectiveKind.ALL_REDUCE:
            out = functional.all_reduce(arrays)
        elif kind in (CollectiveKind.ALL_GATHER, CollectiveKind.ALL_GATHER_GROUPED):
            out = functional.all_gather(arrays, instr.input.state.dim)
        elif kind is CollectiveKind.REDUCE_SCATTER:
            dim = instr.output.state.dim
            sizes = local_sizes(ref_spec.shape[dim], self.ratios)
            out = functional.reduce_scatter(arrays, dim, sizes)
        elif kind is CollectiveKind.ALL_TO_ALL:
            out = self._run_all_to_all(instr, arrays)
        elif kind is CollectiveKind.SLICE:
            dim = instr.output.state.dim
            out = [
                split_along(arrays[rank], dim, self.ratios)[rank]
                for rank in range(self.world)
            ]
        elif kind is CollectiveKind.BROADCAST:
            out = functional.broadcast(arrays[0], self.world)
        else:  # pragma: no cover - defensive
            raise GraphError(f"unsupported collective {kind!r}")
        self._store(instr.output, out)

    def _run_all_to_all(
        self, instr: CommInstruction, arrays: Sequence[np.ndarray]
    ) -> List[np.ndarray]:
        src_dim = instr.input.state.dim
        dst_dim = instr.output.state.dim
        src_sizes = [a.shape[src_dim] for a in arrays]
        concat_total = sum(src_sizes)
        dst_total = arrays[0].shape[dst_dim]
        # Remember how the source dimension was split so the inverse
        # All-To-All (e.g. MoE backward) can restore exactly the same layout.
        self._uneven_splits[concat_total] = src_sizes
        if dst_total in self._uneven_splits and len(self._uneven_splits[dst_total]) == self.world:
            dst_sizes = self._uneven_splits[dst_total]
        else:
            dst_sizes = local_sizes(dst_total, self.ratios)
        return functional.all_to_all(arrays, src_dim, dst_dim, dst_sizes)

    # -- environment helpers --------------------------------------------------------------
    def _lookup(self, prop: Property) -> List[np.ndarray]:
        key = (prop.ref, prop.state)
        if key not in self._env:
            raise GraphError(
                f"distributed tensor {prop.ref!r} in state {prop.state} has not been produced"
            )
        return self._env[key]

    def _store(self, prop: Property, arrays: List[np.ndarray]) -> None:
        self._env[(prop.ref, prop.state)] = arrays


def run_plan(
    plan,
    bindings: Mapping[str, np.ndarray],
) -> SPMDResult:
    """Execute a :class:`~repro.core.pipeline.HAPPlan` for one iteration."""
    executor = SPMDExecutor(plan.program, plan.flat_ratios)
    return executor.run(bindings)


# ---------------------------------------------------------------------------
# Hierarchical (pipeline-over-SPMD) execution
# ---------------------------------------------------------------------------

@dataclass
class HierarchicalResult:
    """Result of one emulated iteration of a hierarchical plan.

    Attributes:
        loss: the global scalar loss (computed by the last stage).
        updated_parameters: parameter name -> updated global value, unified
            across stages (stage graphs generate their own update-node names,
            so results are keyed by the original parameter).
        outputs: raw per-stage output tensors keyed by output-node name.
        per_stage_rank_bytes: per-stage per-rank memory footprints.
    """

    loss: Optional[float]
    updated_parameters: Dict[str, np.ndarray]
    outputs: Dict[str, np.ndarray]
    per_stage_rank_bytes: List[List[int]]


class HierarchicalExecutor:
    """Executes a :class:`~repro.core.hierarchical.HierarchicalPlan`.

    Each pipeline stage is an independent :class:`SPMDExecutor` over the
    stage's machine group.  Execution chains the stages through explicit
    activation/gradient handoff, the emulation analogue of the point-to-point
    sends of a real pipeline schedule:

    1. *forward sweep* (stages ``0..S-2``): each stage program runs only
       until its boundary-output activations are produced (the backward
       instructions never execute; gradient seeds are bound to zeros purely
       as a fallback), and the activations are handed to the next stage;
    2. *backward sweep* (stages ``S-1..0``): each stage program re-runs with
       the gradient seeds bound to the (summed) gradients received from its
       downstream consumers, producing the stage's parameter updates and the
       gradients it sends upstream.

    The re-execution of the forward part during the backward sweep is exactly
    activation recomputation (gradient checkpointing); with deterministic
    kernels the recomputed activations are identical, so the chained result
    matches single-device training up to floating-point reduction order.
    """

    def __init__(self, plan) -> None:
        self.plan = plan
        self.executors = [
            SPMDExecutor(stage.program, stage.ratios, batch_hint=plan.batch_size)
            for stage in plan.stages
        ]

    def _stage_bindings(
        self,
        stage,
        bindings: Mapping[str, np.ndarray],
        activations: Mapping[str, np.ndarray],
        grads: Optional[Mapping[str, np.ndarray]],
    ) -> Dict[str, np.ndarray]:
        """Bindings for one stage run: data, params, activations, grad seeds."""
        info = stage.info
        seed_ref = {seed: ref for ref, seed in info.grad_input_of.items()}
        out: Dict[str, np.ndarray] = {}
        for node in info.graph:
            if node.op not in ("placeholder", "parameter"):
                continue
            name = node.name
            if name in seed_ref:
                ref = seed_ref[name]
                if grads is not None and ref in grads:
                    out[name] = grads[ref]
                else:
                    out[name] = np.zeros(node.spec.shape, dtype=np.float32)
            elif name in activations:
                out[name] = activations[name]
            elif name in bindings:
                out[name] = np.asarray(bindings[name])
            else:
                raise GraphError(
                    f"stage {stage.index}: no binding or upstream activation for {name!r}"
                )
        return out

    def run(self, bindings: Mapping[str, np.ndarray]) -> HierarchicalResult:
        """Execute one training iteration across all pipeline stages.

        Args:
            bindings: global values for every placeholder and parameter of
                the *original* single-device graph (stage graphs reuse the
                original node names, so one bindings dict serves all stages).
        """
        stages = self.plan.stages
        activations: Dict[str, np.ndarray] = {}
        # Forward sweep: produce the cut activations stage by stage.  The
        # last stage is skipped — it exports nothing downstream and runs
        # exactly once in the backward sweep.
        for stage, executor in zip(stages[:-1], self.executors[:-1]):
            result = executor.run(
                self._stage_bindings(stage, bindings, activations, None),
                stop_after=stage.info.boundary_outputs,
            )
            for ref in stage.info.boundary_outputs:
                activations[ref] = result.outputs[ref]

        grads: Dict[str, np.ndarray] = {}
        loss: Optional[float] = None
        updated: Dict[str, np.ndarray] = {}
        outputs: Dict[str, np.ndarray] = {}
        per_stage_bytes: List[List[int]] = [[] for _ in stages]
        # Backward sweep: run with real gradient seeds, collect updates and
        # propagate boundary gradients upstream (summing over consumers).
        for index in reversed(range(len(stages))):
            stage = stages[index]
            result = self.executors[index].run(
                self._stage_bindings(stage, bindings, activations, grads)
            )
            per_stage_bytes[index] = result.per_rank_bytes
            if stage.info.loss is not None:
                loss = result.loss
            for param, update_node in stage.info.updates.items():
                updated[param] = result.outputs[update_node]
            for ref, grad_node in stage.info.grad_output_of.items():
                contribution = result.outputs[grad_node]
                grads[ref] = grads[ref] + contribution if ref in grads else contribution
            outputs.update(result.outputs)
        return HierarchicalResult(
            loss=loss,
            updated_parameters=updated,
            outputs=outputs,
            per_stage_rank_bytes=per_stage_bytes,
        )


def run_hierarchical_plan(plan, bindings: Mapping[str, np.ndarray]) -> HierarchicalResult:
    """Execute a :class:`~repro.core.hierarchical.HierarchicalPlan` once."""
    return HierarchicalExecutor(plan).run(bindings)
