"""Single-device reference executor for computation graphs.

Executes a :class:`~repro.graph.graph.ComputationGraph` with numpy, producing
exactly the values the distributed SPMD runtime must emulate.  Used by tests
(gradient checks, SPMD equivalence) and by the examples.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

import numpy as np

from ..graph import grad_ops  # noqa: F401  (ensure backward ops are registered)
from ..graph.graph import ComputationGraph, GraphError
from ..graph.ops import get_op
from ..graph.tensor import DType, TensorSpec


def init_parameters(
    graph: ComputationGraph, seed: int = 0, scale: float = 0.02
) -> Dict[str, np.ndarray]:
    """Deterministically initialise all parameters of a graph.

    Mirrors the paper's setup where every worker initialises the single-device
    model with the same seed before sharding (Sec. 6).
    """
    rng = np.random.default_rng(seed)
    params: Dict[str, np.ndarray] = {}
    for node in graph.parameters():
        params[node.name] = rng.normal(0.0, scale, size=node.spec.shape).astype(np.float32)
    return params


def make_batch(
    graph: ComputationGraph, seed: int = 0, vocab_size: Optional[int] = None
) -> Dict[str, np.ndarray]:
    """Generate a synthetic input batch matching the graph's placeholders.

    Integer placeholders get random ids in ``[0, vocab_size)`` (or the range
    implied by an ``num_classes``/``vocab_size`` attribute, defaulting to 100);
    float placeholders get standard-normal data.
    """
    rng = np.random.default_rng(seed + 10_000)
    batch: Dict[str, np.ndarray] = {}
    for node in graph.placeholders():
        spec = node.spec
        if spec.dtype in (DType.INT64, DType.INT32):
            high = int(node.attrs.get("vocab_size", node.attrs.get("num_classes", vocab_size or 100)))
            batch[node.name] = rng.integers(0, high, size=spec.shape).astype(spec.dtype.numpy_name)
        else:
            batch[node.name] = rng.normal(0.0, 1.0, size=spec.shape).astype(np.float32)
    return batch


class SingleDeviceExecutor:
    """Interpret a computation graph on one (simulated) device."""

    def __init__(self, graph: ComputationGraph) -> None:
        graph.validate()
        self.graph = graph

    def run(
        self,
        bindings: Mapping[str, np.ndarray],
        outputs: Optional[Iterable[str]] = None,
        keep_all: bool = False,
    ) -> Dict[str, np.ndarray]:
        """Execute the graph.

        Args:
            bindings: values for every placeholder and parameter node.
            outputs: node names to return; defaults to the graph's outputs.
            keep_all: if True, return the values of every node.

        Returns:
            Map from node name to numpy value.

        Raises:
            GraphError: if a required binding is missing or a shape mismatches.
        """
        wanted = list(outputs) if outputs is not None else list(self.graph.outputs)
        env: Dict[str, np.ndarray] = {}
        for node in self.graph:
            if node.op in ("placeholder", "parameter"):
                if node.name not in bindings:
                    raise GraphError(f"missing binding for {node.op} {node.name!r}")
                value = np.asarray(bindings[node.name])
                if tuple(value.shape) != node.spec.shape:
                    raise GraphError(
                        f"binding for {node.name!r} has shape {value.shape}, expected {node.spec.shape}"
                    )
                env[node.name] = value
            elif node.op == "constant":
                value = np.asarray(node.attrs.get("value", 0.0), dtype=np.float32)
                env[node.name] = np.broadcast_to(value, node.spec.shape).astype(np.float32)
            else:
                op = get_op(node.op)
                args = [env[i] for i in node.inputs]
                result = op.execute(args, node.attrs)
                env[node.name] = np.asarray(result)
        if keep_all:
            return env
        return {name: env[name] for name in wanted}

    def loss_value(self, bindings: Mapping[str, np.ndarray]) -> float:
        """Convenience: execute and return the scalar loss."""
        if self.graph.loss is None:
            raise GraphError("graph has no loss node")
        return float(self.run(bindings, outputs=[self.graph.loss])[self.graph.loss])
