"""Sharding utilities shared by the SPMD runtime and the baselines.

Converts between global tensors and per-device shards according to sharding
ratios, using the integer rounding of HAP Sec. 5.1 (largest shards first, so
sizes differ by at most one at even ratios and follow the ratios otherwise).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..graph.tensor import shard_offsets, shard_sizes


def split_along(value: np.ndarray, dim: int, ratios: Sequence[float]) -> List[np.ndarray]:
    """Split a global tensor into per-device shards along ``dim``.

    Shard sizes follow ``ratios`` via :func:`repro.graph.tensor.shard_sizes`;
    devices whose ratio rounds to zero receive an empty shard.
    """
    sizes = shard_sizes(value.shape[dim], ratios)
    shards: List[np.ndarray] = []
    offset = 0
    for size in sizes:
        index = [slice(None)] * value.ndim
        index[dim] = slice(offset, offset + size)
        shards.append(np.ascontiguousarray(value[tuple(index)]))
        offset += size
    return shards


def concat_along(shards: Sequence[np.ndarray], dim: int) -> np.ndarray:
    """Concatenate per-device shards back into the global tensor."""
    return np.concatenate([np.asarray(s) for s in shards], axis=dim)


def local_sizes(total: int, ratios: Sequence[float]) -> List[int]:
    """Integer shard sizes of a dimension of length ``total``."""
    return list(shard_sizes(total, ratios))


def local_offsets(total: int, ratios: Sequence[float]) -> List[int]:
    """Start offsets of each device's shard of a dimension of length ``total``."""
    return list(shard_offsets(shard_sizes(total, ratios)))
