"""Baseline planners: DP-EV, DP-CP, DeepSpeed-like and TAG-like.

The baselines reuse HAP's background theory and synthesizer with restricted
rule sets (see ``SynthesisConfig.force_data_parallel``), so every baseline
produces a genuine distributed program that can be costed, simulated and even
executed by the SPMD runtime.  Differences from the real systems that do not
affect the comparison's shape are documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

from ..cluster.spec import ClusterSpec
from ..core.config import PlannerConfig, SynthesisConfig
from ..core.costmodel import CostBreakdown, CostModel
from ..core.hierarchical import (
    OPTIMIZER_STATE_FACTOR,
    HierarchicalConfig,
    HierarchicalPlan,
)
from ..core.pipeline import HAPPlan, HAPPlanner
from ..core.program import DistributedProgram
from ..core.synthesizer import ProgramSynthesizer
from ..graph.graph import ComputationGraph
from ..hap import hap as _hap
from ..hap import hap_pipeline as _hap_pipeline

BASELINE_NAMES = ["DP-EV", "DP-CP", "DeepSpeed", "TAG", "HAP", "HAP-Pipeline"]


@dataclass
class BaselinePlan:
    """A baseline's distributed program plus its cost estimate.

    Attributes:
        name: baseline identifier (one of :data:`BASELINE_NAMES`).
        program: the distributed program the baseline would execute.
        ratios: sharding ratios the baseline uses.
        estimated_time: planner cost-model estimate of the iteration time.
        memory_per_device: estimated per-device parameter+gradient+optimizer
            memory in bytes (used to flag out-of-memory configurations).
        out_of_memory: True if the memory estimate exceeds some device's
            capacity (the paper reports OOM for DP baselines on BERT-MoE).
    """

    name: str
    program: DistributedProgram
    ratios: List[float]
    estimated_time: CostBreakdown
    memory_per_device: List[float] = field(default_factory=list)
    out_of_memory: bool = False

    @property
    def flat_ratios(self) -> List[float]:
        return list(self.ratios)


def estimate_memory_per_device(
    program: DistributedProgram, ratios: Sequence[float], cluster: ClusterSpec
) -> List[float]:
    """Per-device memory estimate for parameters, gradients and optimizer state.

    Sharded parameters contribute proportionally to the device's ratio,
    replicated parameters contribute fully; the total is multiplied by
    :data:`~repro.core.hierarchical.OPTIMIZER_STATE_FACTOR` to account for
    the gradient and one optimizer moment, plus an activation term
    proportional to the batch shard.
    """
    graph = program.graph
    shardings = program.parameter_shardings()
    sharded_bytes = sum(
        p.spec.size_bytes for p in graph.parameters() if shardings.get(p.name) is not None
    )
    replicated_bytes = sum(
        p.spec.size_bytes for p in graph.parameters() if shardings.get(p.name) is None
    )
    activation_bytes = graph.activation_bytes()
    totals = []
    for j in range(cluster.num_devices):
        share = ratios[j]
        params = replicated_bytes + sharded_bytes * share
        acts = activation_bytes * share * 0.25  # re-materialisation / fusion discount
        totals.append(OPTIMIZER_STATE_FACTOR * params + acts)
    return totals


def _run_restricted_planner(
    graph: ComputationGraph,
    cluster: ClusterSpec,
    name: str,
    synthesis: SynthesisConfig,
    ratios: Sequence[float],
) -> BaselinePlan:
    """Synthesize a program under a restricted theory and fixed ratios."""
    synthesizer = ProgramSynthesizer(graph, cluster, synthesis)
    result = synthesizer.synthesize(list(ratios))
    cost_model = synthesizer.cost_model
    estimated = cost_model.evaluate(result.program, list(ratios))
    memory = estimate_memory_per_device(result.program, ratios, cluster)
    capacities = cluster.device_memory()
    oom = any(m > cap for m, cap in zip(memory, capacities))
    return BaselinePlan(
        name=name,
        program=result.program,
        ratios=list(ratios),
        estimated_time=estimated,
        memory_per_device=memory,
        out_of_memory=oom,
    )


def _training_graph(model: ComputationGraph) -> ComputationGraph:
    from ..autodiff import build_training_graph
    from ..graph.ops import OpKind

    if any(node.kind is OpKind.OPTIMIZER for node in model):
        return model
    return build_training_graph(model).graph


def plan_dp_ev(
    model: ComputationGraph, cluster: ClusterSpec, config: Optional[SynthesisConfig] = None
) -> BaselinePlan:
    """PyTorch-DDP data parallelism with even sharding ratios (DP-EV)."""
    graph = _training_graph(model)
    synthesis = replace(
        config or SynthesisConfig(),
        force_data_parallel=True,
        expert_parallel_parameters=False,
        enable_sfb=False,
        enable_grouped_all_gather=False,
    )
    return _run_restricted_planner(graph, cluster, "DP-EV", synthesis, cluster.even_ratios())


def plan_dp_cp(
    model: ComputationGraph, cluster: ClusterSpec, config: Optional[SynthesisConfig] = None
) -> BaselinePlan:
    """Data parallelism with computation-proportional ratios (DP-CP)."""
    graph = _training_graph(model)
    synthesis = replace(
        config or SynthesisConfig(),
        force_data_parallel=True,
        expert_parallel_parameters=False,
        enable_sfb=False,
        enable_grouped_all_gather=False,
    )
    return _run_restricted_planner(
        graph, cluster, "DP-CP", synthesis, cluster.proportional_ratios()
    )


def plan_deepspeed_like(
    model: ComputationGraph, cluster: ClusterSpec, config: Optional[SynthesisConfig] = None
) -> BaselinePlan:
    """DeepSpeed-style baseline: ZeRO data parallelism + expert parallelism.

    Dense parameters are replicated with gradient all-reduce; expert (rank-3)
    parameters are sharded evenly across devices on the expert dimension, as
    DeepSpeed-MoE does.  Expert-count padding for indivisible expert counts is
    handled by the experiment harness, which builds the model with the padded
    expert count for this baseline (Sec. 7.6).
    """
    graph = _training_graph(model)
    synthesis = replace(
        config or SynthesisConfig(),
        force_data_parallel=True,
        expert_parallel_parameters=True,
        enable_sfb=False,
        enable_grouped_all_gather=False,
    )
    return _run_restricted_planner(
        graph, cluster, "DeepSpeed", synthesis, cluster.even_ratios()
    )


def plan_tag_like(
    model: ComputationGraph, cluster: ClusterSpec, config: Optional[SynthesisConfig] = None
) -> BaselinePlan:
    """TAG-style baseline: data parallelism with automatic SFB.

    TAG additionally performs inter-op placement on small clusters; that part
    is out of scope here (see DESIGN.md), so this baseline captures TAG's
    communication optimisation (sufficient factor broadcasting and gradient
    aggregation choice) on top of even data parallelism.
    """
    graph = _training_graph(model)
    synthesis = replace(
        config or SynthesisConfig(),
        force_data_parallel=True,
        expert_parallel_parameters=False,
        enable_sfb=True,
        enable_grouped_all_gather=False,
    )
    return _run_restricted_planner(graph, cluster, "TAG", synthesis, cluster.even_ratios())


def plan_hap(
    model: ComputationGraph, cluster: ClusterSpec, config: Optional[PlannerConfig] = None
) -> BaselinePlan:
    """Run full HAP and wrap its plan in the common baseline container."""
    plan: HAPPlan = _hap(model, cluster, config)
    memory = estimate_memory_per_device(plan.program, plan.flat_ratios, cluster)
    capacities = cluster.device_memory()
    return BaselinePlan(
        name="HAP",
        program=plan.program,
        ratios=plan.flat_ratios,
        estimated_time=plan.estimated_time,
        memory_per_device=memory,
        out_of_memory=any(m > cap for m, cap in zip(memory, capacities)),
    )


def plan_hap_pipeline(
    model: ComputationGraph,
    cluster: ClusterSpec,
    config: Optional[HierarchicalConfig] = None,
) -> HierarchicalPlan:
    """Run hierarchical HAP (pipeline-over-SPMD stages) as a named system.

    Unlike the flat systems, the input must be the *forward* graph with a
    marked loss (stages are differentiated individually) and the result is a
    :class:`~repro.core.hierarchical.HierarchicalPlan`, not a
    :class:`BaselinePlan` — it holds one SPMD program per machine group.
    """
    return _hap_pipeline(model, cluster, config)


_PLANNERS = {
    "DP-EV": plan_dp_ev,
    "DP-CP": plan_dp_cp,
    "DeepSpeed": plan_deepspeed_like,
    "TAG": plan_tag_like,
}


def plan_baseline(
    name: str,
    model: ComputationGraph,
    cluster: ClusterSpec,
    config=None,
):
    """Plan any baseline (or HAP / HAP-Pipeline) by name.

    Returns a :class:`BaselinePlan` for the flat systems and a
    :class:`~repro.core.hierarchical.HierarchicalPlan` for ``HAP-Pipeline``.
    """
    if name == "HAP":
        return plan_hap(model, cluster, config)
    if name == "HAP-Pipeline":
        return plan_hap_pipeline(model, cluster, config)
    try:
        planner = _PLANNERS[name]
    except KeyError:
        raise KeyError(f"unknown baseline {name!r}; known: {BASELINE_NAMES}") from None
    return planner(model, cluster, config)
