"""Baseline training systems the paper compares against (Sec. 7.1).

Each baseline is expressed as a restricted planner over the same IR, cluster
model and simulator as HAP, so that the comparison isolates the *strategy*
(sharding/ratio/communication decisions) exactly as the paper's testbed
isolates the systems:

* :func:`plan_dp_ev` — PyTorch-DDP-style data parallelism with even ratios.
* :func:`plan_dp_cp` — data parallelism with computation-proportional ratios.
* :func:`plan_deepspeed_like` — ZeRO-style data parallelism plus expert
  parallelism (with expert-count padding) for MoE layers.
* :func:`plan_tag_like` — data parallelism with automatic sufficient-factor
  broadcasting, a simplified stand-in for TAG.
"""

from .planners import (
    BASELINE_NAMES,
    BaselinePlan,
    estimate_memory_per_device,
    plan_baseline,
    plan_deepspeed_like,
    plan_dp_cp,
    plan_dp_ev,
    plan_hap,
    plan_hap_pipeline,
    plan_tag_like,
)

__all__ = [
    "BaselinePlan",
    "plan_baseline",
    "plan_dp_ev",
    "plan_dp_cp",
    "plan_deepspeed_like",
    "plan_tag_like",
    "plan_hap",
    "plan_hap_pipeline",
    "estimate_memory_per_device",
    "BASELINE_NAMES",
]
