"""Plan performance linter: legal-but-slow patterns in a finished plan.

The error-severity passes (:mod:`repro.verify.plan`, :mod:`repro.verify.program`)
prove a :class:`~repro.core.hierarchical.HierarchicalPlan` *well-formed*; this
module flags plans that are well-formed but carry a performance anti-pattern
the planner's own objective can hide.  Every finding is WARNING severity —
a linted plan still verifies ``ok`` and is still served — but the warnings
ride on the same :class:`~repro.verify.base.VerificationReport`, so a caller
(or ``python -m repro.verify --lint --strict-warnings``) can refuse to accept
a plan that smells slow.  HetPipe- and HARP-style heterogeneous failures are
exactly of this kind: nothing is malformed, the plan is just quietly
imbalanced or its links oversubscribed.

* ``W001`` — per-link bandwidth oversubscription: some stage's communication
  stream is busy for more than :data:`COMM_BUSY_FRACTION` of the iteration;
  the simulator queues sends without contention, so such plans look cheaper
  than they run (the known comm-contention blind spot).
* ``W002`` — exposed communication: transfer seconds left on the critical
  path after overlap exceed :data:`EXPOSED_COMM_FRACTION` of the iteration.
* ``W003`` — critical-path stage imbalance: the busiest stage does more than
  :data:`STAGE_IMBALANCE_RATIO` times the work of the laziest.
* ``W004`` — memory headroom: a stage's worst device sits above
  :data:`MEMORY_HEADROOM_FRACTION` of its capacity — one activation spike
  from an OOM even though the plan nominally fits.
* ``W005`` — degenerate interleaving: the plan pays interleaved complexity
  (``num_model_chunks > 1``) although a non-interleaved candidate at the
  same stage count simulated at least as fast.
* ``W006`` — dominated collective: a paid All-Gather variant is slower than
  the other variant in the paper's Sec. 2.5.1 rule table by more than
  :data:`DOMINATED_COMM_RTOL` (the synthesizer should have picked the
  cheaper implementation for these sharding ratios).

:func:`lint_plan` is the entry point; :func:`~repro.verify.plan.verify_plan`
folds it in by default so cache hits are linted alongside the structural
re-check.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable

from ..collectives.cost import CollectiveCostModel, CollectiveKind
from ..core.instructions import CommInstruction
from .base import Diagnostic, Severity, VerificationReport, VerifierPass, run_passes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.hierarchical import HierarchicalPlan

#: W001 fires when a stage's comm stream is busy above this iteration fraction.
COMM_BUSY_FRACTION = 0.75
#: W002 fires when exposed transfer exceeds this fraction of the iteration.
#: Calibrated against the paper testbeds, where healthy 2-stage plans sit at
#: 26-33% exposed transfer; the lint flags the outliers well above that band.
EXPOSED_COMM_FRACTION = 0.40
#: W003 fires when max/min per-stage busy time exceeds this ratio.
STAGE_IMBALANCE_RATIO = 1.5
#: W004 fires when a stage's worst device exceeds this fraction of capacity.
MEMORY_HEADROOM_FRACTION = 0.9
#: W006 fires when a paid collective is slower than the best variant by more
#: than this relative margin.
DOMINATED_COMM_RTOL = 0.01

#: All-Gather variants of the paper's Sec. 2.5.1 rule table (W006 candidates).
_ALL_GATHER_KINDS = (CollectiveKind.ALL_GATHER, CollectiveKind.ALL_GATHER_GROUPED)


class CommOversubscriptionPass(VerifierPass):
    """W001: a pipeline link's send queue nearly saturates the iteration."""

    name = "lint-comm-oversubscription"
    codes = ("W001",)

    def run(
        self, plan: HierarchicalPlan, context: Dict[str, Any]
    ) -> Iterable[Diagnostic]:
        schedule = plan.schedule
        if schedule.total <= 0:
            return
        for i, busy in enumerate(schedule.comm_busy):
            fraction = busy / schedule.total
            if fraction > COMM_BUSY_FRACTION:
                yield Diagnostic(
                    "W001",
                    Severity.WARNING,
                    f"communication stream busy {fraction:.0%} of the iteration "
                    f"(> {COMM_BUSY_FRACTION:.0%}); queued sends are simulated "
                    f"without contention, so the link is likely oversubscribed",
                    f"stage {i}",
                )


class ExposedCommPass(VerifierPass):
    """W002: too much transfer time survives overlap onto the critical path."""

    name = "lint-exposed-comm"
    codes = ("W002",)

    def run(
        self, plan: HierarchicalPlan, context: Dict[str, Any]
    ) -> Iterable[Diagnostic]:
        schedule = plan.schedule
        if schedule.total <= 0:
            return
        fraction = schedule.exposed_transfer / schedule.total
        if fraction > EXPOSED_COMM_FRACTION:
            yield Diagnostic(
                "W002",
                Severity.WARNING,
                f"exposed boundary transfer is {fraction:.0%} of the iteration "
                f"(> {EXPOSED_COMM_FRACTION:.0%}); overlap hides too little of "
                f"the activation/gradient traffic",
                f"schedule {plan.schedule_name}",
            )


class StageImbalancePass(VerifierPass):
    """W003: the pipeline's critical path is dominated by one stage."""

    name = "lint-stage-imbalance"
    codes = ("W003",)

    def run(
        self, plan: HierarchicalPlan, context: Dict[str, Any]
    ) -> Iterable[Diagnostic]:
        busy = plan.schedule.stage_busy
        if len(busy) <= 1:
            return
        slowest, fastest = max(busy), min(busy)
        if fastest <= 0 or slowest / fastest <= STAGE_IMBALANCE_RATIO:
            return
        yield Diagnostic(
            "W003",
            Severity.WARNING,
            f"stage busy times span {fastest:.4g}s..{slowest:.4g}s "
            f"(ratio {slowest / fastest:.2f} > {STAGE_IMBALANCE_RATIO}); the "
            f"fast stages idle in the slow stage's shadow",
            f"stage {busy.index(slowest)}",
        )


class MemoryHeadroomPass(VerifierPass):
    """W004: a fitting plan with almost no per-device memory headroom."""

    name = "lint-memory-headroom"
    codes = ("W004",)

    def run(
        self, plan: HierarchicalPlan, context: Dict[str, Any]
    ) -> Iterable[Diagnostic]:
        if not plan.fits_memory:
            return  # infeasibility is the L004 error's business, not a lint
        for i, utilization in enumerate(plan.stage_memory_utilization):
            if utilization >= MEMORY_HEADROOM_FRACTION:
                yield Diagnostic(
                    "W004",
                    Severity.WARNING,
                    f"worst device at {utilization:.0%} of memory capacity "
                    f"(>= {MEMORY_HEADROOM_FRACTION:.0%}); one activation "
                    f"spike from OOM",
                    f"stage {i}",
                )


class DegenerateInterleavingPass(VerifierPass):
    """W005: interleaving is paid for but buys no simulated bubble win."""

    name = "lint-degenerate-interleaving"
    codes = ("W005",)

    def run(
        self, plan: HierarchicalPlan, context: Dict[str, Any]
    ) -> Iterable[Diagnostic]:
        if plan.num_model_chunks <= 1:
            return
        rivals = [
            time
            for (stages, name, _m, _rc), time in plan.schedule_candidate_times.items()
            if stages == plan.num_stages and name != "interleaved-1f1b"
        ]
        if not rivals:
            return
        best_rival = min(rivals)
        if best_rival <= plan.estimated_time:
            yield Diagnostic(
                "W005",
                Severity.WARNING,
                f"interleaving with {plan.num_model_chunks} model chunks is "
                f"estimated at {plan.estimated_time:.4g}s but a non-interleaved "
                f"candidate at the same stage count simulated {best_rival:.4g}s; "
                f"the extra chunk machinery buys no bubble win",
                f"schedule {plan.schedule_name}",
            )


class DominatedCollectivePass(VerifierPass):
    """W006: an All-Gather variant dominated by the paper's rule table."""

    name = "lint-dominated-collective"
    codes = ("W006",)

    def run(
        self, plan: HierarchicalPlan, context: Dict[str, Any]
    ) -> Iterable[Diagnostic]:
        for chunk in plan.chunk_sequence():
            model = CollectiveCostModel(chunk.subcluster)
            ratios = chunk.ratios
            program = chunk.program
            for instr in program.instructions:
                if not isinstance(instr, CommInstruction):
                    continue
                if instr.kind not in _ALL_GATHER_KINDS:
                    continue
                ref = instr.input.ref
                if ref not in program.graph:
                    continue  # P001's problem, not a lint
                total_bytes = float(program.graph[ref].spec.size_bytes)
                paid = model.collective_time(instr.kind, total_bytes, ratios)
                best_kind, best = model.best_all_gather(total_bytes, ratios)
                if best_kind is not instr.kind and paid > best * (1.0 + DOMINATED_COMM_RTOL):
                    yield Diagnostic(
                        "W006",
                        Severity.WARNING,
                        f"{instr.kind.value} of {ref} costs {paid:.3g}s but "
                        f"{best_kind.value} would cost {best:.3g}s for these "
                        f"sharding ratios (Sec. 2.5.1 rule table)",
                        f"virtual stage {chunk.virtual_index}: {instr.describe()}",
                    )


#: The default lint pipeline, in execution order.
LINT_PASSES = (
    CommOversubscriptionPass(),
    ExposedCommPass(),
    StageImbalancePass(),
    MemoryHeadroomPass(),
    DegenerateInterleavingPass(),
    DominatedCollectivePass(),
)


def lint_plan(plan: HierarchicalPlan) -> VerificationReport:
    """Run every performance lint over a finished hierarchical plan.

    All findings are WARNING severity: the returned report is always ``ok``
    unless a lint pass itself crashes.
    """
    return run_passes(LINT_PASSES, plan, {})
