"""Program checks: is a synthesized :class:`DistributedProgram` well-formed?

These passes re-derive the Hoare-triple invariants of the paper's background
theory (Fig. 8/9) directly from the instruction sequence, independently of the
synthesizer:

* ``P001`` — def-before-use dataflow: every consumed ``(ref, state)`` property
  must have been established by an earlier instruction.
* ``P002`` — single emulation: no graph node is emulated by two computation
  instructions.
* ``P003`` — completeness: every non-source graph node is emulated, and every
  instruction refers to a node of the graph.
* ``P004`` — collective legality: each :class:`CommInstruction` is a valid
  ``DistState`` transition per the rule table (kind, dims, same ref on both
  sides, MoE capacity tensors restricted to All-To-All).
* ``P005`` — communication budget: at most one paid collective per reference
  tensor (the paper's optimisation; local ``slice`` is exempt).
* ``P006`` — replicated-compute flag soundness: ``flops_sharded`` must equal
  "some input or the output is sharded" (the invariant every rule-generated
  variant satisfies, including SFB's duplicated MatMul and fused sources).
* ``P007`` — final property set: every property the program claims in
  ``program.properties`` was actually established by some instruction.
* ``P008`` — cost-accounting cross-check: an independent serialized
  re-derivation of the program's flops/bytes timing (alpha-beta collective
  formulas + per-device flops shares, re-implemented here) must agree with
  :meth:`CostModel.evaluate` to within floating-point tolerance.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, Optional, Sequence, Set

from ..cluster.spec import ClusterSpec
from ..collectives.cost import CollectiveCostModel, CollectiveKind
from ..core.costmodel import CostModel
from ..core.instructions import CommInstruction, CompInstruction, is_source_op
from ..core.program import DistributedProgram
from ..core.properties import Property
from ..core.rules import moe_restricted_refs
from .base import Diagnostic, Severity, VerificationReport, VerifierPass, run_passes

#: Relative tolerance of the P008 cost cross-check.  The cost model and the
#: re-derivation compute the same piecewise-linear quantities in different
#: operation orders, so they agree to float rounding, not bit-exactly.
COST_RTOL = 1e-6


class DataflowPass(VerifierPass):
    """P001/P002/P003/P007: def-before-use, single emulation, completeness."""

    name = "program-dataflow"
    codes = ("P001", "P002", "P003", "P007")

    def run(
        self, program: DistributedProgram, context: Dict[str, Any]
    ) -> Iterable[Diagnostic]:
        graph = program.graph
        established: Set[Property] = set()
        emulated: Set[str] = set()
        for idx, instr in enumerate(program.instructions):
            where = f"instr {idx}: {instr.describe()}"
            if isinstance(instr, CompInstruction):
                if instr.node not in graph:
                    yield Diagnostic(
                        "P003",
                        Severity.ERROR,
                        f"instruction emulates unknown node {instr.node!r}",
                        where,
                    )
                    continue
                if instr.node in emulated:
                    yield Diagnostic(
                        "P002",
                        Severity.ERROR,
                        f"node {instr.node!r} emulated more than once",
                        where,
                    )
                emulated.add(instr.node)
                if not is_source_op(instr.op):
                    for p in instr.inputs:
                        if p not in established:
                            yield Diagnostic(
                                "P001",
                                Severity.ERROR,
                                f"input {p.ref}|{p.state} consumed before any "
                                "instruction established it",
                                where,
                            )
                established.add(instr.output)
            else:  # CommInstruction
                if instr.input.ref not in graph:
                    yield Diagnostic(
                        "P003",
                        Severity.ERROR,
                        f"collective over unknown tensor {instr.input.ref!r}",
                        where,
                    )
                    continue
                if instr.input not in established:
                    yield Diagnostic(
                        "P001",
                        Severity.ERROR,
                        f"collective consumes {instr.input.ref}|{instr.input.state} "
                        "before any instruction established it",
                        where,
                    )
                established.add(instr.output)
        missing = [
            node.name
            for node in graph
            if not is_source_op(node.op) and node.name not in emulated
        ]
        for name in missing:
            yield Diagnostic(
                "P003",
                Severity.ERROR,
                f"graph node {name!r} is never emulated by the program",
                f"node {name}",
            )
        for p in program.properties:
            if p not in established:
                yield Diagnostic(
                    "P007",
                    Severity.ERROR,
                    f"final property {p.ref}|{p.state} was never established "
                    "by any instruction",
                    f"property {p.ref}",
                )


class CollectiveLegalityPass(VerifierPass):
    """P004/P005: every collective is a legal ``DistState`` transition."""

    name = "program-collectives"
    codes = ("P004", "P005")

    def run(
        self, program: DistributedProgram, context: Dict[str, Any]
    ) -> Iterable[Diagnostic]:
        restricted = moe_restricted_refs(program.graph)
        communicated: Set[str] = set()
        for idx, instr in enumerate(program.instructions):
            if not isinstance(instr, CommInstruction):
                continue
            where = f"instr {idx}: {instr.describe()}"
            if instr.input.ref != instr.output.ref:
                yield Diagnostic(
                    "P004",
                    Severity.ERROR,
                    f"collective changes the reference tensor "
                    f"({instr.input.ref!r} -> {instr.output.ref!r}); collectives "
                    "only change distribution state",
                    where,
                )
                continue
            yield from self._check_transition(instr, instr.input.ref in restricted, where)
            if instr.kind is not CollectiveKind.SLICE:
                if instr.input.ref in communicated:
                    yield Diagnostic(
                        "P005",
                        Severity.ERROR,
                        f"tensor {instr.input.ref!r} is communicated more than "
                        "once (one-collective-per-tensor budget)",
                        where,
                    )
                communicated.add(instr.input.ref)

    @staticmethod
    def _check_transition(
        instr: CommInstruction, restricted: bool, where: str
    ) -> Iterable[Diagnostic]:
        src, dst = instr.input.state, instr.output.state
        kind = instr.kind

        def illegal(reason: str) -> Diagnostic:
            return Diagnostic(
                "P004",
                Severity.ERROR,
                f"{kind.value} is not a legal {src} -> {dst} transition: {reason}",
                where,
            )

        if restricted and kind is not CollectiveKind.ALL_TO_ALL:
            yield illegal(
                "MoE capacity tensors may only be re-distributed with All-To-All"
            )
            return
        if kind is CollectiveKind.ALL_REDUCE:
            if not (src.is_partial and dst.is_replicated):
                yield illegal("All-Reduce requires partial -> replicated")
        elif kind is CollectiveKind.REDUCE_SCATTER:
            if not (src.is_partial and dst.is_sharded):
                yield illegal("Reduce-Scatter requires partial -> sharded")
            elif instr.dim != dst.dim:
                yield illegal(
                    f"scatter dim {instr.dim} does not match output shard dim {dst.dim}"
                )
        elif kind in (CollectiveKind.ALL_GATHER, CollectiveKind.ALL_GATHER_GROUPED):
            if not (src.is_sharded and dst.is_replicated):
                yield illegal("All-Gather requires sharded -> replicated")
            elif instr.dim != src.dim:
                yield illegal(
                    f"gather dim {instr.dim} does not match input shard dim {src.dim}"
                )
        elif kind is CollectiveKind.ALL_TO_ALL:
            if not (src.is_sharded and dst.is_sharded and src.dim != dst.dim):
                yield illegal(
                    "All-To-All requires sharded -> sharded across distinct dims"
                )
            elif instr.dim != src.dim or instr.dim2 != dst.dim:
                yield illegal(
                    f"dims ({instr.dim} -> {instr.dim2}) do not match the state "
                    f"transition ({src.dim} -> {dst.dim})"
                )
        elif kind is CollectiveKind.SLICE:
            if not (src.is_replicated and dst.is_sharded):
                yield illegal("slice requires replicated -> sharded")
            elif instr.dim != dst.dim:
                yield illegal(
                    f"slice dim {instr.dim} does not match output shard dim {dst.dim}"
                )
        else:
            yield illegal("kind is not part of the synthesis rule table")


class ComputeFlagPass(VerifierPass):
    """P006: ``flops_sharded`` matches the instruction's sharding structure."""

    name = "program-compute-flags"
    codes = ("P006",)

    def run(
        self, program: DistributedProgram, context: Dict[str, Any]
    ) -> Iterable[Diagnostic]:
        for idx, instr in enumerate(program.instructions):
            if not isinstance(instr, CompInstruction):
                continue
            expected = any(p.state.is_sharded for p in instr.inputs) or (
                instr.output.state.is_sharded
            )
            if instr.flops_sharded != expected:
                yield Diagnostic(
                    "P006",
                    Severity.ERROR,
                    f"flops_sharded={instr.flops_sharded} but "
                    f"{'some input/output is sharded' if expected else 'nothing is sharded'} "
                    "— per-device flop accounting would be wrong",
                    f"instr {idx}: {instr.describe()}",
                )


class CostCrossCheckPass(VerifierPass):
    """P008: independent flops/bytes re-derivation vs. ``CostModel`` accounting.

    Re-implements the serialized timing model from scratch — alpha-beta
    collective formulas over the reference tensor's bytes, per-device flop
    shares, machine-level intra-device synchronisation — and walks the
    program's synchronisation stages (``comm + max_j comp_j`` per stage,
    summed).  The result must match ``CostModel.evaluate(..., overlap=0.0)``,
    whose linearised per-stage coefficients take a very different code path.
    A disagreement means one side mis-accounts some instruction — exactly the
    corruption class a stale cache or a bad remap introduces.
    """

    name = "program-cost-crosscheck"
    codes = ("P008",)

    def run(
        self, program: DistributedProgram, context: Dict[str, Any]
    ) -> Iterable[Diagnostic]:
        cluster: Optional[ClusterSpec] = context.get("cluster")
        ratios: Optional[Sequence[float]] = context.get("ratios")
        if cluster is None or ratios is None:
            return
        derived = _rederive_serialized_time(program, cluster, ratios)
        reported = CostModel(program.graph, cluster, memoize=False).evaluate(
            program, list(ratios), overlap=0.0
        )
        if not math.isclose(
            derived, reported.total, rel_tol=COST_RTOL, abs_tol=1e-12
        ):
            yield Diagnostic(
                "P008",
                Severity.ERROR,
                f"independent cost re-derivation ({derived:.9g}s) disagrees with "
                f"CostModel accounting ({reported.total:.9g}s)",
                "program cost",
            )


def _rederive_serialized_time(
    program: DistributedProgram, cluster: ClusterSpec, ratios: Sequence[float]
) -> float:
    """Serialized per-iteration time, re-derived from first principles.

    Same physical model as :class:`~repro.core.costmodel.CostModel` with
    ``overlap=0`` — per stage, the synchronising collective plus the slowest
    device's compute — but computed instruction by instruction from the graph's
    flops/bytes and the collective formulas, without the linearised
    stage-coefficient machinery.
    """
    collectives = CollectiveCostModel(cluster)
    device_flops = cluster.device_flops()
    devices = cluster.virtual_devices
    graph = program.graph
    total = 0.0
    for stage in program.stages():
        comm = 0.0
        if stage.comm is not None:
            comm = collectives.collective_time(
                stage.comm.kind,
                float(graph[stage.comm.input.ref].spec.size_bytes),
                ratios,
            )
            # Gather/scatter step inside machine-level virtual devices.
            largest = graph[stage.comm.input.ref].spec.size_bytes * max(ratios)
            intra = 0.0
            for device in devices:
                if device.num_gpus > 1:
                    g = device.num_gpus
                    intra = max(
                        intra, 2.0 * (g - 1) / g * largest / device.intra_bandwidth
                    )
            comm += intra
        comp = [0.0] * len(devices)
        for comp_instr in stage.comps:
            if isinstance(comp_instr, CommInstruction):
                continue  # local slice pseudo-collective: costed as ~nothing
            flops = graph.node_flops(comp_instr.node)
            nbytes = graph[comp_instr.node].spec.size_bytes
            for j, device in enumerate(devices):
                share = ratios[j] if comp_instr.flops_sharded else 1.0
                t = flops * share / device_flops[j]
                if device.num_gpus > 1 and comp_instr.op == "sgd_update":
                    g = device.num_gpus
                    t += 2.0 * (g - 1) / g * (nbytes * share) / device.intra_bandwidth
                comp[j] += t
        total += comm + max(comp)
    return total


#: The default program-check pipeline, in execution order.
PROGRAM_PASSES = (
    DataflowPass(),
    CollectiveLegalityPass(),
    ComputeFlagPass(),
    CostCrossCheckPass(),
)


def verify_program(
    program: DistributedProgram,
    cluster: Optional[ClusterSpec] = None,
    ratios: Optional[Sequence[float]] = None,
    check_cost: bool = True,
) -> VerificationReport:
    """Run every program check over one distributed program.

    Args:
        program: the program to verify.
        cluster: target cluster; enables the P008 cost cross-check.
        ratios: sharding ratios the program was priced with (P008).
        check_cost: set False to skip the (comparatively expensive) P008
            re-derivation — e.g. on the cache-hit fast path.
    """
    context: Dict[str, Any] = {}
    if check_cost and cluster is not None and ratios is not None:
        context["cluster"] = cluster
        context["ratios"] = ratios
    return run_passes(PROGRAM_PASSES, program, context)
