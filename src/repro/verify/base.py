"""Pass framework of the static plan verifier.

The verifier is an *independent* analysis layer: it re-derives the invariants
the synthesizer and hierarchical planner are supposed to maintain — dataflow
well-formedness of :class:`~repro.core.program.DistributedProgram`, structural
consistency of :class:`~repro.core.hierarchical.HierarchicalPlan`, and
deadlock-freedom of the pipeline task orders — from first principles, without
trusting the machinery that produced them.  A bug in block-reuse replay,
cache remapping or the parallel grid merge therefore surfaces as a
:class:`Diagnostic` instead of a silently wrong plan.

Three building blocks:

* :class:`Diagnostic` — one finding, with a stable code (``G0xx`` graph-IR
  checks, ``P0xx`` program checks, ``L0xx`` plan checks, ``S0xx`` schedule
  checks, ``W0xx`` warning-severity performance lints), a
  :class:`Severity` and a human-readable location.
* :class:`VerificationReport` — an ordered collection of diagnostics plus the
  names of the passes that ran; ``ok`` means *no error-severity findings*.
* :class:`VerifierPass` — one analysis; subclasses declare the codes they can
  emit and implement :meth:`VerifierPass.run`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Iterable, List, Set, Tuple


class Severity(Enum):
    """How bad a finding is: only errors make a report fail."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Diagnostic:
    """One verifier finding.

    Attributes:
        code: stable diagnostic code (``P001`` … ``P008``, ``L001`` … ``L004``,
            ``S001`` … ``S003``); tests and tooling key on it.
        severity: :class:`Severity` of the finding.
        message: human-readable description of the violated invariant.
        location: where in the artifact the finding anchors (instruction
            index, stage/chunk coordinates, task-order position, …).
    """

    code: str
    severity: Severity
    message: str
    location: str = ""

    def describe(self) -> str:
        """One-line rendering used by report listings and the CLI."""
        loc = f" @ {self.location}" if self.location else ""
        return f"[{self.code}/{self.severity.value}]{loc} {self.message}"


@dataclass
class VerificationReport:
    """The outcome of running one or more verifier passes."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    passes_run: List[str] = field(default_factory=list)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was reported."""
        return not self.errors

    def codes(self) -> Set[str]:
        """The distinct diagnostic codes present in the report."""
        return {d.code for d in self.diagnostics}

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def merge(self, other: VerificationReport, prefix: str = "") -> None:
        """Fold another report into this one, optionally re-anchoring locations.

        ``prefix`` is prepended to every merged diagnostic's location so a
        plan-level report can embed per-chunk program reports without losing
        which chunk a finding came from.
        """
        for d in other.diagnostics:
            if prefix:
                location = f"{prefix}: {d.location}" if d.location else prefix
                d = Diagnostic(d.code, d.severity, d.message, location)
            self.diagnostics.append(d)
        self.passes_run.extend(p for p in other.passes_run if p not in self.passes_run)

    def describe(self) -> str:
        """Readable multi-line summary of the report."""
        header = (
            f"verification {'OK' if self.ok else 'FAILED'}: "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s) "
            f"from {len(self.passes_run)} pass(es)"
        )
        lines = [header]
        lines.extend("  " + d.describe() for d in self.diagnostics)
        return "\n".join(lines)


class PlanVerificationError(RuntimeError):
    """Raised by the ``verify_after_plan`` hooks when verification fails.

    Carries the full :class:`VerificationReport` so callers (and test
    failures) see every diagnostic, not just the first.
    """

    def __init__(self, report: VerificationReport) -> None:
        super().__init__(report.describe())
        self.report = report


class VerifierPass:
    """One static analysis over a program, plan, or schedule artifact.

    Subclasses set :attr:`name`, declare the diagnostic :attr:`codes` they can
    emit, and implement :meth:`run`, which receives the artifact under
    analysis plus a context dict of auxiliary inputs (cluster, ratios, the
    original forward graph, …) and yields diagnostics.
    """

    name: str = "abstract"
    #: Diagnostic codes this pass can emit (documentation + CLI listing).
    codes: Tuple[str, ...] = ()

    def run(self, subject: Any, context: Dict[str, Any]) -> Iterable[Diagnostic]:
        raise NotImplementedError


def run_passes(
    passes: Iterable[VerifierPass], subject: Any, context: Dict[str, Any]
) -> VerificationReport:
    """Run a pass pipeline over one artifact and collect the report.

    A pass that crashes is itself a verification failure — the artifact was
    malformed enough to break the analysis — reported as an error diagnostic
    carrying the pass's first declared code (suffix ``/crash`` in the
    location) rather than an exception escaping to the caller.
    """
    report = VerificationReport()
    for p in passes:
        report.passes_run.append(p.name)
        try:
            report.extend(p.run(subject, context))
        except Exception as exc:  # noqa: BLE001 - any crash means "malformed"
            code = p.codes[0] if p.codes else "X000"
            report.add(
                Diagnostic(
                    code=code,
                    severity=Severity.ERROR,
                    message=f"pass {p.name!r} crashed on malformed input: {exc!r}",
                    location=f"{p.name}/crash",
                )
            )
    return report
