"""``python -m repro.verify``: plan and statically analyse every registry model.

For every registry model x testbed combination the CLI builds the tiny model
variant, runs the hierarchical planner, and verifies the winning plan with
the full pass pipeline: graph checks over the forward graph and every
planner-cut chunk graph (G codes), program, plan and schedule checks
(P/L/S codes, including the P008 cost cross-check), and — with ``--lint`` —
the warning-severity performance lints (W codes).  Exit status is non-zero
when any error-severity diagnostic is reported, or, under
``--strict-warnings``, when any warning is.  The CI ``verify`` and
``lint-plans`` jobs run exactly this.

Usage::

    PYTHONPATH=src python -m repro.verify                 # all models x testbeds
    PYTHONPATH=src python -m repro.verify --models vit    # subset
    PYTHONPATH=src python -m repro.verify -v              # list every diagnostic
    PYTHONPATH=src python -m repro.verify --lint          # + performance lints
    PYTHONPATH=src python -m repro.verify --lint --json   # machine-readable
    PYTHONPATH=src python -m repro.verify --lint --strict-warnings
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..cluster.spec import ClusterSpec, NetworkSpec, heterogeneous_testbed, homogeneous_testbed
from ..core.config import PlannerConfig, SynthesisConfig
from ..core.hierarchical import HierarchicalConfig
from ..hap import hap_pipeline
from ..models.registry import MODEL_NAMES, build_tiny_model
from .base import VerificationReport
from .graph import verify_graph
from .lint import lint_plan
from .plan import verify_plan


@dataclass
class CaseResult:
    """Static-analysis outcome of one (model, testbed) combination.

    Attributes:
        model: registry model name.
        testbed: cluster name the plan targets.
        verify_seconds: wall time of the graph checks plus error-severity
            plan verification.
        lint_seconds: wall time of the performance lints (0 when disabled).
        report: the merged verification report.
    """

    model: str
    testbed: str
    verify_seconds: float
    lint_seconds: float
    report: VerificationReport

    def to_json(self) -> dict:
        """Machine-readable summary (the ``--json`` / CI baseline format)."""
        return {
            "model": self.model,
            "testbed": self.testbed,
            "ok": self.report.ok,
            "errors": len(self.report.errors),
            "warnings": len(self.report.warnings),
            "warning_codes": sorted(d.code for d in self.report.warnings),
            "verify_ms": round(self.verify_seconds * 1e3, 3),
            "lint_ms": round(self.lint_seconds * 1e3, 3),
        }


def _testbeds(num_gpus: int, gpus_per_machine: int) -> List[ClusterSpec]:
    return [
        heterogeneous_testbed(num_gpus=num_gpus, gpus_per_machine=gpus_per_machine),
        homogeneous_testbed(num_gpus=num_gpus, gpus_per_machine=gpus_per_machine),
    ]


def _config(beam: int) -> HierarchicalConfig:
    return HierarchicalConfig(
        planner=PlannerConfig(
            max_rounds=1, synthesis=SynthesisConfig(beam_width=beam)
        ),
        intra_group_network=NetworkSpec(bandwidth=100e9 / 8),
        max_stages=2,
        # Planning is the CLI's scaffolding, not its subject: the explicit
        # verify_graph()/verify_plan() below are the check, so the planner's
        # own hook is off.
        verify_after_plan=False,
    )


def verify_registry(
    models: Sequence[str],
    num_gpus: int = 16,
    gpus_per_machine: int = 8,
    beam: int = 8,
    lint: bool = False,
) -> List[CaseResult]:
    """Plan + statically analyse each (model, testbed); one result per case.

    Every case runs the graph checker over the forward graph and every
    planner-cut chunk training graph, then the error-severity plan checks;
    with ``lint=True`` the W-code performance lints are timed separately and
    merged into the same report.
    """
    results: List[CaseResult] = []
    for name in models:
        forward = build_tiny_model(name)
        for cluster in _testbeds(num_gpus, gpus_per_machine):
            plan = hap_pipeline(forward, cluster, _config(beam))
            t0 = time.perf_counter()
            report = verify_graph(forward)
            for chunk in plan.chunk_sequence():
                report.merge(
                    verify_graph(chunk.info.graph),
                    prefix=f"chunk graph {chunk.virtual_index}",
                )
            report.merge(verify_plan(plan, forward, lint=False), prefix="plan")
            verify_seconds = time.perf_counter() - t0
            lint_seconds = 0.0
            if lint:
                t0 = time.perf_counter()
                lint_report = lint_plan(plan)
                lint_seconds = time.perf_counter() - t0
                report.merge(lint_report, prefix="lint")
            results.append(
                CaseResult(name, cluster.name, verify_seconds, lint_seconds, report)
            )
    return results


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify", description=__doc__
    )
    parser.add_argument(
        "--models",
        nargs="+",
        default=MODEL_NAMES,
        choices=MODEL_NAMES,
        help="registry models to verify (default: all)",
    )
    parser.add_argument(
        "--num-gpus", type=int, default=16, help="testbed GPU count"
    )
    parser.add_argument(
        "--gpus-per-machine", type=int, default=8, help="GPUs per machine"
    )
    parser.add_argument(
        "--beam", type=int, default=8, help="synthesis beam width for planning"
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help="also run the W-code performance lints on every plan",
    )
    parser.add_argument(
        "--strict-warnings",
        action="store_true",
        help="exit non-zero when any warning-severity diagnostic is reported",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON document instead of status lines",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="list every diagnostic"
    )
    args = parser.parse_args(argv)

    results = verify_registry(
        args.models, args.num_gpus, args.gpus_per_machine, args.beam, lint=args.lint
    )

    failures = 0
    warned = 0
    for case in results:
        report = case.report
        if not report.ok:
            failures += 1
        if report.warnings:
            warned += 1
        if args.json:
            continue
        status = "ok" if report.ok else "FAIL"
        timing = f"verified in {case.verify_seconds * 1e3:.0f} ms"
        if args.lint:
            timing += f", linted in {case.lint_seconds * 1e3:.1f} ms"
        print(
            f"{case.model:>10s} x {case.testbed:<20s} {status:>4s}  "
            f"({len(report.errors)} error(s), {len(report.warnings)} warning(s), "
            f"{len(report.passes_run)} pass(es), {timing})"
        )
        if not report.ok or report.warnings or args.verbose:
            shown = report.diagnostics if args.verbose else report.errors + report.warnings
            for d in shown:
                print(f"    {d.describe()}")

    if args.json:
        print(json.dumps({"cases": [case.to_json() for case in results]}, indent=2))
    if failures:
        print(f"\n{failures} plan(s) failed verification", file=sys.stderr)
        return 1
    if args.strict_warnings and warned:
        print(
            f"\n{warned} plan(s) reported warnings (--strict-warnings)",
            file=sys.stderr,
        )
        return 1
    return 0
