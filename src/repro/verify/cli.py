"""``python -m repro.verify``: plan and verify every registry model.

For every registry model x testbed combination the CLI builds the tiny model
variant, runs the hierarchical planner, and verifies the winning plan with
the full pass pipeline (program, plan and schedule checks, including the
P008 cost cross-check).  Exit status is non-zero when any error-severity
diagnostic is reported — the CI job runs exactly this.

Usage::

    PYTHONPATH=src python -m repro.verify                 # all models x testbeds
    PYTHONPATH=src python -m repro.verify --models vit    # subset
    PYTHONPATH=src python -m repro.verify -v              # list every diagnostic
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence, Tuple

from ..cluster.spec import ClusterSpec, NetworkSpec, heterogeneous_testbed, homogeneous_testbed
from ..core.config import PlannerConfig, SynthesisConfig
from ..core.hierarchical import HierarchicalConfig
from ..hap import hap_pipeline
from ..models.registry import MODEL_NAMES, build_tiny_model
from .base import VerificationReport
from .plan import verify_plan


def _testbeds(num_gpus: int, gpus_per_machine: int) -> List[ClusterSpec]:
    return [
        heterogeneous_testbed(num_gpus=num_gpus, gpus_per_machine=gpus_per_machine),
        homogeneous_testbed(num_gpus=num_gpus, gpus_per_machine=gpus_per_machine),
    ]


def _config(beam: int) -> HierarchicalConfig:
    return HierarchicalConfig(
        planner=PlannerConfig(
            max_rounds=1, synthesis=SynthesisConfig(beam_width=beam)
        ),
        intra_group_network=NetworkSpec(bandwidth=100e9 / 8),
        max_stages=2,
        # Planning is the CLI's scaffolding, not its subject: the explicit
        # verify_plan() below is the check, so the planner's own hook is off.
        verify_after_plan=False,
    )


def verify_registry(
    models: Sequence[str],
    num_gpus: int = 16,
    gpus_per_machine: int = 8,
    beam: int = 8,
) -> List[Tuple[str, str, float, VerificationReport]]:
    """Plan + verify each (model, testbed); returns per-case reports."""
    results: List[Tuple[str, str, float, VerificationReport]] = []
    for name in models:
        forward = build_tiny_model(name)
        for cluster in _testbeds(num_gpus, gpus_per_machine):
            plan = hap_pipeline(forward, cluster, _config(beam))
            t0 = time.perf_counter()
            report = verify_plan(plan, forward)
            seconds = time.perf_counter() - t0
            results.append((name, cluster.name, seconds, report))
    return results


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify", description=__doc__
    )
    parser.add_argument(
        "--models",
        nargs="+",
        default=MODEL_NAMES,
        choices=MODEL_NAMES,
        help="registry models to verify (default: all)",
    )
    parser.add_argument(
        "--num-gpus", type=int, default=16, help="testbed GPU count"
    )
    parser.add_argument(
        "--gpus-per-machine", type=int, default=8, help="GPUs per machine"
    )
    parser.add_argument(
        "--beam", type=int, default=8, help="synthesis beam width for planning"
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="list every diagnostic"
    )
    args = parser.parse_args(argv)

    failures = 0
    for name, testbed, seconds, report in verify_registry(
        args.models, args.num_gpus, args.gpus_per_machine, args.beam
    ):
        status = "ok" if report.ok else "FAIL"
        print(
            f"{name:>10s} x {testbed:<20s} {status:>4s}  "
            f"({len(report.errors)} error(s), {len(report.warnings)} warning(s), "
            f"{len(report.passes_run)} pass(es), verified in {seconds * 1e3:.0f} ms)"
        )
        if not report.ok or args.verbose:
            for d in report.diagnostics if args.verbose else report.errors:
                print(f"    {d.describe()}")
        if not report.ok:
            failures += 1
    if failures:
        print(f"\n{failures} plan(s) failed verification", file=sys.stderr)
        return 1
    return 0
