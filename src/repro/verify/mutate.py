"""Seeded-corruption helpers for the verifier's negative tests.

Each mutator takes a well-formed artifact, applies one targeted corruption of
the kind a buggy cache remap, block-reuse replay or parallel merge could
introduce, and returns ``(mutated, expected_code)`` — the diagnostic code the
verifier MUST report for the mutation.  The test harness asserts exactly
that, so the verifier's checks are pinned to real failure modes rather than
to whatever they happen to flag today.

Four families, mirroring the pass families:

* graph mutations (:data:`GRAPH_MUTATIONS`) — corrupt a
  :class:`~repro.graph.graph.ComputationGraph` behind the builder's back;
* program mutations (:data:`PROGRAM_MUTATIONS`) — corrupt a
  :class:`~repro.core.program.DistributedProgram`;
* schedule mutations (:data:`SCHEDULE_MUTATIONS`) — corrupt per-stage task
  orders;
* plan mutations (:data:`PLAN_MUTATIONS`) — corrupt a
  :class:`~repro.core.hierarchical.HierarchicalPlan` in place of the planner.

All mutators deep-copy (or rebuild) their input; the original artifact is
never modified.
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Callable, Dict, List, Sequence, Tuple

from ..core.hierarchical import HierarchicalPlan
from ..core.instructions import CommInstruction, CompInstruction, Instruction
from ..core.program import DistributedProgram
from ..core.properties import DistState, Property
from ..graph.graph import ComputationGraph, Node
from ..graph.ops import OpKind, get_op
from ..graph.tensor import DType, TensorSpec
from .schedule import Task


class MutationError(RuntimeError):
    """The artifact has no site the requested corruption applies to."""


def _with_instructions(
    program: DistributedProgram, instructions: List[Instruction]
) -> DistributedProgram:
    return DistributedProgram(
        graph=program.graph,
        instructions=instructions,
        properties=program.properties,
        num_devices=program.num_devices,
    )


# -- graph mutations -----------------------------------------------------------

def _last_compute_node(graph: ComputationGraph) -> Node:
    """The last non-source node of rank >= 1.

    Topological order puts it at the sink end of the graph, so in practice
    nothing consumes it and the injected defect cannot cascade into a
    consumer's re-derivation — the pinned code is the one diagnostic the
    checker must emit.
    """
    candidates = [
        node
        for node in graph
        if get_op(node.op).kind is not OpKind.SOURCE and node.spec.rank >= 1
    ]
    if not candidates:
        raise MutationError("graph has no non-source node with rank >= 1")
    return candidates[-1]


def corrupt_shape(graph: ComputationGraph) -> Tuple[ComputationGraph, str]:
    """Grow one dimension of a node's recorded spec -> G001."""
    mutated = copy.deepcopy(graph)
    node = _last_compute_node(mutated)
    bad_shape = (node.spec.shape[0] + 1,) + node.spec.shape[1:]
    node.spec = TensorSpec(bad_shape, node.spec.dtype)
    return mutated, "G001"


def flip_dtype(graph: ComputationGraph) -> Tuple[ComputationGraph, str]:
    """Flip a node's recorded dtype -> G002."""
    mutated = copy.deepcopy(graph)
    node = _last_compute_node(mutated)
    bad = DType.FLOAT16 if node.spec.dtype is not DType.FLOAT16 else DType.FLOAT32
    node.spec = TensorSpec(node.spec.shape, bad)
    return mutated, "G002"


def dangle_input(graph: ComputationGraph) -> Tuple[ComputationGraph, str]:
    """Point one node at a name the graph never defines -> G003."""
    mutated = copy.deepcopy(graph)
    for node in mutated:
        if node.inputs:
            node.inputs = ("__dangling__",) + node.inputs[1:]
            return mutated, "G003"
    raise MutationError("graph has no node with inputs")


def orphan_node(graph: ComputationGraph) -> Tuple[ComputationGraph, str]:
    """Splice in a computation nothing consumes or outputs -> G004."""
    mutated = copy.deepcopy(graph)
    feed = next((node for node in mutated), None)
    if feed is None:
        raise MutationError("graph is empty")
    orphan = Node(
        name="__orphan__",
        op="identity",
        inputs=(feed.name,),
        attrs={},
        spec=feed.spec,
    )
    mutated._nodes[orphan.name] = orphan
    mutated._order.append(orphan.name)
    return mutated, "G004"


#: name -> mutator over a ComputationGraph.
GRAPH_MUTATIONS: Dict[
    str, Callable[[ComputationGraph], Tuple[ComputationGraph, str]]
] = {
    "corrupt_shape": corrupt_shape,
    "flip_dtype": flip_dtype,
    "dangle_input": dangle_input,
    "orphan_node": orphan_node,
}


# -- program mutations ---------------------------------------------------------

def drop_collective(program: DistributedProgram) -> Tuple[DistributedProgram, str]:
    """Delete a collective whose output a later instruction consumes -> P001."""
    instructions = list(program.instructions)
    for idx, instr in enumerate(instructions):
        if not isinstance(instr, CommInstruction):
            continue
        consumed_later = any(
            (isinstance(later, CompInstruction) and instr.output in later.inputs)
            or (isinstance(later, CommInstruction) and later.input == instr.output)
            for later in instructions[idx + 1 :]
        )
        if consumed_later:
            del instructions[idx]
            return _with_instructions(program, instructions), "P001"
    raise MutationError("program has no collective with a downstream consumer")


def swap_dist_state(program: DistributedProgram) -> Tuple[DistributedProgram, str]:
    """Flip a collective's output ``DistState`` to an illegal one -> P004."""
    instructions = list(program.instructions)
    for idx, instr in enumerate(instructions):
        if not isinstance(instr, CommInstruction):
            continue
        out = instr.output.state
        # Whatever the legal destination was, replace it with a state the
        # rule table forbids for this collective kind.
        if out.is_replicated:
            bad = DistState.partial()
        elif out.is_sharded:
            bad = DistState.replicated()
        else:
            bad = DistState.sharded(0)
        instructions[idx] = dataclasses.replace(
            instr, output=Property(instr.output.ref, bad)
        )
        return _with_instructions(program, instructions), "P004"
    raise MutationError("program has no collective to corrupt")


def duplicate_instruction(program: DistributedProgram) -> Tuple[DistributedProgram, str]:
    """Emulate one graph node twice -> P002."""
    instructions = list(program.instructions)
    for idx, instr in enumerate(instructions):
        if isinstance(instr, CompInstruction):
            instructions.insert(idx + 1, instr)
            return _with_instructions(program, instructions), "P002"
    raise MutationError("program has no computation instruction")


def flip_compute_flag(program: DistributedProgram) -> Tuple[DistributedProgram, str]:
    """Invert a ``flops_sharded`` flag -> P006 (per-device flops now wrong)."""
    instructions = list(program.instructions)
    for idx, instr in enumerate(instructions):
        if isinstance(instr, CompInstruction):
            instructions[idx] = dataclasses.replace(
                instr, flops_sharded=not instr.flops_sharded
            )
            return _with_instructions(program, instructions), "P006"
    raise MutationError("program has no computation instruction")


#: name -> mutator over a DistributedProgram.
PROGRAM_MUTATIONS: Dict[
    str, Callable[[DistributedProgram], Tuple[DistributedProgram, str]]
] = {
    "drop_collective": drop_collective,
    "swap_dist_state": swap_dist_state,
    "duplicate_instruction": duplicate_instruction,
    "flip_compute_flag": flip_compute_flag,
}


# -- schedule mutations --------------------------------------------------------

Orders = List[List[Task]]


def _copy_orders(orders: Sequence[Sequence[Task]]) -> Orders:
    return [list(order) for order in orders]


def reorder_task(orders: Sequence[Sequence[Task]]) -> Tuple[Orders, str]:
    """Swap two adjacent tasks on one stage -> S003 (canonical order broken)."""
    mutated = _copy_orders(orders)
    for order in mutated:
        if len(order) >= 2:
            order[0], order[1] = order[1], order[0]
            return mutated, "S003"
    raise MutationError("no stage has two tasks to swap")


def move_backward_early(orders: Sequence[Sequence[Task]]) -> Tuple[Orders, str]:
    """Move a backward before its own forward on one stage -> S001 (deadlock)."""
    mutated = _copy_orders(orders)
    for order in mutated:
        for pos, (kind, c, j) in enumerate(order):
            if kind != "B":
                continue
            fpos = order.index(("F", c, j))
            if fpos < pos:
                order.insert(fpos, order.pop(pos))
                return mutated, "S001"
    raise MutationError("no backward task follows its forward")


def drop_task(orders: Sequence[Sequence[Task]]) -> Tuple[Orders, str]:
    """Delete one task from one stage -> S002 (send/recv pairing unmatched)."""
    mutated = _copy_orders(orders)
    for order in mutated:
        if order:
            order.pop()
            return mutated, "S002"
    raise MutationError("all task orders are empty")


#: name -> mutator over per-stage task orders.
SCHEDULE_MUTATIONS: Dict[
    str, Callable[[Sequence[Sequence[Task]]], Tuple[Orders, str]]
] = {
    "reorder_task": reorder_task,
    "move_backward_early": move_backward_early,
    "drop_task": drop_task,
}


# -- plan mutations ------------------------------------------------------------

def inflate_stage_memory(plan: HierarchicalPlan) -> Tuple[HierarchicalPlan, str]:
    """Blow a stage's resident parameter bytes past any device -> L004."""
    mutated = copy.deepcopy(plan)
    chunk = mutated.stages[0].chunks[0]
    capacity = max(mutated.stages[0].subcluster.device_memory())
    chunk.replicated_param_bytes += int(capacity * 10)
    return mutated, "L004"


def corrupt_virtual_index(plan: HierarchicalPlan) -> Tuple[HierarchicalPlan, str]:
    """Break the ``k = chunk * s + stage`` round-robin assignment -> L003."""
    mutated = copy.deepcopy(plan)
    chunk = mutated.stages[-1].chunks[-1]
    chunk.virtual_index += 1
    return mutated, "L003"


def corrupt_send_bytes(plan: HierarchicalPlan) -> Tuple[HierarchicalPlan, str]:
    """Mis-account a boundary hop's transfer bytes -> L002."""
    mutated = copy.deepcopy(plan)
    mutated.stages[0].chunks[0].send_bytes += 12345
    return mutated, "L002"


#: name -> mutator over a HierarchicalPlan.
PLAN_MUTATIONS: Dict[
    str, Callable[[HierarchicalPlan], Tuple[HierarchicalPlan, str]]
] = {
    "inflate_stage_memory": inflate_stage_memory,
    "corrupt_virtual_index": corrupt_virtual_index,
    "corrupt_send_bytes": corrupt_send_bytes,
}
