"""Schedule checks: is a pipeline task order executable and deadlock-free?

The schedule engine (:mod:`repro.simulator.schedule`) consumes, per physical
stage, an ordered list of ``(kind, chunk, microbatch)`` tasks and executes
them under in-order head consumption.  These passes prove the order sound
*statically*, before anything is simulated or executed:

* ``S001`` — deadlock-freedom: the dependency graph combining per-stage
  sequential order with the data edges (``F(k-1, j) -> F(k, j)``,
  ``F(k, j) -> B(k, j)``, ``B(k+1, j) -> B(k, j)``) must be acyclic.  These
  are exactly the send/recv dependencies of the pipelined execution, so a
  cycle is a guaranteed runtime deadlock.
* ``S002`` — task completeness and matched send/recv pairing: every
  ``(kind, chunk, microbatch)`` task appears exactly once on its physical
  stage, so every boundary send — interleaved wrap hops included — has
  exactly one matching receive.
* ``S003`` — per-microbatch ordering legality: the order must equal the
  canonical task enumeration of the named schedule
  (``gpipe``/``1f1b``/``interleaved-1f1b``), which encodes e.g. GPipe's
  reversed backward drain and Megatron's grouped interleaving.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..simulator.schedule import get_schedule
from .base import Diagnostic, Severity, VerificationReport, VerifierPass, run_passes

#: A task is (kind, chunk, microbatch); kind is "F" or "B".
Task = Tuple[str, int, int]


def _schedule_context(context: Dict[str, Any]) -> Tuple[int, int, int]:
    return context["num_stages"], context["num_microbatches"], context["num_chunks"]


class TaskCompletenessPass(VerifierPass):
    """S002: every task exactly once, sends and recvs matched per hop."""

    name = "schedule-completeness"
    codes = ("S002",)

    def run(
        self, orders: Sequence[Sequence[Task]], context: Dict[str, Any]
    ) -> Iterable[Diagnostic]:
        s, m, v = _schedule_context(context)
        if len(orders) != s:
            yield Diagnostic(
                "S002",
                Severity.ERROR,
                f"{len(orders)} per-stage task orders for {s} stages",
                "task orders",
            )
            return
        expected_per_stage = {
            ("F", c, j) for c in range(v) for j in range(m)
        } | {("B", c, j) for c in range(v) for j in range(m)}
        for i, order in enumerate(orders):
            seen: Dict[Task, int] = {}
            for pos, task in enumerate(order):
                if task in seen:
                    yield Diagnostic(
                        "S002",
                        Severity.ERROR,
                        f"task {task} appears twice (positions {seen[task]} and {pos})",
                        f"stage {i}",
                    )
                seen[task] = pos
                if task not in expected_per_stage:
                    yield Diagnostic(
                        "S002",
                        Severity.ERROR,
                        f"task {task} is outside the (kind, chunk<{v}, microbatch<{m}) "
                        "grid",
                        f"stage {i} order[{pos}]",
                    )
            missing = expected_per_stage - set(seen)
            for task in sorted(missing):
                # A missing forward leaves the downstream stage's matching
                # receive unpaired; a missing backward strands the upstream
                # gradient receive.  Either way the send/recv pairing breaks.
                yield Diagnostic(
                    "S002",
                    Severity.ERROR,
                    f"task {task} never scheduled — its boundary send/recv "
                    "pairing is unmatched",
                    f"stage {i}",
                )


class AcyclicityPass(VerifierPass):
    """S001: the send/recv dependency graph has no cycle (deadlock-freedom)."""

    name = "schedule-acyclicity"
    codes = ("S001",)

    def run(
        self, orders: Sequence[Sequence[Task]], context: Dict[str, Any]
    ) -> Iterable[Diagnostic]:
        s, m, v = _schedule_context(context)
        total_virtual = s * v
        # Node = (stage, kind, chunk, microbatch); edges = in-order execution
        # per stage plus the cross-stage data dependencies the engine enforces.
        nodes: List[Tuple[int, str, int, int]] = []
        index: Dict[Tuple[int, str, int, int], int] = {}
        for i, order in enumerate(orders[:s]):
            for kind, c, j in order:
                node = (i, kind, c, j)
                if node not in index:  # duplicates are S002's finding
                    index[node] = len(nodes)
                    nodes.append(node)
        succ: List[List[int]] = [[] for _ in nodes]
        indeg = [0] * len(nodes)

        def add_edge(a: Tuple[int, str, int, int], b: Tuple[int, str, int, int]) -> None:
            ia, ib = index.get(a), index.get(b)
            if ia is None or ib is None or ia == ib:
                return
            succ[ia].append(ib)
            indeg[ib] += 1

        for i, order in enumerate(orders[:s]):
            for prev, nxt in zip(order, order[1:]):
                add_edge((i, *prev), (i, *nxt))
        for i, kind, c, j in nodes:
            k = c * s + i
            if kind == "F":
                if k > 0:
                    add_edge(((k - 1) % s, "F", (k - 1) // s, j), (i, "F", c, j))
            else:
                add_edge((i, "F", c, j), (i, "B", c, j))
                if k < total_virtual - 1:
                    add_edge(((k + 1) % s, "B", (k + 1) // s, j), (i, "B", c, j))
        # Kahn's algorithm: every node left unconsumed sits on a cycle.
        queue = deque(i for i, d in enumerate(indeg) if d == 0)
        consumed = 0
        while queue:
            a = queue.popleft()
            consumed += 1
            for b in succ[a]:
                indeg[b] -= 1
                if indeg[b] == 0:
                    queue.append(b)
        if consumed != len(nodes):
            stuck = [nodes[i] for i, d in enumerate(indeg) if d > 0]
            sample = ", ".join(
                f"stage {i}:{kind}({c},{j})" for i, kind, c, j in stuck[:4]
            )
            yield Diagnostic(
                "S001",
                Severity.ERROR,
                f"dependency cycle: {len(stuck)} task(s) can never become "
                f"ready ({sample}{', …' if len(stuck) > 4 else ''}) — the "
                "pipeline deadlocks",
                "task orders",
            )


class CanonicalOrderPass(VerifierPass):
    """S003: the order equals the named schedule's canonical enumeration."""

    name = "schedule-canonical-order"
    codes = ("S003",)

    def run(
        self, orders: Sequence[Sequence[Task]], context: Dict[str, Any]
    ) -> Iterable[Diagnostic]:
        s, m, v = _schedule_context(context)
        schedule_name: Optional[str] = context.get("schedule_name")
        if schedule_name is None:
            return
        canonical = get_schedule(schedule_name, num_model_chunks=max(1, v)).task_orders(
            s, m, v
        )
        for i, (got, want) in enumerate(zip(orders, canonical)):
            if list(got) == list(want):
                continue
            pos = next(
                (p for p, (a, b) in enumerate(zip(got, want)) if a != b),
                min(len(got), len(want)),
            )
            yield Diagnostic(
                "S003",
                Severity.ERROR,
                f"order deviates from canonical {schedule_name!r} at position "
                f"{pos}: got {list(got)[pos] if pos < len(got) else '<end>'}, "
                f"expected {list(want)[pos] if pos < len(want) else '<end>'}",
                f"stage {i}",
            )


#: The default schedule-check pipeline, in execution order.
SCHEDULE_PASSES = (
    TaskCompletenessPass(),
    AcyclicityPass(),
    CanonicalOrderPass(),
)


def verify_schedule_orders(
    orders: Sequence[Sequence[Task]],
    num_stages: int,
    num_microbatches: int,
    num_chunks: int = 1,
    schedule_name: Optional[str] = None,
) -> VerificationReport:
    """Run every schedule check over explicit per-stage task orders.

    Passing the orders explicitly (instead of regenerating them from the
    schedule name) is what lets the negative-test harness verify *corrupted*
    orders; callers holding a plan use
    :func:`repro.verify.plan.verify_plan`, which regenerates the canonical
    orders from the plan's schedule name.
    """
    context: Dict[str, Any] = {
        "num_stages": num_stages,
        "num_microbatches": num_microbatches,
        "num_chunks": max(1, num_chunks),
        "schedule_name": schedule_name,
    }
    return run_passes(SCHEDULE_PASSES, orders, context)
