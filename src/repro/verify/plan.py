"""Plan checks: is a :class:`HierarchicalPlan` structurally sound?

These passes re-derive the hierarchical planner's invariants from the plan
artifact itself — the pipeline cut, the per-chunk plans and the schedule
result — against the original forward graph:

* ``L001`` — exact partition: the cut's stage graphs cover the forward graph
  exactly (every compute node and parameter in exactly one stage), and each
  chunk's forward nodes are exactly its cut stage's compute nodes.
* ``L002`` — boundary transfers: each chunk's boundary outputs are its cut
  refs, every incoming activation has a placeholder seed in the chunk graph,
  and ``send_bytes`` equals the bytes actually in flight across the chunk's
  outgoing hop (skip-connection tensors relayed across the hop included).
* ``L003`` — round-robin coverage: the ``ChunkPlan`` lists cover the
  ``s * v`` virtual stages exactly once each, with
  ``virtual_index == chunk * s + stage_index``.
* ``L004`` — memory feasibility: per-device peak memory re-derived from the
  chunk plans and the schedule's activation-stash peaks must agree with the
  plan's ``fits_memory`` verdict against the groups' device capacities.

:func:`verify_plan` composes these with the program checks over every chunk
program and the schedule checks over the plan's canonical task orders — the
one-call entry point used by ``verify_after_plan``, the cache-hit guard and
the ``python -m repro.verify`` CLI.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, Set

from ..core.hierarchical import HierarchicalPlan
from ..core.instructions import is_source_op
from ..graph.graph import ComputationGraph
from ..simulator.schedule import get_schedule
from .base import Diagnostic, Severity, VerificationReport, VerifierPass, run_passes
from .program import verify_program
from .schedule import verify_schedule_orders


class PartitionPass(VerifierPass):
    """L001: stage graphs partition the forward graph exactly."""

    name = "plan-partition"
    codes = ("L001",)

    def run(
        self, plan: HierarchicalPlan, context: Dict[str, Any]
    ) -> Iterable[Diagnostic]:
        forward: ComputationGraph = context["forward"]
        cut = plan.cut
        counts: Dict[str, int] = {}
        for stage_nodes in cut.stages:
            for name in stage_nodes:
                if name not in forward:
                    yield Diagnostic(
                        "L001",
                        Severity.ERROR,
                        f"cut lists {name!r}, which is not a forward-graph node",
                        "cut",
                    )
                    continue
                counts[name] = counts.get(name, 0) + 1
        for node in forward:
            n = counts.get(node.name, 0)
            if node.op == "placeholder":
                if n < 1:
                    yield Diagnostic(
                        "L001",
                        Severity.ERROR,
                        f"placeholder {node.name!r} is in no stage",
                        "cut",
                    )
            elif n != 1:
                yield Diagnostic(
                    "L001",
                    Severity.ERROR,
                    f"{node.op} node {node.name!r} appears in {n} stages "
                    "(must be exactly 1)",
                    "cut",
                )
        # Each chunk's forward compute must be exactly its cut stage's compute.
        for chunk in plan.chunk_sequence():
            k = chunk.virtual_index
            if not 0 <= k < cut.num_stages:
                continue  # L003's finding
            stage_compute = {
                name
                for name in cut.stages[k]
                if name in forward and not is_source_op(forward[name].op)
            }
            chunk_compute = {
                name
                for name in chunk.info.forward_nodes
                if name in chunk.info.graph
                and not is_source_op(chunk.info.graph[name].op)
            }
            if chunk_compute != stage_compute:
                extra = sorted(chunk_compute - stage_compute)[:3]
                missing = sorted(stage_compute - chunk_compute)[:3]
                yield Diagnostic(
                    "L001",
                    Severity.ERROR,
                    f"chunk forward compute differs from its cut stage "
                    f"(extra: {extra}, missing: {missing})",
                    f"virtual stage {k}",
                )


class BoundaryPass(VerifierPass):
    """L002: boundary refs and per-hop transfer bytes are consistent."""

    name = "plan-boundaries"
    codes = ("L002",)

    def run(
        self, plan: HierarchicalPlan, context: Dict[str, Any]
    ) -> Iterable[Diagnostic]:
        forward: ComputationGraph = context["forward"]
        cut = plan.cut
        for chunk in plan.chunk_sequence():
            k = chunk.virtual_index
            if not 0 <= k < cut.num_stages:
                continue  # L003's finding
            where = f"virtual stage {k}"
            if list(chunk.info.boundary_outputs) != list(cut.cut_refs[k]):
                yield Diagnostic(
                    "L002",
                    Severity.ERROR,
                    f"chunk boundary outputs {list(chunk.info.boundary_outputs)} "
                    f"do not match the cut's refs {list(cut.cut_refs[k])}",
                    where,
                )
            for ref in cut.incoming_refs(k):
                if ref not in chunk.info.graph or chunk.info.graph[ref].op != "placeholder":
                    yield Diagnostic(
                        "L002",
                        Severity.ERROR,
                        f"incoming activation {ref!r} has no placeholder seed "
                        "in the chunk graph",
                        where,
                    )
            # Outgoing-hop bytes: everything in flight across boundary k —
            # including skip-connection tensors this hop merely relays.
            if k < cut.num_stages - 1:
                expected = sum(
                    forward[ref].spec.size_bytes
                    for ref in cut.crossing_refs(k)
                    if ref in forward
                )
            else:
                expected = 0
            if chunk.send_bytes != expected:
                yield Diagnostic(
                    "L002",
                    Severity.ERROR,
                    f"send_bytes={chunk.send_bytes} but the hop actually ships "
                    f"{expected} bytes",
                    where,
                )


class ChunkCoveragePass(VerifierPass):
    """L003: chunk plans cover the ``s * v`` round-robin assignment exactly."""

    name = "plan-chunk-coverage"
    codes = ("L003",)

    def run(
        self, plan: HierarchicalPlan, context: Dict[str, Any]
    ) -> Iterable[Diagnostic]:
        s = plan.num_stages
        v = max(1, plan.num_model_chunks)
        seen: Set[int] = set()
        for i, stage in enumerate(plan.stages):
            if stage.index != i:
                yield Diagnostic(
                    "L003",
                    Severity.ERROR,
                    f"stage at position {i} carries index {stage.index}",
                    f"stage {i}",
                )
            if stage.num_chunks != v:
                yield Diagnostic(
                    "L003",
                    Severity.ERROR,
                    f"stage hosts {stage.num_chunks} chunks, expected {v}",
                    f"stage {i}",
                )
            for c, chunk in enumerate(stage.chunks):
                where = f"stage {i} chunk {c}"
                if chunk.chunk != c or chunk.stage_index != i:
                    yield Diagnostic(
                        "L003",
                        Severity.ERROR,
                        f"chunk carries (chunk={chunk.chunk}, "
                        f"stage_index={chunk.stage_index}), expected ({c}, {i})",
                        where,
                    )
                expected_k = chunk.chunk * s + chunk.stage_index
                if chunk.virtual_index != expected_k:
                    yield Diagnostic(
                        "L003",
                        Severity.ERROR,
                        f"virtual_index={chunk.virtual_index} but round-robin "
                        f"assignment requires chunk * s + stage = {expected_k}",
                        where,
                    )
                seen.add(chunk.virtual_index)
        expected = set(range(s * v))
        if seen != expected:
            yield Diagnostic(
                "L003",
                Severity.ERROR,
                f"virtual stages covered: {sorted(seen)}, expected "
                f"{sorted(expected)}",
                "chunks",
            )
        if plan.cut.num_stages != s * v:
            yield Diagnostic(
                "L003",
                Severity.ERROR,
                f"cut has {plan.cut.num_stages} stages for an s*v = {s * v} "
                "round-robin",
                "cut",
            )


class MemoryPass(VerifierPass):
    """L004: re-derived per-device peak memory agrees with ``fits_memory``."""

    name = "plan-memory"
    codes = ("L004",)

    def run(
        self, plan: HierarchicalPlan, context: Dict[str, Any]
    ) -> Iterable[Diagnostic]:
        stash = plan.schedule.peak_stash
        if len(stash) != plan.num_stages:
            yield Diagnostic(
                "L004",
                Severity.ERROR,
                f"schedule reports {len(stash)} stage stash peaks for "
                f"{plan.num_stages} stages",
                "schedule",
            )
            return
        derived_fits = True
        for i, stage in enumerate(plan.stages):
            capacities = stage.subcluster.device_memory()
            peaks = stage.peak_device_memory(
                stash[i], shard_optimizer_state=plan.shard_optimizer_state
            )
            for j, (peak, cap) in enumerate(zip(peaks, capacities)):
                if peak > cap:
                    derived_fits = False
                    yield Diagnostic(
                        "L004",
                        Severity.ERROR if plan.fits_memory else Severity.INFO,
                        f"device {j} needs {peak / 1e9:.3f} GB but its capacity "
                        f"is {cap / 1e9:.3f} GB",
                        f"stage {i} device {j}",
                    )
        if derived_fits and not plan.fits_memory:
            yield Diagnostic(
                "L004",
                Severity.ERROR,
                "plan claims fits_memory=False but every device fits the "
                "re-derived peak",
                "memory verdict",
            )
        # (fits_memory=True with an over-capacity device already produced an
        # error diagnostic per offending device above.)


#: The default plan-check pipeline, in execution order.
PLAN_PASSES = (
    ChunkCoveragePass(),
    PartitionPass(),
    BoundaryPass(),
    MemoryPass(),
)


def verify_plan_structure(
    plan: HierarchicalPlan, forward: ComputationGraph
) -> VerificationReport:
    """Run only the plan-level structural checks (L001–L004)."""
    return run_passes(PLAN_PASSES, plan, {"forward": forward})


def verify_plan(
    plan: HierarchicalPlan,
    forward: ComputationGraph,
    check_programs: bool = True,
    check_schedule: bool = True,
    check_cost: bool = True,
    lint: bool = True,
) -> VerificationReport:
    """Verify a hierarchical plan end to end.

    Composes the plan structure checks with the program checks over every
    chunk program (each against its own machine group and sharding ratios)
    and the schedule checks over the plan's canonical task orders, plus the
    warning-severity performance lints (:mod:`repro.verify.lint`).

    Args:
        plan: the plan to verify.
        forward: the forward graph the plan was built from.
        check_programs: run P001–P008 on every chunk program.
        check_schedule: run S001–S003 on the plan's task orders.
        check_cost: include the P008 cost cross-check per program (the most
            expensive check; the cache-hit guard disables it to keep warm
            lookups O(instructions)).
        lint: run the W001–W006 performance lints.  Warnings never flip
            ``report.ok``, so cache-hit acceptance is unaffected — but hits
            get the same audit trail as freshly planned requests.
    """
    report = verify_plan_structure(plan, forward)
    if lint:
        from .lint import lint_plan  # local import: lint depends on plan types

        report.merge(lint_plan(plan), prefix="lint")
    if check_programs:
        for chunk in plan.chunk_sequence():
            sub = verify_program(
                chunk.program,
                cluster=chunk.subcluster,
                ratios=chunk.ratios,
                check_cost=check_cost,
            )
            report.merge(sub, prefix=f"virtual stage {chunk.virtual_index}")
    if check_schedule:
        s = plan.num_stages
        v = max(1, plan.num_model_chunks)
        try:
            orders = get_schedule(plan.schedule_name, num_model_chunks=v).task_orders(
                s, plan.num_microbatches, v
            )
        except (KeyError, ValueError) as exc:
            report.add(
                Diagnostic(
                    "S003",
                    Severity.ERROR,
                    f"plan's schedule is not constructible: {exc}",
                    f"schedule {plan.schedule_name!r}",
                )
            )
        else:
            sub = verify_schedule_orders(
                orders,
                num_stages=s,
                num_microbatches=plan.num_microbatches,
                num_chunks=v,
                schedule_name=plan.schedule_name,
            )
            report.merge(sub, prefix=f"schedule {plan.schedule_name}")
    return report
