"""Static analysis suite: graph checks, plan verification, performance lints.

The synthesizer and hierarchical planner *construct* well-formed artifacts;
this package *proves* them well-formed after the fact, re-deriving every
invariant from first principles so corruption introduced anywhere between
synthesis and use — a stale cache entry, a bad rename in block-reuse replay,
a parallel-merge bug — surfaces as a :class:`Diagnostic` instead of a wrong
plan.  On top of the error-severity proofs, the graph checker validates the
IR *before* planning and the plan linter flags legal-but-slow plans with
warning-severity findings.  See the README's "Plan verification and static
analysis" section for the diagnostic-code tables.

Entry points:

* :func:`verify_graph` — G001–G006 over one ``ComputationGraph`` (forward,
  training, or planner-cut stage graph);
* :func:`verify_program` — P001–P008 over one ``DistributedProgram``;
* :func:`verify_plan` — L001–L004 plus per-chunk program checks, S001–S003
  schedule checks, and (by default) the W001–W006 lints over one
  ``HierarchicalPlan``;
* :func:`lint_plan` — only the W001–W006 performance lints;
* :func:`verify_schedule_orders` — S001–S003 over explicit task orders;
* ``python -m repro.verify`` — plan + verify every registry model
  (``--lint`` adds the performance lints, ``--strict-warnings`` makes
  warnings fail the run, ``--json`` emits a machine-readable report).
"""

from .base import (
    Diagnostic,
    PlanVerificationError,
    Severity,
    VerificationReport,
    VerifierPass,
    run_passes,
)
from .graph import GRAPH_PASSES, verify_graph
from .lint import LINT_PASSES, lint_plan
from .plan import PLAN_PASSES, verify_plan, verify_plan_structure
from .program import PROGRAM_PASSES, verify_program
from .schedule import SCHEDULE_PASSES, verify_schedule_orders

__all__ = [
    "Diagnostic",
    "PlanVerificationError",
    "Severity",
    "VerificationReport",
    "VerifierPass",
    "run_passes",
    "GRAPH_PASSES",
    "LINT_PASSES",
    "PROGRAM_PASSES",
    "PLAN_PASSES",
    "SCHEDULE_PASSES",
    "verify_graph",
    "lint_plan",
    "verify_program",
    "verify_plan",
    "verify_plan_structure",
    "verify_schedule_orders",
]
