"""Static plan verifier: independent analysis over programs, plans, schedules.

The synthesizer and hierarchical planner *construct* well-formed artifacts;
this package *proves* them well-formed after the fact, re-deriving every
invariant from first principles so corruption introduced anywhere between
synthesis and use — a stale cache entry, a bad rename in block-reuse replay,
a parallel-merge bug — surfaces as a :class:`Diagnostic` instead of a wrong
plan.  See the README's "Plan verification" section for the diagnostic-code
table.

Entry points:

* :func:`verify_program` — P001–P008 over one ``DistributedProgram``;
* :func:`verify_plan` — L001–L004 plus per-chunk program checks and S001–S003
  schedule checks over one ``HierarchicalPlan``;
* :func:`verify_schedule_orders` — S001–S003 over explicit task orders;
* ``python -m repro.verify`` — plan + verify every registry model.
"""

from .base import (
    Diagnostic,
    PlanVerificationError,
    Severity,
    VerificationReport,
    VerifierPass,
    run_passes,
)
from .plan import PLAN_PASSES, verify_plan, verify_plan_structure
from .program import PROGRAM_PASSES, verify_program
from .schedule import SCHEDULE_PASSES, verify_schedule_orders

__all__ = [
    "Diagnostic",
    "PlanVerificationError",
    "Severity",
    "VerificationReport",
    "VerifierPass",
    "run_passes",
    "PROGRAM_PASSES",
    "PLAN_PASSES",
    "SCHEDULE_PASSES",
    "verify_program",
    "verify_plan",
    "verify_plan_structure",
    "verify_schedule_orders",
]
