"""Graph IR checks: does a :class:`ComputationGraph` mean what it records?

The graph checker is an abstract interpreter over the operator registry
(:mod:`repro.graph.ops`, :mod:`repro.graph.grad_ops`): it re-derives every
node's output :class:`~repro.graph.tensor.TensorSpec` from the op's own shape
semantics applied to the *recorded* input specs, and diagnoses any node whose
recorded metadata disagrees with the re-derivation.  Builders, autodiff and
the hierarchical planner's stage cutter all construct graphs through
:meth:`ComputationGraph.add_node` — which runs the same inference — so a
clean graph stays clean; the checker exists for graphs that crossed a trust
boundary (a cache, a pickle, a remap, a hand-built test artifact) or were
corrupted after construction, where a stale ``spec`` would otherwise surface
as a runtime shape error deep inside synthesis.

* ``G001`` — shape mismatch: the op's inferred output shape disagrees with
  the node's recorded ``spec.shape``.
* ``G002`` — dtype mismatch: the inferred dtype disagrees with the recorded
  ``spec.dtype``.
* ``G003`` — dangling input: a node consumes a name that is not defined
  earlier in the graph (unknown, or defined only later — the insertion order
  is required to be topological).
* ``G004`` — dead node: a non-source node that nothing consumes and that is
  not a graph output / loss / declared root; the planner would synthesize
  and pay for a computation whose result is unreachable.
* ``G005`` — batch-dim inconsistency: an op mixes operands carrying two
  different propagated leading batch dimensions (batch tracking starts at
  the rank>=1 placeholders and follows ops that preserve the leading dim).
* ``G006`` — op semantics violated: unknown operator, wrong arity, or the
  op's own ``infer`` rejecting the recorded input specs outright.

:func:`verify_graph` is the entry point; ``roots`` names additional liveness
roots (boundary activations, upstream gradients) for pipeline-stage graphs
whose interesting outputs are consumed by *other* stages.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Set

from ..graph.graph import ComputationGraph, Node
from ..graph.ops import OpDef, OpKind, get_op
from ..graph.tensor import TensorSpec
from .base import Diagnostic, Severity, VerificationReport, VerifierPass, run_passes


def _op_def(node: Node) -> Optional[OpDef]:
    """The node's registered operator, or ``None`` when unregistered."""
    try:
        return get_op(node.op)
    except KeyError:
        return None


class OpSemanticsPass(VerifierPass):
    """G001/G002/G006: re-derive every spec from the op registry's semantics."""

    name = "graph-shapes"
    codes = ("G001", "G002", "G006")

    def run(
        self, graph: ComputationGraph, context: Dict[str, Any]
    ) -> Iterable[Diagnostic]:
        for node in graph:
            where = f"node {node.name} ({node.op})"
            op_def = _op_def(node)
            if op_def is None:
                yield Diagnostic(
                    "G006",
                    Severity.ERROR,
                    f"operator {node.op!r} is not in the registry",
                    where,
                )
                continue
            if op_def.num_inputs is not None and len(node.inputs) != op_def.num_inputs:
                yield Diagnostic(
                    "G006",
                    Severity.ERROR,
                    f"operator {node.op!r} takes {op_def.num_inputs} inputs, "
                    f"node has {len(node.inputs)}",
                    where,
                )
                continue
            if any(inp not in graph for inp in node.inputs):
                continue  # G003's finding; no specs to infer from
            input_specs = [graph[inp].spec for inp in node.inputs]
            try:
                derived: TensorSpec = op_def.infer(input_specs, node.attrs)
            except ValueError as exc:
                yield Diagnostic(
                    "G006",
                    Severity.ERROR,
                    f"op semantics reject the recorded inputs: {exc}",
                    where,
                )
                continue
            if derived.shape != node.spec.shape:
                yield Diagnostic(
                    "G001",
                    Severity.ERROR,
                    f"recorded shape {node.spec.shape} but {node.op} over "
                    f"{[s.shape for s in input_specs]} infers {derived.shape}",
                    where,
                )
            if derived.dtype is not node.spec.dtype:
                yield Diagnostic(
                    "G002",
                    Severity.ERROR,
                    f"recorded dtype {node.spec.dtype.value} but {node.op} "
                    f"infers {derived.dtype.value}",
                    where,
                )


class TopologyPass(VerifierPass):
    """G003/G004: def-before-use inputs and no unreachable compute."""

    name = "graph-topology"
    codes = ("G003", "G004")

    def run(
        self, graph: ComputationGraph, context: Dict[str, Any]
    ) -> Iterable[Diagnostic]:
        defined: Set[str] = set()
        for node in graph:
            for inp in node.inputs:
                if inp not in defined:
                    reason = (
                        "defined only later (order is not topological)"
                        if inp in graph
                        else "not a node of the graph"
                    )
                    yield Diagnostic(
                        "G003",
                        Severity.ERROR,
                        f"input {inp!r} is dangling: {reason}",
                        f"node {node.name} ({node.op})",
                    )
            defined.add(node.name)
        live: Set[str] = set(graph.outputs)
        if graph.loss is not None:
            live.add(graph.loss)
        live.update(context.get("roots") or ())
        consumers = graph.consumers()
        for node in graph:
            if node.name in live or consumers.get(node.name):
                continue
            op_def = _op_def(node)
            if op_def is not None and op_def.kind is OpKind.SOURCE:
                continue  # unused data/parameter bindings carry no compute
            yield Diagnostic(
                "G004",
                Severity.ERROR,
                "node is dead: nothing consumes it and it is not an "
                "output/loss/root",
                f"node {node.name} ({node.op})",
            )


#: Ops that legitimately bridge two batch spaces: MoE dispatch/combine (and
#: their gradients) reindex between token space ``[N, ...]`` and expert
#: space ``[E, C, ...]``, so their operands' leading dims never agree.
MIXED_BATCH_OPS = frozenset(
    {"moe_dispatch", "moe_combine", "moe_dispatch_grad", "moe_combine_grad"}
)


class BatchDimPass(VerifierPass):
    """G005: the leading batch dimension propagates consistently.

    Batch tracking starts at every rank>=1 placeholder (data inputs and
    pipeline-boundary activation seeds) and follows any op whose output keeps
    the common leading dimension of its batch-carrying inputs.  An op whose
    operands carry two *different* propagated batch sizes mixes tensors from
    two different batches — the classic stage-cut / reshape bug class the
    shape rules alone cannot see, because many such mixtures still have
    compatible shapes.  Ops in :data:`MIXED_BATCH_OPS` are exempt: they
    reindex between batch spaces by design.
    """

    name = "graph-batchdim"
    codes = ("G005",)

    def run(
        self, graph: ComputationGraph, context: Dict[str, Any]
    ) -> Iterable[Diagnostic]:
        batch: Dict[str, Optional[int]] = {}
        for node in graph:
            if node.op == "placeholder":
                batch[node.name] = node.spec.shape[0] if node.spec.rank >= 1 else None
                continue
            op_def = _op_def(node)
            if op_def is None or op_def.kind is OpKind.SOURCE:
                batch[node.name] = None
                continue
            if node.op in MIXED_BATCH_OPS:
                batch[node.name] = None
                continue
            carried = {
                batch[inp]
                for inp in node.inputs
                if inp in batch and batch[inp] is not None
            }
            if len(carried) > 1:
                yield Diagnostic(
                    "G005",
                    Severity.ERROR,
                    f"operands carry inconsistent batch dimensions "
                    f"{sorted(carried)}",
                    f"node {node.name} ({node.op})",
                )
                batch[node.name] = None
                continue
            b = carried.pop() if carried else None
            keeps_batch = (
                b is not None and node.spec.rank >= 1 and node.spec.shape[0] == b
            )
            batch[node.name] = b if keeps_batch else None


#: The default graph-check pipeline, in execution order.
GRAPH_PASSES = (
    TopologyPass(),
    OpSemanticsPass(),
    BatchDimPass(),
)


def verify_graph(
    graph: ComputationGraph, roots: Optional[Iterable[str]] = None
) -> VerificationReport:
    """Run every graph check over one computation graph.

    Args:
        graph: the forward / training / stage graph to verify.
        roots: extra liveness roots for the G004 dead-node analysis, beyond
            the graph's own outputs and loss — a pipeline-stage graph's
            boundary activations and exported upstream gradients live here,
            because their consumers are other stages.
    """
    context: Dict[str, Any] = {}
    if roots is not None:
        context["roots"] = set(roots)
    return run_passes(GRAPH_PASSES, graph, context)
