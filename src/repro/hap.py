"""User-facing API, analogous to the paper's ``hap.HAP`` entry point (Sec. 6).

The paper's API takes a single-device PyTorch model plus a device
specification and returns a distributed model.  Here the "model" is a
single-device :class:`~repro.graph.graph.ComputationGraph` (forward graph with
a marked loss, or a full training graph) and the result is a
:class:`~repro.core.pipeline.HAPPlan` bundling the synthesized distributed
program, the optimised sharding ratios and the cost estimate.  The plan can be
executed with the SPMD runtime (:mod:`repro.runtime.spmd`) or replayed on the
execution simulator (:mod:`repro.simulator`).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from .autodiff import build_training_graph
from .cluster.spec import ClusterSpec
from .core.config import PlannerConfig
from .core.hierarchical import HierarchicalConfig, HierarchicalPlan, HierarchicalPlanner
from .core.pipeline import HAPPlan, HAPPlanner
from .graph.graph import ComputationGraph
from .graph.ops import OpKind


def _is_training_graph(graph: ComputationGraph) -> bool:
    """True if the graph already contains optimizer-update nodes."""
    return any(node.kind is OpKind.OPTIMIZER for node in graph)


def hap(
    model: ComputationGraph,
    cluster: ClusterSpec,
    config: Optional[PlannerConfig] = None,
    lr: float = 0.01,
) -> HAPPlan:
    """Plan SPMD training of ``model`` on ``cluster``.

    Args:
        model: a single-device computation graph.  A forward graph with a
            marked loss is automatically expanded into the full training graph
            (forward + backward + SGD updates); a graph that already contains
            ``sgd_update`` nodes is used as-is.
        cluster: the (possibly heterogeneous) target cluster.
        config: planner configuration; defaults to full HAP.
        lr: learning rate used when expanding a forward graph.

    Returns:
        The :class:`HAPPlan` with program, ratios and estimated iteration time.
    """
    graph = model
    if not _is_training_graph(model):
        if model.loss is None:
            raise ValueError(
                "hap() needs either a training graph (with sgd_update nodes) or a "
                "forward graph with a marked loss"
            )
        graph = build_training_graph(model, lr=lr).graph
    planner = HAPPlanner(graph, cluster, config)
    return planner.plan()


def hap_pipeline(
    model: ComputationGraph,
    cluster: ClusterSpec,
    config: Optional[HierarchicalConfig] = None,
    lr: Optional[float] = None,
) -> HierarchicalPlan:
    """Plan hierarchical (pipeline-over-SPMD) training of ``model``.

    Partitions the cluster into contiguous machine groups, cuts the model
    into real chunks balanced against each group's compute (one per stage,
    or ``s * num_model_chunks`` round-robin chunks for the interleaved
    schedule), plans every chunk with flat HAP, and searches (stage count x
    schedule x microbatch count x recomputation) for the cheapest
    memory-feasible iteration (1 stage = flat HAP).  The result can be
    executed with :func:`repro.runtime.run_hierarchical_plan` or simulated
    with :func:`repro.simulator.simulate_hierarchical`.

    Args:
        model: a single-device *forward* graph with a marked loss (stages are
            differentiated individually, so a pre-built training graph is
            rejected).
        cluster: the (possibly heterogeneous) target cluster.
        config: hierarchical-planner configuration.
        lr: learning rate stored on the stage graphs' update nodes; when
            omitted, ``config.lr`` applies.

    Returns:
        The winning :class:`HierarchicalPlan`.
    """
    if _is_training_graph(model):
        raise ValueError(
            "hap_pipeline() needs the forward graph (with a marked loss); "
            "pipeline stages are differentiated individually"
        )
    config = config or HierarchicalConfig()
    if lr is not None and lr != config.lr:
        config = replace(config, lr=lr)
    return HierarchicalPlanner(model, cluster, config).plan()
