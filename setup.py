"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file is kept so that
offline machines lacking the ``wheel`` package (PEP 660 editable installs
require it) can still do a development install with ``python setup.py
develop`` or ``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import setup

setup()
