"""Fig. 4: padded All-Gather vs grouped Broadcast under uneven sharding."""

from repro.experiments import fig4_all_gather_variants


def test_fig4_allgather_variants(benchmark, record_rows):
    rows = benchmark.pedantic(fig4_all_gather_variants, rounds=1, iterations=1)
    record_rows(rows, "Fig. 4 — All-Gather implementations on a 4 MB tensor")
    winners = [row["winner"] for row in rows]
    # Padded All-Gather wins for nearly-even shards; grouped Broadcast wins
    # under heavy skew; there is exactly one crossover.
    assert winners[0] == "padded"
    assert winners[-1] == "grouped"
    flips = sum(1 for a, b in zip(winners, winners[1:]) if a != b)
    assert flips == 1
    padded = [row["padded_all_gather_gbps"] for row in rows]
    grouped = [row["grouped_broadcast_gbps"] for row in rows]
    assert padded == sorted(padded, reverse=True)
    assert max(grouped) - min(grouped) < 1e-6 * max(grouped) + 1e-9
