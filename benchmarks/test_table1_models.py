"""Table 1: benchmark models and parameter counts."""

from repro.experiments import table1_models

from .conftest import bench_planner  # noqa: F401  (keeps import surface uniform)


def test_table1_models(benchmark, record_rows):
    rows = benchmark.pedantic(table1_models, kwargs={"num_gpus": 8}, rounds=1, iterations=1)
    record_rows(rows, "Table 1 — benchmark models (8 GPUs)")
    names = [row["model"] for row in rows]
    assert names == ["vgg19", "vit", "bert_base", "bert_moe"]
    # Parameter counts stay within 2x of the paper's figures (our BERT LM head
    # is untied and the MoE expert width differs slightly; see EXPERIMENTS.md).
    for row in rows:
        ratio = row["parameters_millions"] / row["paper_parameters_millions"]
        assert 0.5 < ratio < 2.0, row
