"""Fig. 16: one HAP job on the whole cluster vs concurrent jobs on subsets."""

from repro.experiments import fig16_concurrent_training

from .conftest import FULL, bench_models, bench_planner, bench_scale


def test_fig16_concurrent(benchmark, record_rows):
    models = bench_models() if FULL else ("vit", "bert_base")
    rows = benchmark.pedantic(
        fig16_concurrent_training,
        kwargs={
            "models": models,
            "scale": bench_scale(),
            "planner_config": bench_planner(),
            "gpus_per_machine": 8 if FULL else 4,
        },
        rounds=1,
        iterations=1,
    )
    record_rows(rows, "Fig. 16 — HAP vs concurrent training on homogeneous subsets")

    for row in rows:
        # The paper reports 64%-96%: heterogeneity costs something, but HAP
        # keeps a large fraction of the idealised concurrent throughput.
        assert 40.0 <= row["hap_relative_pct"] <= 120.0, row
        assert row["hap_samples_per_s"] > 0
