"""Pipeline-schedule planning benchmark harness.

Times hierarchical (pipeline-over-SPMD) planning — whose candidate space is
now a (stage count x schedule x microbatch count x recomputation) grid — on
three representative testbeds, and records the chosen plan so schedule-search
cost regressions and plan-quality drifts are both visible:

* ``hetero-bandwidth``: the whimpy heterogeneous cluster (fast rack-local
  links, slow 10.4 Gbps inter-group network) where pipelining wins big;
* ``memory-constrained``: 1 GB devices where GPipe's linear activation
  footprint is infeasible and the planner must fall back to 1F1B-family
  schedules at high microbatch counts;
* ``homogeneous-fast``: a compute-bound cluster with a fast flat network
  where the planner must degenerate to flat HAP;
* ``interleaved-chunked``: the bandwidth-constrained cluster again, with the
  search forced onto ``interleaved-1f1b`` so planning must cut ``s * v`` real
  model chunks and run flat HAP per chunk — the per-chunk planning cost that
  the ``--max-planning-seconds`` guard keeps in check.

The ``hetero-bandwidth`` entry doubles as the **overlap testbed**: the chosen
plan's measured stage profiles are re-simulated per schedule with blocking
(``overlap=0``) and with the cluster's default overlap efficiency, recording
exposed-vs-hidden boundary-transfer seconds into the report (``overlap`` key)
so drifts in how much communication the dual-stream schedules hide are
visible next to the planning-cost numbers.

Usage::

    PYTHONPATH=src python -m benchmarks.bench_pipeline            # default
    PYTHONPATH=src python -m benchmarks.bench_pipeline --fast     # CI-sized
    PYTHONPATH=src python -m benchmarks.bench_pipeline --max-planning-seconds 120

Every testbed's chosen plan is additionally run through the static plan
verifier (:func:`repro.verify.verify_plan`) and the performance linter
(:func:`repro.verify.lint_plan`), with the wall-clocks recorded as
``verify_seconds`` and ``lint_seconds`` next to ``planning_seconds`` (plus
``lint_warnings`` / ``lint_warning_codes`` counts) — both are priced
separately and deliberately outside the ``--max-planning-seconds`` budget; an
unverifiable plan aborts the benchmark.

A **warm-cache** section re-plans the hetero testbed through an in-memory
plan cache and records the cold/warm speedup (``warm_cache`` key); the
``--min-cache-speedup`` guard enforces that a warm hit stays O(lookup).

A **parallel** section plans the hetero testbed cold, serially and with
``--planner-workers`` processes fanning out the candidate grid over a shared
disk plan cache — composed with ``--synthesis-workers`` beam-expansion
workers per plan, so both dimensions of the shared worker pool run at once —
and records the wall-clock speedup plus a bit-identical check (``parallel``
key).  ``--min-parallel-speedup`` turns the speedup into a CI guard (it
needs at least as many usable cores as workers).

Writes ``benchmarks/results/BENCH_pipeline.json`` (a git-ignored directory,
so bench runs never dirty the tree).  With ``--max-planning-seconds`` the
harness exits non-zero when any testbed's planner wall-clock exceeds the
budget — the CI guard against schedule-search blow-ups.  This file
deliberately does not match ``test_*.py`` so pytest does not collect it.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List

from repro.cluster import ClusterSpec, Machine, NetworkSpec, heterogeneous_testbed, homogeneous_testbed
from repro.cluster.device import DeviceType
from repro.core import DiskPlanCache, HierarchicalConfig, InMemoryPlanCache, close_shared_pool
from repro.hap import hap_pipeline
from repro.models import BenchmarkScale, build_model
from repro.simulator import simulate_hierarchical, simulate_pipeline
from repro.verify import lint_plan, verify_plan

from .conftest import bench_planner


def _overlap_record(plan) -> Dict[str, object]:
    """Exposed-vs-hidden boundary transfer per schedule for one plan.

    Re-simulates the plan's measured stage profiles under every
    single-chunk schedule, blocking vs the plan's overlap efficiency.  The
    blocking baseline is profiled with ``overlap=0`` end to end — chunk
    collectives *and* boundary transfers serialized — so the recorded gap
    is the full dual-stream win, not just the boundary-transfer part.
    """
    blocking_profiles = simulate_hierarchical(plan, iterations=1, overlap=0.0).stage_times
    overlap_profiles = simulate_hierarchical(plan, iterations=1).stage_times
    network = plan.partition.inter_group_network
    schedules: Dict[str, object] = {}
    for name in ("gpipe", "1f1b"):
        kwargs = dict(
            num_microbatches=plan.num_microbatches,
            inter_group_bandwidth=network.bandwidth,
            inter_group_latency=network.latency,
            microbatch_overhead=plan.microbatch_overhead,
            schedule=name,
            num_model_chunks=1,
        )
        try:
            blocking = simulate_pipeline(blocking_profiles, overlap=0.0, **kwargs)
            overlapped = simulate_pipeline(
                overlap_profiles, overlap=plan.overlap, **kwargs
            )
        except ValueError:
            continue  # schedule cannot run this configuration
        schedules[name] = {
            "blocking_ms": blocking.total * 1e3,
            "overlapped_ms": overlapped.total * 1e3,
            "transfer_ms": overlapped.transfer * 1e3,
            "exposed_transfer_ms": overlapped.exposed_transfer * 1e3,
            "hidden_transfer_ms": overlapped.hidden_transfer * 1e3,
            "hidden_fraction": (
                overlapped.hidden_transfer / overlapped.transfer
                if overlapped.transfer
                else 0.0
            ),
        }
    return {"efficiency": plan.overlap, "schedules": schedules}


def _memory_constrained_cluster(num_machines: int = 4) -> ClusterSpec:
    small = DeviceType("SmallGPU", peak_tflops=15.0, memory_bytes=1 * 1024 ** 3)
    machines = [
        Machine(f"m{i}", small, num_gpus=1, intra_bandwidth=100e9)
        for i in range(num_machines)
    ]
    return ClusterSpec(
        machines,
        network=NetworkSpec(bandwidth=100e9 / 8, latency=5e-6),
        group_by_machine=True,
        name="mem-constrained",
    )


def _homogeneous_fast() -> ClusterSpec:
    base = homogeneous_testbed()
    return ClusterSpec(
        base.machines,
        network=NetworkSpec(bandwidth=200e9, latency=1e-6),
        group_by_machine=base.group_by_machine,
        name="homog-fast",
    )


def _testbeds(fast: bool) -> List[Dict[str, object]]:
    """(name, cluster, per-testbed overrides) per benchmarked setup."""
    intra = NetworkSpec(bandwidth=100e9 / 8)
    # The memory-constrained testbed needs a batch large enough that GPipe's
    # linear activation stash bursts the 1 GB devices while 1F1B's
    # depth-bounded stash fits — otherwise the schedule-selection path the
    # benchmark documents would go unexercised.
    memory_scale = BenchmarkScale(
        "bench-mem", layer_fraction=0.17 if fast else 0.34, batch_per_device=16
    )
    return [
        {
            "name": "hetero-bandwidth",
            "cluster": heterogeneous_testbed(num_gpus=16 if fast else 32, gpus_per_machine=8),
            "intra_group_network": intra,
            "scale": None,
        },
        {
            "name": "memory-constrained",
            "cluster": _memory_constrained_cluster(),
            "intra_group_network": None,
            "scale": memory_scale,
        },
        {
            "name": "homogeneous-fast",
            "cluster": _homogeneous_fast(),
            "intra_group_network": None,
            "scale": None,
        },
        {
            "name": "interleaved-chunked",
            "cluster": heterogeneous_testbed(num_gpus=16 if fast else 32, gpus_per_machine=8),
            "intra_group_network": intra,
            "scale": None,
            "schedules": ["interleaved-1f1b"],
            "num_model_chunks": 2,
        },
    ]


def bench_warm_cache(fast: bool, beam: int, rounds: int) -> Dict[str, object]:
    """Cold-vs-warm planning of the hetero testbed through the plan cache.

    The cold pass plans from scratch and populates an
    :class:`~repro.core.InMemoryPlanCache`; the warm pass re-plans the exact
    same (graph, cluster, config) problem and must be served by the
    content-addressed whole-plan entry — the planner-as-a-service scenario
    where repeated plan requests are O(lookup).
    """
    cluster = heterogeneous_testbed(num_gpus=16 if fast else 32, gpus_per_machine=8)
    scale = BenchmarkScale(
        "bench", layer_fraction=0.17 if fast else 0.34, batch_per_device=4 if fast else 8
    )
    forward = build_model("bert_base", num_gpus=cluster.num_gpus, scale=scale)
    cache = InMemoryPlanCache()
    config = HierarchicalConfig(
        planner=bench_planner(beam=beam, rounds=rounds),
        intra_group_network=NetworkSpec(bandwidth=100e9 / 8),
        plan_cache=cache,
    )
    t0 = time.perf_counter()
    cold = hap_pipeline(forward, cluster, config)
    cold_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = hap_pipeline(forward, cluster, config)
    warm_seconds = time.perf_counter() - t0
    record = {
        "testbed": "hetero-bandwidth",
        "num_gpus": cluster.num_gpus,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "cache_speedup": cold_seconds / warm_seconds,
        "whole_plan_hit": warm.reuse_stats.get("whole_plan_hit", 0),
        "identical": (
            warm.estimated_time == cold.estimated_time
            and warm.schedule_name == cold.schedule_name
            and warm.num_stages == cold.num_stages
        ),
        "cold_reuse_stats": cold.reuse_stats,
        "cache_entries": len(cache),
    }
    print(
        f"{'warm-cache':>20s}: cold {cold_seconds:6.2f}s -> warm "
        f"{warm_seconds * 1e3:6.1f} ms ({record['cache_speedup']:.0f}x, "
        f"hit={record['whole_plan_hit']}, identical={record['identical']})"
    )
    return record


def bench_parallel(
    fast: bool, beam: int, rounds: int, workers: int, synthesis_workers: int
) -> Dict[str, object]:
    """Serial vs multiprocess candidate-grid planning of the hetero testbed.

    Both passes plan cold through their own fresh shared
    :class:`~repro.core.DiskPlanCache` directory (the topology the worker
    pool coordinates through), so the comparison is spawn-and-merge overhead
    against genuine grid-cell parallelism.  The parallel pass also sets
    ``synthesis_workers`` — both parallelism dimensions drawn from the shared
    worker pool at once, with the nested per-process budget clamping the
    composition exercises — while the serial pass keeps both at 1.  The
    parallel plan must be bit-identical to the serial one — same
    ``describe()``, same candidate times — which ``identical`` records and
    ``main`` enforces.
    """
    cluster = heterogeneous_testbed(num_gpus=16 if fast else 32, gpus_per_machine=8)
    scale = BenchmarkScale(
        "bench", layer_fraction=0.17 if fast else 0.34, batch_per_device=4 if fast else 8
    )
    forward = build_model("bert_base", num_gpus=cluster.num_gpus, scale=scale)

    def run(num_workers: int, synth_workers: int, directory: str):
        config = HierarchicalConfig(
            planner=bench_planner(
                beam=beam, rounds=rounds, synthesis_workers=synth_workers
            ),
            intra_group_network=NetworkSpec(bandwidth=100e9 / 8),
            plan_cache=DiskPlanCache(directory),
            planner_workers=num_workers,
        )
        t0 = time.perf_counter()
        plan = hap_pipeline(forward, cluster, config)
        return plan, time.perf_counter() - t0

    try:
        with tempfile.TemporaryDirectory() as serial_dir:
            serial, serial_seconds = run(1, 1, serial_dir)
        with tempfile.TemporaryDirectory() as parallel_dir:
            parallel, parallel_seconds = run(workers, synthesis_workers, parallel_dir)
    finally:
        close_shared_pool()
    record = {
        "testbed": "hetero-bandwidth",
        "num_gpus": cluster.num_gpus,
        "planner_workers": workers,
        "synthesis_workers": synthesis_workers,
        "cpu_count": os.cpu_count(),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "parallel_speedup": serial_seconds / parallel_seconds,
        "identical": (
            serial.describe() == parallel.describe()
            and serial.estimated_time == parallel.estimated_time
            and serial.schedule_candidate_times == parallel.schedule_candidate_times
        ),
    }
    print(
        f"{'parallel':>20s}: serial {serial_seconds:6.2f}s -> {workers} workers "
        f"(x{synthesis_workers} synth) "
        f"{parallel_seconds:6.2f}s ({record['parallel_speedup']:.2f}x on "
        f"{record['cpu_count']} cpus, identical={record['identical']})"
    )
    return record


def run_benchmark(
    fast: bool, beam: int, rounds: int, workers: int, synthesis_workers: int
) -> Dict[str, object]:
    # The reduced batch exercises BenchmarkScale.batch_per_device end to end:
    # the global batch genuinely shrinks with the scale now.
    default_scale = BenchmarkScale(
        "bench", layer_fraction=0.17 if fast else 0.34, batch_per_device=4 if fast else 8
    )
    results: List[Dict[str, object]] = []
    for testbed in _testbeds(fast):
        cluster: ClusterSpec = testbed["cluster"]  # type: ignore[assignment]
        scale: BenchmarkScale = testbed["scale"] or default_scale  # type: ignore[assignment]
        forward = build_model("bert_base", num_gpus=cluster.num_gpus, scale=scale)
        config = HierarchicalConfig(
            planner=bench_planner(beam=beam, rounds=rounds),
            intra_group_network=testbed["intra_group_network"],  # type: ignore[arg-type]
            schedules=testbed.get("schedules"),  # type: ignore[arg-type]
            num_model_chunks=testbed.get("num_model_chunks", 2),  # type: ignore[arg-type]
        )
        start = time.perf_counter()
        plan = hap_pipeline(forward, cluster, config)
        planning_seconds = time.perf_counter() - start
        # Price the static plan verifier separately from planning so the
        # --max-planning-seconds guard stays a pure planner budget.
        start = time.perf_counter()
        verification = verify_plan(plan, forward, lint=False)
        verify_seconds = time.perf_counter() - start
        # The W-code performance lints are priced on their own line too.
        start = time.perf_counter()
        lint_report = lint_plan(plan)
        lint_seconds = time.perf_counter() - start
        overlap_record = None
        if testbed["name"] == "hetero-bandwidth" and plan.num_stages > 1:
            overlap_record = _overlap_record(plan)
        results.append(
            {
                "testbed": testbed["name"],
                "overlap": overlap_record,
                "num_gpus": cluster.num_gpus,
                "batch_per_device": scale.batch_per_device,
                "planning_seconds": planning_seconds,
                "verify_seconds": verify_seconds,
                "verified_ok": verification.ok,
                "lint_seconds": lint_seconds,
                "lint_warnings": len(lint_report.warnings),
                "lint_warning_codes": sorted(d.code for d in lint_report.warnings),
                "num_stages": plan.num_stages,
                "schedule": plan.schedule_name,
                "num_microbatches": plan.num_microbatches,
                "num_model_chunks": plan.num_model_chunks,
                "num_chunk_programs": len(plan.chunk_sequence()),
                "recompute": plan.recompute,
                "fits_memory": plan.fits_memory,
                "estimated_ms": plan.estimated_time * 1e3,
                "bubble_fraction": plan.schedule.bubble_fraction,
                "candidates_evaluated": len(plan.schedule_candidate_times),
                "peak_memory_gb": [p / 1e9 for p in plan.peak_memory],
            }
        )
        print(
            f"{testbed['name']:>20s}: planned in {planning_seconds:6.1f}s -> "
            f"{plan.num_stages} stage(s), {plan.schedule_name} x{plan.num_microbatches} mb, "
            f"est {plan.estimated_time * 1e3:.1f} ms "
            f"({len(plan.schedule_candidate_times)} candidates), "
            f"verified in {verify_seconds * 1e3:.0f} ms, "
            f"linted in {lint_seconds * 1e3:.1f} ms "
            f"({len(lint_report.warnings)} warning(s))"
        )
        if not verification.ok:
            print(verification.describe(), file=sys.stderr)
            raise SystemExit(f"planner emitted an unverifiable plan on {testbed['name']}")
        if overlap_record:
            for name, rec in overlap_record["schedules"].items():
                print(
                    f"{'':>20s}  overlap[{name}]: {rec['blocking_ms']:.1f} -> "
                    f"{rec['overlapped_ms']:.1f} ms, hides "
                    f"{rec['hidden_fraction'] * 100:.0f}% of transfer"
                )
    return {
        "benchmark": "pipeline-schedule planning",
        "mode": "fast" if fast else "default",
        "scale": {
            "layer_fraction": default_scale.layer_fraction,
            "batch_per_device": default_scale.batch_per_device,
        },
        "beam_width": beam,
        "max_rounds": rounds,
        "python": platform.python_version(),
        "results": results,
        "warm_cache": bench_warm_cache(fast, beam, rounds),
        "parallel": bench_parallel(fast, beam, rounds, workers, synthesis_workers),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="CI-sized sweep")
    parser.add_argument("--beam", type=int, default=8, help="per-stage synthesis beam width")
    parser.add_argument("--rounds", type=int, default=1, help="per-stage (Q, B) rounds")
    parser.add_argument(
        "--output",
        default="benchmarks/results/BENCH_pipeline.json",
        help="where to write the JSON report (the default lives under the "
        "git-ignored benchmarks/results/ so runs never dirty the tree)",
    )
    parser.add_argument(
        "--max-planning-seconds",
        type=float,
        default=None,
        help="fail when any testbed's planner wall-clock exceeds this budget",
    )
    parser.add_argument(
        "--min-cache-speedup",
        type=float,
        default=None,
        help="fail when the warm plan-cache re-plan of the hetero testbed is "
        "not at least this much faster than the cold plan",
    )
    parser.add_argument(
        "--planner-workers",
        type=int,
        default=4,
        help="worker-process count for the parallel candidate-grid pass",
    )
    parser.add_argument(
        "--min-parallel-speedup",
        type=float,
        default=None,
        help="fail when cold parallel planning is not at least this much "
        "faster than serial (needs >= --planner-workers usable cores)",
    )
    parser.add_argument(
        "--synthesis-workers",
        type=int,
        default=2,
        help="per-plan beam-expansion worker count composed into the "
        "parallel pass (exercises the nested worker-pool budget)",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(
        args.fast, args.beam, args.rounds, args.planner_workers, args.synthesis_workers
    )
    out = Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    warm = report["warm_cache"]  # type: ignore[index]
    if not warm["identical"] or not warm["whole_plan_hit"]:
        print("FAIL: warm re-plan was not a cache hit for the identical plan", file=sys.stderr)
        return 1
    if args.min_cache_speedup is not None and warm["cache_speedup"] < args.min_cache_speedup:
        print(
            f"FAIL: warm-cache speedup {warm['cache_speedup']:.1f}x is below "
            f"the --min-cache-speedup guard of {args.min_cache_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    par = report["parallel"]  # type: ignore[index]
    if not par["identical"]:
        print(
            "FAIL: parallel planning did not reproduce the serial plan bit for bit",
            file=sys.stderr,
        )
        return 1
    if (
        args.min_parallel_speedup is not None
        and par["parallel_speedup"] < args.min_parallel_speedup
    ):
        print(
            f"FAIL: parallel speedup {par['parallel_speedup']:.2f}x with "
            f"{par['planner_workers']} workers is below the "
            f"--min-parallel-speedup guard of {args.min_parallel_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    if args.max_planning_seconds is not None:
        slow = [
            r
            for r in report["results"]  # type: ignore[union-attr]
            if r["planning_seconds"] > args.max_planning_seconds
        ]
        if slow:
            names = ", ".join(
                f"{r['testbed']} ({r['planning_seconds']:.1f}s)" for r in slow
            )
            print(
                f"FAIL: planning exceeded {args.max_planning_seconds:.0f}s on: {names}",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
