"""Extra ablations beyond the paper's figures.

* beam width of the synthesizer vs plan quality and planning time;
* LP load balancer vs computation-proportional and even ratios.

These quantify the design choices called out in DESIGN.md.
"""

import time

from repro.autodiff import build_training_graph
from repro.cluster import heterogeneous_testbed
from repro.core import CostModel, LoadBalancer, ProgramSynthesizer, SynthesisConfig
from repro.models import BenchmarkScale, build_model

from .conftest import FULL


def _training_graph():
    scale = BenchmarkScale("bench", layer_fraction=0.17)
    return build_training_graph(build_model("bert_base", num_gpus=16, scale=scale)).graph


def test_ablation_beam_width(benchmark, record_rows):
    graph = _training_graph()
    cluster = heterogeneous_testbed(16)
    widths = (1, 4, 16, 64) if FULL else (1, 4, 16)
    rows = []

    def sweep():
        rows.clear()
        for beam in widths:
            synthesizer = ProgramSynthesizer(graph, cluster, SynthesisConfig(beam_width=beam))
            start = time.perf_counter()
            result = synthesizer.synthesize(cluster.proportional_ratios())
            rows.append(
                {
                    "beam_width": beam,
                    "cost_ms": result.cost * 1e3,
                    "synthesis_seconds": time.perf_counter() - start,
                    "collectives": result.program.num_communications,
                }
            )
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_rows(rows, "Ablation — beam width vs plan quality")
    # Wider beams never produce worse plans (they search a superset).
    costs = [row["cost_ms"] for row in rows]
    assert costs[-1] <= costs[0] * 1.001
    # Narrower beams are not slower to search than the widest beam.
    assert rows[0]["synthesis_seconds"] <= rows[-1]["synthesis_seconds"] * 1.5


def test_ablation_load_balancer(benchmark, record_rows):
    graph = _training_graph()
    cluster = heterogeneous_testbed(16)
    synthesizer = ProgramSynthesizer(graph, cluster, SynthesisConfig(beam_width=8))
    program = synthesizer.synthesize(cluster.proportional_ratios()).program
    cost_model = CostModel(graph, cluster)

    def solve():
        return LoadBalancer(cluster).optimize(program, cost_model)

    result = benchmark.pedantic(solve, rounds=1, iterations=1)
    rows = [
        {"ratios": "LP", "time_ms": cost_model.evaluate(program, result.flat_ratios).total * 1e3},
        {
            "ratios": "proportional",
            "time_ms": cost_model.evaluate(program, cluster.proportional_ratios()).total * 1e3,
        },
        {"ratios": "even", "time_ms": cost_model.evaluate(program, cluster.even_ratios()).total * 1e3},
    ]
    record_rows(rows, "Ablation — LP ratios vs CP/EV ratios")
    lp, cp, ev = (row["time_ms"] for row in rows)
    assert lp <= cp * 1.001
    assert lp <= ev * 1.001
