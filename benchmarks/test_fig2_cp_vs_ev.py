"""Fig. 2: CP vs EV sharding ratios across computation-to-communication ratios."""

from repro.experiments import fig2_sharding_ratio_tradeoff

from .conftest import FULL


def test_fig2_cp_vs_ev(benchmark, record_rows):
    hidden = (256, 512, 1024, 2048, 4096) if FULL else (256, 1024, 4096)
    rows = benchmark.pedantic(
        fig2_sharding_ratio_tradeoff, kwargs={"hidden_sizes": hidden}, rounds=1, iterations=1
    )
    record_rows(rows, "Fig. 2 — CP vs EV sharding ratios")
    # Shape check: EV wins in the communication-bound regime, CP wins once the
    # computation-to-communication ratio is large (the paper's crossover).
    assert rows[0]["winner"] == "EV"
    assert rows[-1]["winner"] == "CP"
    ratios = [row["comp_to_comm_ratio"] for row in rows]
    assert ratios == sorted(ratios)
