"""Fig. 15: ablation of HAP's components (Q = synthesizer, B = balancer, C = comm)."""

from collections import defaultdict

from repro.experiments import fig15_ablation

from .conftest import FULL, bench_models, bench_scale


def test_fig15_ablation(benchmark, record_rows):
    models = bench_models() if FULL else ("vgg19", "bert_base")
    rows = benchmark.pedantic(
        fig15_ablation,
        kwargs={
            "models": models,
            "num_gpus": 64 if FULL else 16,
            "scale": bench_scale(),
            "beam_width": 16 if FULL else 8,
        },
        rounds=1,
        iterations=1,
    )
    record_rows(rows, "Fig. 15 — ablation (throughput relative to full HAP)")

    by_model = defaultdict(dict)
    for row in rows:
        by_model[row["model"]][row["config"]] = row["throughput_iter_per_s"]

    for model, configs in by_model.items():
        assert set(configs) == {"DP-EV", "Q", "Q+B", "Q+B+C"}
        # Each added component never hurts (within simulator noise), and the
        # full system is at least competitive with plain DP-EV.
        assert configs["Q+B"] >= configs["Q"] * 0.93, model
        assert configs["Q+B+C"] >= configs["Q+B"] * 0.93, model
        assert configs["Q+B+C"] >= configs["DP-EV"] * 0.9, model
