"""Fig. 14: per-iteration training time on the homogeneous P100 cluster."""

from collections import defaultdict

from repro.experiments import fig14_homogeneous_cluster

from .conftest import bench_models, bench_planner, bench_scale, gpu_counts_homog


def test_fig14_homogeneous(benchmark, record_rows):
    rows = benchmark.pedantic(
        fig14_homogeneous_cluster,
        kwargs={
            "models": bench_models(),
            "gpu_counts": gpu_counts_homog(),
            "scale": bench_scale(),
            "planner_config": bench_planner(),
        },
        rounds=1,
        iterations=1,
    )
    record_rows(rows, "Fig. 14 — homogeneous cluster per-iteration time (ms)")

    # DP-CP is omitted on homogeneous clusters (identical to DP-EV).
    assert all(row["system"] != "DP-CP" for row in rows)

    by_config = defaultdict(dict)
    for row in rows:
        by_config[(row["model"], row["gpus"])][row["system"]] = row

    for (model, gpus), systems in by_config.items():
        hap = systems["HAP"]["per_iteration_ms"]
        baselines = [
            r["per_iteration_ms"]
            for name, r in systems.items()
            if name != "HAP" and r["per_iteration_ms"] is not None
        ]
        assert hap is not None and baselines
        # On homogeneous clusters HAP still matches or beats the baselines,
        # though by smaller margins than in Fig. 13.
        assert hap <= min(baselines) * 1.15, (model, gpus)
