"""Fig. 13: per-iteration training time on the heterogeneous V100+P100 cluster."""

from collections import defaultdict

from repro.experiments import fig13_heterogeneous_cluster

from .conftest import bench_models, bench_planner, bench_scale, gpu_counts_hetero


def test_fig13_heterogeneous(benchmark, record_rows):
    rows = benchmark.pedantic(
        fig13_heterogeneous_cluster,
        kwargs={
            "models": bench_models(),
            "gpu_counts": gpu_counts_hetero(),
            "scale": bench_scale(),
            "planner_config": bench_planner(),
        },
        rounds=1,
        iterations=1,
    )
    record_rows(rows, "Fig. 13 — heterogeneous cluster per-iteration time (ms)")

    by_config = defaultdict(dict)
    for row in rows:
        by_config[(row["model"], row["gpus"])][row["system"]] = row

    wins = 0
    comparisons = 0
    for (model, gpus), systems in by_config.items():
        hap = systems["HAP"]["per_iteration_ms"]
        assert hap is not None and hap > 0
        baselines = [
            r["per_iteration_ms"]
            for name, r in systems.items()
            if name != "HAP" and r["per_iteration_ms"] is not None
        ]
        assert baselines, f"no runnable baseline for {model} at {gpus} GPUs"
        comparisons += 1
        if hap <= min(baselines) * 1.03:
            wins += 1
        # HAP is never far behind the best baseline.  (Its search space
        # contains every baseline strategy; the slack covers the approximate
        # beam search at the small benchmark beam width, which can trail the
        # hand-restricted DeepSpeed expert-parallel planner on BERT-MoE by a
        # 10-20% margin at the reduced scale — see EXPERIMENTS.md.)
        assert hap <= min(baselines) * 1.25, (model, gpus)

    # Paper's headline: HAP consistently matches or outperforms the baselines
    # on the heterogeneous cluster (see EXPERIMENTS.md for where the margins
    # are smaller than the paper's under the simulated substrate).
    assert wins >= comparisons * 0.7

    # DP baselines replicate the full BERT-MoE model and run out of memory.
    moe_dp = [
        row
        for row in rows
        if row["model"] == "bert_moe" and row["system"] in ("DP-EV", "DP-CP")
    ]
    assert any(row["oom"] for row in moe_dp) or all(
        row["per_iteration_ms"] is not None for row in moe_dp
    )
