"""Fig. 19: program-synthesis time as a function of model depth."""

from repro.experiments import fig19_synthesis_time

from .conftest import FULL


def test_fig19_synthesis_time(benchmark, record_rows):
    layer_counts = (1, 2, 4, 8, 12, 16, 20, 24) if FULL else (1, 2, 4, 8)
    rows = benchmark.pedantic(
        fig19_synthesis_time,
        kwargs={
            "layer_counts": layer_counts,
            "hidden_size": 384 if FULL else 192,
            "batch_size": 64 if FULL else 32,
            "beam_width": 16 if FULL else 8,
        },
        rounds=1,
        iterations=1,
    )
    record_rows(rows, "Fig. 19 — program synthesis time vs ViT depth")

    times = [row["synthesis_seconds"] for row in rows]
    nodes = [row["graph_nodes"] for row in rows]
    assert nodes == sorted(nodes)
    # Synthesis time grows with depth ...
    assert times[-1] > times[0]
    # ... and stays in the interactive range the paper reports (seconds, not
    # hours) even for the deepest configuration benchmarked here.
    assert times[-1] < 300.0
