"""Synthesis-time benchmark harness.

Times program synthesis on the registry models across cluster sizes, running
the optimised hot path (the ``SynthesisConfig`` defaults) and the unoptimised
path (every ``enable_*`` hot-path flag off) back to back in the same process,
and writes the results to ``benchmarks/results/BENCH_synthesis.json`` (a
git-ignored directory, so bench runs never dirty the tree) for future PRs to
compare against.  Each row also times a third configuration with only
``enable_vectorized_cost`` off (the ``vectorized_speedup`` column), isolating
the numpy-batched beam ranking from the other hot-path wins.  It also A/Bs
``enable_block_reuse`` on a 48-layer BERT, where the synthesizer records each
distinct block once and replays it, and ``synthesis_workers`` on the same
model, where beam expansion is sharded across forked workers at every search
level (serial vs parallel, bit-identical by contract).

Usage::

    PYTHONPATH=src python -m benchmarks.bench_synthesis            # default sweep
    PYTHONPATH=src python -m benchmarks.bench_synthesis --fast     # CI-sized sweep
    PYTHONPATH=src python -m benchmarks.bench_synthesis --full     # paper-sized sweep

The harness verifies on every configuration that both paths synthesize
byte-identical programs and costs (the parity contract also enforced by
``tests/test_optimization_parity.py``) and records wall-clock (best of
``--repeats``), expanded/generated state counts, and the speedup.  This file
deliberately does not match ``test_*.py`` so pytest does not collect it.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.cluster import ClusterSpec, Machine, NetworkSpec, device_type
from repro.core import ProgramSynthesizer, SynthesisConfig, close_shared_pool
from repro.models import MODEL_NAMES, BenchmarkScale, build_model

#: The hot-path optimisation switches A/B-ed by this harness.
OPT_FLAGS = (
    "enable_rule_indexing",
    "enable_state_interning",
    "enable_pareto_store",
    "enable_cost_memoization",
    "enable_vectorized_cost",
)


def heterogeneous_cluster(num_devices: int) -> ClusterSpec:
    """Alternating A100/P100 single-GPU machines (the paper's hetero setup)."""
    machines = [
        Machine(f"m{i}", device_type("A100" if i % 2 == 0 else "P100"), num_gpus=1)
        for i in range(num_devices)
    ]
    return ClusterSpec(machines, network=NetworkSpec())


def time_synthesis(make_synthesizer, repeats: int) -> Dict[str, object]:
    """Best-of-``repeats`` cold-path wall-clock of one configuration.

    A fresh synthesizer is constructed per repeat (outside the timed region)
    so each measurement includes first-touch cache population — the state the
    planner loop actually sees, since changing the sharding ratios between
    rounds invalidates the memoized cost plans anyway.
    """
    best: Optional[float] = None
    result = None
    for _ in range(repeats):
        synthesizer = make_synthesizer()
        t0 = time.perf_counter()
        result = synthesizer.synthesize()
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    assert result is not None and best is not None
    return {
        "seconds": best,
        "cost": result.cost,
        "expanded_states": result.expanded_states,
        "generated_states": result.generated_states,
        "result": result,
    }


def bench_one(
    model: str,
    num_devices: int,
    strategy: str,
    scale: BenchmarkScale,
    beam_width: int,
    repeats: int,
) -> Dict[str, object]:
    """Benchmark one (model, cluster size, strategy) configuration."""
    cluster = heterogeneous_cluster(num_devices)
    graph = build_model(model, num_gpus=num_devices, scale=scale)

    def make(**flags) -> ProgramSynthesizer:
        config = SynthesisConfig(
            search_strategy=strategy, beam_width=beam_width, **flags
        )
        return ProgramSynthesizer(graph, cluster, config)

    t0 = time.perf_counter()
    optimized_synth = make()
    theory_seconds = time.perf_counter() - t0

    naive = time_synthesis(lambda: make(**{flag: False for flag in OPT_FLAGS}), repeats)
    # Vectorized-cost A/B: every other optimisation on, only the numpy-batched
    # beam ranking off — isolates the vectorization win from the rest.
    scalar_rank = time_synthesis(lambda: make(enable_vectorized_cost=False), repeats)
    optimized = time_synthesis(make, repeats)

    naive_result = naive.pop("result")
    scalar_result = scalar_rank.pop("result")
    optimized_result = optimized.pop("result")
    parity = (
        naive_result.cost == scalar_result.cost == optimized_result.cost
        and list(naive_result.program.instructions)
        == list(scalar_result.program.instructions)
        == list(optimized_result.program.instructions)
    )
    return {
        "model": model,
        "num_devices": num_devices,
        "strategy": strategy,
        "graph_nodes": len(graph.node_names),
        "theory_rules": len(optimized_synth.theory),
        "theory_build_seconds": theory_seconds,
        "beam_width": beam_width,
        "repeats": repeats,
        "naive": naive,
        "scalar_rank": scalar_rank,
        "optimized": optimized,
        "speedup": naive["seconds"] / optimized["seconds"],
        "vectorized_speedup": scalar_rank["seconds"] / optimized["seconds"],
        "parity": parity,
    }


def bench_block_reuse(args: argparse.Namespace) -> Dict[str, object]:
    """A/B ``enable_block_reuse`` on a deep transformer registry model.

    The flag pays off on *depth*: a 48-layer BERT repeats one encoder block 48
    times, so the synthesizer records the block's rule chain once and replays
    it 47 times instead of re-searching.  The registry ``bert_base`` at
    ``layer_fraction=4.0`` (48 layers) is used regardless of ``--fast`` — the
    acceptance bar is "≥ 24-layer registry transformer" and shrinking the model
    would shrink exactly the repetition the flag exploits.  Theory construction
    is excluded from the timed region (it is identical on both paths and is
    amortized across planner rounds anyway).
    """
    scale = BenchmarkScale("reuse", layer_fraction=4.0, batch_per_device=32)
    model, num_devices, beam_width = "bert_base", 8, 16
    cluster = heterogeneous_cluster(num_devices)
    graph = build_model(model, num_gpus=num_devices, scale=scale)

    def make(**flags) -> ProgramSynthesizer:
        config = SynthesisConfig(
            search_strategy="beam", beam_width=beam_width, **flags
        )
        return ProgramSynthesizer(graph, cluster, config)

    reuse_synths: List[ProgramSynthesizer] = []

    def make_reuse() -> ProgramSynthesizer:
        synthesizer = make(enable_block_reuse=True)
        reuse_synths.append(synthesizer)
        return synthesizer

    naive = time_synthesis(lambda: make(**{flag: False for flag in OPT_FLAGS}), args.repeats)
    optimized = time_synthesis(make, args.repeats)
    # The replay pass is sub-second, so a single noisy repeat skews the ratio
    # far more than it skews the multi-second searches — take best of more.
    reused = time_synthesis(make_reuse, max(args.repeats, 5))

    naive_result = naive.pop("result")
    optimized_result = optimized.pop("result")
    reused_result = reused.pop("result")
    parity = (
        naive_result.cost == optimized_result.cost == reused_result.cost
        and list(naive_result.program.instructions)
        == list(optimized_result.program.instructions)
        == list(reused_result.program.instructions)
    )
    stats = dict(reuse_synths[-1].reuse_stats)
    row = {
        "model": model,
        "num_devices": num_devices,
        "strategy": "beam+block-reuse",
        "graph_nodes": len(graph.node_names),
        "beam_width": beam_width,
        "layer_fraction": scale.layer_fraction,
        "repeats": args.repeats,
        "naive": naive,
        "optimized_no_reuse": optimized,
        "optimized": reused,
        "speedup": naive["seconds"] / reused["seconds"],
        "block_reuse_speedup": optimized["seconds"] / reused["seconds"],
        "parity": parity,
        "reuse_stats": stats,
    }
    print(
        f"{model:>10} m={num_devices:<3} beam+block-reuse "
        f"({stats.get('occurrences', 0)} blocks): "
        f"naive={naive['seconds']:.3f}s optimized={optimized['seconds']:.3f}s "
        f"reuse={reused['seconds']:.3f}s "
        f"speedup={row['speedup']:.2f}x "
        f"(reuse-only {row['block_reuse_speedup']:.2f}x) parity={parity}"
    )
    return row


def bench_beam_parallel(args: argparse.Namespace) -> Dict[str, object]:
    """A/B ``synthesis_workers`` on the deep transformer registry model.

    Parallel beam expansion shards the beam across forked workers at every
    search level, so the win scales with beam *width*: the section runs at the
    sweep default width 32, where each per-level shard carries enough
    expansion work to amortize the per-level fan-out/merge, and on *depth*
    (the 48-layer BERT has ~1.6k levels, so per-level overheads compound).
    Block reuse stays off — replay skips expansion entirely, which is the
    composition the pipeline benchmark exercises instead.  Both paths must
    produce byte-identical programs, costs, and expansion counters (the
    determinism contract of ``tests/test_parallel_planning.py``); each repeat
    constructs a fresh synthesizer, so the measured parallel time includes
    the pool re-fork — the cold-run cost a first ``plan()`` call pays.
    """
    scale = BenchmarkScale("reuse", layer_fraction=4.0, batch_per_device=32)
    model, num_devices, beam_width = "bert_base", 8, 32
    workers = args.synthesis_workers
    cluster = heterogeneous_cluster(num_devices)
    graph = build_model(model, num_gpus=num_devices, scale=scale)

    def make(**flags) -> ProgramSynthesizer:
        config = SynthesisConfig(
            search_strategy="beam", beam_width=beam_width, **flags
        )
        return ProgramSynthesizer(graph, cluster, config)

    serial = time_synthesis(make, args.repeats)
    try:
        parallel = time_synthesis(
            lambda: make(synthesis_workers=workers), args.repeats
        )
    finally:
        close_shared_pool()

    serial_result = serial.pop("result")
    parallel_result = parallel.pop("result")
    parity = (
        serial_result.cost == parallel_result.cost
        and list(serial_result.program.instructions)
        == list(parallel_result.program.instructions)
        and serial_result.expanded_states == parallel_result.expanded_states
        and serial_result.generated_states == parallel_result.generated_states
    )
    row = {
        "model": model,
        "num_devices": num_devices,
        "strategy": "beam+parallel",
        "graph_nodes": len(graph.node_names),
        "beam_width": beam_width,
        "layer_fraction": scale.layer_fraction,
        "synthesis_workers": workers,
        "cpu_count": os.cpu_count(),
        "repeats": args.repeats,
        "serial": serial,
        "parallel": parallel,
        "beam_parallel_speedup": serial["seconds"] / parallel["seconds"],
        "parity": parity,
    }
    print(
        f"{model:>10} m={num_devices:<3} beam+parallel "
        f"(workers={workers}, {os.cpu_count()} cores): "
        f"serial={serial['seconds']:.3f}s parallel={parallel['seconds']:.3f}s "
        f"speedup={row['beam_parallel_speedup']:.2f}x parity={parity}"
    )
    return row


def run_benchmark(args: argparse.Namespace) -> Dict[str, object]:
    if args.full:
        scale = BenchmarkScale.paper()
        device_counts: Sequence[int] = (8, 16)
    elif args.fast:
        scale = BenchmarkScale("bench", layer_fraction=0.34, batch_per_device=32)
        device_counts = (4, 8)
    else:
        scale = BenchmarkScale("bench", layer_fraction=0.5, batch_per_device=32)
        device_counts = (4, 8, 16)
    if args.devices:
        device_counts = tuple(args.devices)

    rows: List[Dict[str, object]] = []
    for model in args.models:
        for num_devices in device_counts:
            for strategy in args.strategies:
                row = bench_one(
                    model,
                    num_devices,
                    strategy,
                    scale,
                    beam_width=args.beam_width,
                    repeats=args.repeats,
                )
                rows.append(row)
                print(
                    f"{model:>10} m={num_devices:<3} {strategy:>5}: "
                    f"nodes={row['graph_nodes']:<4} "
                    f"naive={row['naive']['seconds']:.3f}s "
                    f"optimized={row['optimized']['seconds']:.3f}s "
                    f"speedup={row['speedup']:.2f}x "
                    f"(vectorized {row['vectorized_speedup']:.2f}x) "
                    f"parity={row['parity']}"
                )

    # Headline: best configuration of the largest model (most graph nodes),
    # across the benchmarked strategies and cluster sizes.
    # The deep block-reuse model is a full sweep row (naive vs the optimized
    # path *with* reuse); having the most graph nodes it becomes the headline.
    block_reuse = bench_block_reuse(args)
    rows.append(block_reuse)
    beam_parallel = bench_beam_parallel(args)
    rows.append(beam_parallel)
    largest_nodes = max(r["graph_nodes"] for r in rows)
    # The beam-parallel row has no naive baseline (it A/Bs serial vs parallel
    # on the optimized path), so it never competes for the headline.
    headline_rows = [
        r for r in rows if r["graph_nodes"] == largest_nodes and "speedup" in r
    ]
    headline = max(headline_rows, key=lambda r: r["speedup"])
    summary = {
        "largest_model": headline["model"],
        "largest_model_nodes": headline["graph_nodes"],
        "headline_num_devices": headline["num_devices"],
        "headline_strategy": headline["strategy"],
        "headline_naive_seconds": headline["naive"]["seconds"],
        "headline_optimized_seconds": headline["optimized"]["seconds"],
        "headline_speedup": headline["speedup"],
        "all_parity": all(r["parity"] for r in rows),
        "block_reuse_speedup": block_reuse["block_reuse_speedup"],
        "beam_parallel_speedup": beam_parallel["beam_parallel_speedup"],
        "synthesis_workers": beam_parallel["synthesis_workers"],
    }
    print(
        f"\nheadline: {summary['largest_model']} (m={summary['headline_num_devices']}, "
        f"{summary['headline_strategy']}) — {summary['headline_speedup']:.2f}x speedup, "
        f"parity={'OK' if summary['all_parity'] else 'BROKEN'}"
    )
    return {
        "meta": {
            "scale": scale.name,
            "layer_fraction": scale.layer_fraction,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "opt_flags": list(OPT_FLAGS),
            "repeats": args.repeats,
        },
        "rows": rows,
        "summary": summary,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--fast", action="store_true", help="CI-sized sweep")
    parser.add_argument("--full", action="store_true", help="paper-sized sweep")
    parser.add_argument(
        "--models", nargs="+", default=MODEL_NAMES, choices=MODEL_NAMES
    )
    parser.add_argument("--devices", nargs="+", type=int, default=None)
    parser.add_argument(
        "--strategies",
        nargs="+",
        default=["astar", "beam"],
        choices=["astar", "beam"],
    )
    parser.add_argument("--beam-width", type=int, default=32)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail (exit 2) if the optimized/naive speedup on the largest "
        "model drops below this — the CI regression guard for the hot-path "
        "wins (the headline row is the deep transformer with block reuse)",
    )
    parser.add_argument(
        "--min-block-reuse-speedup",
        type=float,
        default=None,
        help="fail (exit 2) if enable_block_reuse on the deep registry "
        "transformer is not at least this much faster than the optimized "
        "per-layer search — the CI guard for the block-reuse win",
    )
    parser.add_argument(
        "--synthesis-workers",
        type=int,
        default=4,
        help="worker count for the parallel beam-expansion A/B section",
    )
    parser.add_argument(
        "--min-beam-parallel-speedup",
        type=float,
        default=None,
        help="fail (exit 2) if synthesis_workers on the deep registry "
        "transformer is not at least this much faster than the serial "
        "optimized search — the CI guard for parallel beam expansion "
        "(needs >= --synthesis-workers usable cores to be meaningful)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("benchmarks/results/BENCH_synthesis.json"),
        help="where to write the JSON report (the default lives under the "
        "git-ignored benchmarks/results/ so runs never dirty the tree)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    report = run_benchmark(args)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    if not report["summary"]["all_parity"]:
        print("ERROR: optimised and naive paths disagree", file=sys.stderr)
        return 1
    if args.min_speedup is not None:
        headline = report["summary"]["headline_speedup"]
        if headline < args.min_speedup:
            print(
                f"ERROR: headline speedup {headline:.2f}x on "
                f"{report['summary']['largest_model']} is below the "
                f"--min-speedup guard of {args.min_speedup:.2f}x",
                file=sys.stderr,
            )
            return 2
    if args.min_block_reuse_speedup is not None:
        block = report["summary"]["block_reuse_speedup"]
        if block < args.min_block_reuse_speedup:
            print(
                f"ERROR: block-reuse speedup {block:.2f}x on the deep "
                f"registry transformer is below the "
                f"--min-block-reuse-speedup guard of "
                f"{args.min_block_reuse_speedup:.2f}x",
                file=sys.stderr,
            )
            return 2
    if args.min_beam_parallel_speedup is not None:
        beam_parallel = report["summary"]["beam_parallel_speedup"]
        if beam_parallel < args.min_beam_parallel_speedup:
            print(
                f"ERROR: parallel beam-expansion speedup "
                f"{beam_parallel:.2f}x with "
                f"{report['summary']['synthesis_workers']} workers is below "
                f"the --min-beam-parallel-speedup guard of "
                f"{args.min_beam_parallel_speedup:.2f}x",
                file=sys.stderr,
            )
            return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
