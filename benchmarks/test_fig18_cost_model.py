"""Fig. 18: cost-model estimates vs simulated ("actual") per-iteration times."""

from repro.experiments import fig18_cost_model_accuracy

from .conftest import FULL, bench_planner


def test_fig18_cost_model_accuracy(benchmark, record_rows):
    kwargs = {
        "layer_counts": (2, 4, 6) if FULL else (1, 2),
        "hidden_sizes": (256, 512, 768) if FULL else (128, 256),
        "seq_lens": (64, 128) if FULL else (32,),
        "num_gpus": 16,
        "planner_config": bench_planner(),
    }
    rows = benchmark.pedantic(fig18_cost_model_accuracy, kwargs=kwargs, rounds=1, iterations=1)
    record_rows(rows, "Fig. 18 — cost model accuracy (estimated vs simulated)")

    # The paper reports a strong linear relationship (Pearson r = 0.970) with
    # the estimator biased low; the same shape must hold here.
    pearson = rows[0]["pearson_r"]
    assert pearson > 0.9
    underestimates = sum(1 for row in rows if row["estimated_s"] <= row["actual_s"])
    assert underestimates >= len(rows) * 0.7
