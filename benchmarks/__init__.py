"""Benchmark suite regenerating the paper's tables and figures.

Making this directory a package lets the ``from .conftest import ...`` lines
in the benchmark modules resolve when pytest imports them with the repository
root on ``sys.path``.
"""
