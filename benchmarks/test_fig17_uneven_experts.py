"""Fig. 17: BERT-MoE with expert counts that do not divide the device count."""

from repro.experiments import fig17_uneven_experts

from .conftest import FULL, bench_planner


def test_fig17_uneven_experts(benchmark, record_rows):
    expert_counts = (4, 8, 12, 16, 20, 24, 28, 32) if FULL else (4, 6, 8, 10)
    rows = benchmark.pedantic(
        fig17_uneven_experts,
        kwargs={
            "expert_counts": expert_counts,
            "tokens_per_expert": 64 if FULL else 32,
            "hidden_size": 256 if FULL else 64,
            "num_layers": 2 if FULL else 1,
            "seq_len": 32 if FULL else 16,
            "planner_config": bench_planner(),
        },
        rounds=1,
        iterations=1,
    )
    record_rows(rows, "Fig. 17 — uneven placement of experts (2x A100 + 2x P100)")

    # DeepSpeed pads the expert count to a multiple of the device count; HAP
    # runs the exact count.  Padding shows up as extra experts.
    padded_cases = [row for row in rows if row["experts"] % 4 != 0]
    assert padded_cases, "sweep must include an expert count not divisible by 4"
    for row in padded_cases:
        assert row["padded_experts"] > row["experts"]
        # With padded experts plus even placement, DeepSpeed should not beat
        # HAP's uneven placement on the indivisible points.
        assert row["hap_ms"] <= row["deepspeed_ms"] * 1.1, row

    # Times grow with the expert count (the token count scales with it).
    hap_times = [row["hap_ms"] for row in rows]
    assert hap_times[-1] > hap_times[0]
