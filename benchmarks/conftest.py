"""Shared configuration of the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  By default the
sweeps are CI-sized (fewer layers, fewer GPU counts) so the whole suite runs
in minutes; set ``REPRO_BENCH_FULL=1`` to run the paper-scale sweeps, and
``REPRO_BENCH_OUTPUT_DIR`` to change where the regenerated tables are written.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core import PlannerConfig, SynthesisConfig
from repro.experiments import format_rows
from repro.models import BenchmarkScale

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
OUTPUT_DIR = Path(os.environ.get("REPRO_BENCH_OUTPUT_DIR", Path(__file__).parent / "results"))


def bench_scale() -> BenchmarkScale:
    """Model scale used by the benchmarks (paper scale when FULL)."""
    if FULL:
        return BenchmarkScale.paper()
    # batch_per_device=None keeps every model's paper per-GPU batch (now that
    # build_model honours the scale's batch, an explicit 64 would double
    # BERT-MoE's batch relative to the paper).
    return BenchmarkScale("bench", layer_fraction=0.17)


def bench_planner(
    beam: int = 8, rounds: int = 1, synthesis_workers: int = 1
) -> PlannerConfig:
    """HAP planner configuration used by the benchmarks."""
    if FULL:
        beam, rounds = 32, 3
    config = PlannerConfig(max_rounds=rounds)
    config.synthesis = SynthesisConfig(
        beam_width=beam, synthesis_workers=synthesis_workers
    )
    return config


def gpu_counts_hetero() -> tuple:
    return (8, 16, 32, 64) if FULL else (8, 32)


def gpu_counts_homog() -> tuple:
    return (8, 16, 24, 32) if FULL else (8, 24)


def bench_models() -> tuple:
    return ("vgg19", "vit", "bert_base", "bert_moe")


def emit(request, rows, title: str) -> None:
    """Print a regenerated table and persist it under benchmarks/results/."""
    text = format_rows(rows, title=title)
    print("\n" + text)
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    name = request.node.name.replace("/", "_").replace("[", "_").replace("]", "")
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture
def record_rows(request):
    """Fixture returning a callable that records regenerated rows."""

    def _record(rows, title):
        emit(request, rows, title)
        return rows

    return _record
