"""Tests for the operator registry: shape inference, flops and numpy kernels."""

import numpy as np
import pytest

import repro.graph.grad_ops  # noqa: F401  (register backward ops)
from repro.graph import DType, TensorSpec, get_op, registered_ops
from repro.graph.ops import OpKind


def spec(*shape, dtype=DType.FLOAT32):
    return TensorSpec(tuple(shape), dtype)


class TestRegistry:
    def test_known_operators_present(self):
        names = registered_ops()
        for expected in [
            "matmul", "conv2d", "relu", "softmax", "layernorm", "embedding",
            "cross_entropy", "moe_dispatch", "moe_combine", "sgd_update",
            "relu_grad", "softmax_grad", "embedding_grad", "conv2d_grad_input",
        ]:
            assert expected in names

    def test_unknown_operator_raises(self):
        with pytest.raises(KeyError):
            get_op("nonexistent_op")

    def test_duplicate_registration_rejected(self):
        from repro.graph.ops import OpDef, register_op

        existing = get_op("relu")
        with pytest.raises(ValueError):
            register_op(OpDef("relu", existing.kind, existing.infer, existing.flops, existing.execute, 1))


class TestShapeInference:
    def test_matmul_2d(self):
        out = get_op("matmul").infer([spec(4, 8), spec(8, 16)], {})
        assert out.shape == (4, 16)

    def test_matmul_batched(self):
        out = get_op("matmul").infer([spec(2, 4, 8), spec(2, 8, 16)], {})
        assert out.shape == (2, 4, 16)

    def test_matmul_3d_by_2d(self):
        out = get_op("matmul").infer([spec(2, 4, 8), spec(8, 16)], {})
        assert out.shape == (2, 4, 16)

    def test_matmul_mismatch_raises(self):
        with pytest.raises(ValueError):
            get_op("matmul").infer([spec(4, 8), spec(9, 16)], {})

    def test_elementwise_binary_requires_same_shape(self):
        with pytest.raises(ValueError):
            get_op("add").infer([spec(4, 8), spec(4, 9)], {})

    def test_bias_add_checks_last_dim(self):
        out = get_op("bias_add").infer([spec(4, 8), spec(8)], {})
        assert out.shape == (4, 8)
        with pytest.raises(ValueError):
            get_op("bias_add").infer([spec(4, 8), spec(4)], {})

    def test_reshape_checks_numel(self):
        out = get_op("reshape").infer([spec(4, 8)], {"shape": (2, 16)})
        assert out.shape == (2, 16)
        with pytest.raises(ValueError):
            get_op("reshape").infer([spec(4, 8)], {"shape": (3, 16)})

    def test_transpose_validates_perm(self):
        out = get_op("transpose").infer([spec(2, 3, 4)], {"perm": (2, 0, 1)})
        assert out.shape == (4, 2, 3)
        with pytest.raises(ValueError):
            get_op("transpose").infer([spec(2, 3)], {"perm": (0, 0)})

    def test_conv2d_output_shape(self):
        out = get_op("conv2d").infer([spec(2, 3, 8, 8), spec(16, 3, 3, 3)], {"stride": 1, "padding": 1})
        assert out.shape == (2, 16, 8, 8)

    def test_conv2d_stride(self):
        out = get_op("conv2d").infer([spec(2, 3, 8, 8), spec(16, 3, 3, 3)], {"stride": 2, "padding": 1})
        assert out.shape == (2, 16, 4, 4)

    def test_pool_output_shape(self):
        out = get_op("maxpool2d").infer([spec(2, 4, 8, 8)], {"kernel": 2, "stride": 2})
        assert out.shape == (2, 4, 4, 4)

    def test_embedding_shape(self):
        out = get_op("embedding").infer([spec(4, 6, dtype=DType.INT64), spec(100, 32)], {})
        assert out.shape == (4, 6, 32)

    def test_cross_entropy_scalar(self):
        out = get_op("cross_entropy").infer([spec(8, 10), spec(8, dtype=DType.INT64)], {})
        assert out.shape == ()

    def test_moe_dispatch_shape(self):
        out = get_op("moe_dispatch").infer([spec(16, 32), spec(16, 4)], {"capacity_factor": 1.0})
        assert out.shape == (4, 4, 32)

    def test_moe_combine_shape(self):
        out = get_op("moe_combine").infer([spec(4, 4, 32), spec(16, 4)], {})
        assert out.shape == (16, 32)

    def test_sgd_update_requires_matching_shapes(self):
        with pytest.raises(ValueError):
            get_op("sgd_update").infer([spec(4, 8), spec(8, 4)], {})

    def test_flatten(self):
        out = get_op("flatten").infer([spec(4, 3, 2, 2)], {})
        assert out.shape == (4, 12)

    def test_sum_leading(self):
        out = get_op("sum_leading").infer([spec(6, 4, 8)], {})
        assert out.shape == (8,)

    def test_broadcast_to(self):
        out = get_op("broadcast_to").infer([spec()], {"shape": (4, 5)})
        assert out.shape == (4, 5)


class TestFlops:
    def test_matmul_flops(self):
        op = get_op("matmul")
        specs = [spec(4, 8), spec(8, 16)]
        out = op.infer(specs, {})
        assert op.flops(specs, out, {}) == pytest.approx(2 * 4 * 16 * 8)

    def test_conv_flops_scale_with_output(self):
        op = get_op("conv2d")
        specs = [spec(1, 3, 8, 8), spec(4, 3, 3, 3)]
        out = op.infer(specs, {"stride": 1, "padding": 1})
        assert op.flops(specs, out, {"stride": 1, "padding": 1}) == pytest.approx(
            2 * out.numel * 3 * 3 * 3
        )

    def test_source_flops_zero(self):
        op = get_op("parameter")
        out = op.infer([], {"shape": (10, 10)})
        assert op.flops([], out, {"shape": (10, 10)}) == 0.0

    def test_elementwise_flops_linear_in_numel(self):
        op = get_op("relu")
        s = spec(16, 16)
        assert op.flops([s], s, {}) == pytest.approx(256)


class TestExecution:
    def test_relu(self, rng):
        x = rng.normal(size=(4, 5))
        out = get_op("relu").execute([x], {})
        np.testing.assert_allclose(out, np.maximum(x, 0))

    def test_softmax_rows_sum_to_one(self, rng):
        x = rng.normal(size=(6, 9))
        out = get_op("softmax").execute([x], {"axis": -1})
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(6), rtol=1e-6)

    def test_layernorm_zero_mean_unit_var(self, rng):
        x = rng.normal(size=(5, 32)) * 3 + 1
        out = get_op("layernorm").execute([x], {"axis": -1})
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(5), atol=1e-6)
        np.testing.assert_allclose(out.var(axis=-1), np.ones(5), rtol=1e-3)

    def test_matmul_matches_numpy(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 5))
        np.testing.assert_allclose(get_op("matmul").execute([a, b], {}), a @ b)

    def test_conv2d_matches_direct_convolution(self, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        out = get_op("conv2d").execute([x, w], {"stride": 1, "padding": 0})
        # direct computation of one output element
        expected = np.sum(x[0, :, 1:4, 2:5] * w[1])
        assert out[0, 1, 1, 2] == pytest.approx(expected, rel=1e-6)

    def test_maxpool(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        out = get_op("maxpool2d").execute([x], {"kernel": 2, "stride": 2})
        assert out[0, 0, 0, 0] == pytest.approx(x[0, 0, :2, :2].max())

    def test_avgpool(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        out = get_op("avgpool2d").execute([x], {"kernel": 2, "stride": 2})
        assert out[0, 0, 1, 1] == pytest.approx(x[0, 0, 2:, 2:].mean())

    def test_embedding_lookup(self, rng):
        table = rng.normal(size=(10, 4))
        ids = np.array([[1, 3], [0, 9]])
        out = get_op("embedding").execute([ids, table], {})
        np.testing.assert_allclose(out[0, 1], table[3])

    def test_cross_entropy_is_sum_not_mean(self, rng):
        logits = rng.normal(size=(6, 4))
        labels = rng.integers(0, 4, size=(6,))
        loss = get_op("cross_entropy").execute([logits, labels], {})
        half = get_op("cross_entropy").execute([logits[:3], labels[:3]], {}) + get_op(
            "cross_entropy"
        ).execute([logits[3:], labels[3:]], {})
        assert float(loss) == pytest.approx(float(half), rel=1e-6)

    def test_cross_entropy_positive(self, rng):
        logits = rng.normal(size=(6, 4))
        labels = rng.integers(0, 4, size=(6,))
        assert float(get_op("cross_entropy").execute([logits, labels], {})) > 0

    def test_moe_dispatch_combine_roundtrip_is_weighted(self, rng):
        tokens = rng.normal(size=(8, 4))
        gates = rng.normal(size=(8, 3))
        dispatched = get_op("moe_dispatch").execute([tokens, gates], {"capacity_factor": 3.0})
        combined = get_op("moe_combine").execute([dispatched, gates], {})
        probs = np.exp(gates - gates.max(axis=1, keepdims=True))
        probs = probs / probs.sum(axis=1, keepdims=True)
        chosen = probs[np.arange(8), np.argmax(gates, axis=1)]
        np.testing.assert_allclose(combined, tokens * chosen[:, None], rtol=1e-6)

    def test_moe_dispatch_respects_capacity(self, rng):
        tokens = rng.normal(size=(8, 4))
        gates = np.zeros((8, 2))
        gates[:, 0] = 1.0  # all tokens route to expert 0
        dispatched = get_op("moe_dispatch").execute([tokens, gates], {"capacity_factor": 1.0})
        # capacity = ceil(8/2 * 1.0) = 4, so only 4 tokens are kept
        assert dispatched.shape == (2, 4, 4)
        assert np.count_nonzero(np.abs(dispatched[0]).sum(axis=1)) == 4
        assert np.allclose(dispatched[1], 0.0)

    def test_sgd_update(self, rng):
        p = rng.normal(size=(3, 3))
        g = rng.normal(size=(3, 3))
        out = get_op("sgd_update").execute([p, g], {"lr": 0.1})
        np.testing.assert_allclose(out, p - 0.1 * g)

    def test_source_execute_raises(self):
        with pytest.raises(RuntimeError):
            get_op("placeholder").execute([], {"shape": (2,)})

    def test_scale(self, rng):
        x = rng.normal(size=(4,))
        np.testing.assert_allclose(get_op("scale").execute([x], {"factor": 2.5}), 2.5 * x)


class TestKinds:
    @pytest.mark.parametrize(
        "name,kind",
        [
            ("matmul", OpKind.MATMUL),
            ("relu", OpKind.ELEMENTWISE),
            ("bias_add", OpKind.BROADCAST_BIAS),
            ("softmax", OpKind.NORMALIZATION),
            ("reduce_sum", OpKind.REDUCTION),
            ("conv2d", OpKind.CONV),
            ("embedding", OpKind.EMBEDDING),
            ("moe_dispatch", OpKind.MOE_DISPATCH),
            ("moe_combine", OpKind.MOE_COMBINE),
            ("sgd_update", OpKind.OPTIMIZER),
            ("sum_leading", OpKind.SUM_LEADING),
            ("broadcast_to", OpKind.BROADCAST),
        ],
    )
    def test_operator_kinds(self, name, kind):
        assert get_op(name).kind is kind
