"""Tests of the event-driven dual-stream overlap model.

Covers every layer the overlap refactor touched: the
:class:`~repro.cluster.spec.CommOverlapModel` itself, the cost model's
overlap-aware evaluation, the execution simulator's dual-stream replay, the
pipeline-schedule engine's asynchronous boundary transfers (hand-computed
partial-overlap case, ``overlap=0`` blocking-equivalence and monotonicity
properties for all three schedules), the hierarchical planner's
exposed-communication ranking (a slow-network testbed where the default
overlap selects a different plan), the ZeRO-style optimizer-state sharding
memory option, per-hop skip-connection byte charging, and the runtime's
double-buffered boundary handoff.
"""

import random

import numpy as np
import pytest

from repro.autodiff import build_training_graph
from repro.cluster import (
    DEFAULT_COMM_OVERLAP_EFFICIENCY,
    ClusterSpec,
    CommOverlapModel,
    Machine,
    NetworkSpec,
    device_type,
    heterogeneous_testbed,
)
from repro.core import (
    CostModel,
    HierarchicalConfig,
    HierarchicalPlanner,
    PlannerConfig,
    ProgramSynthesizer,
    SynthesisConfig,
)
from repro.graph import DType, GraphBuilder, cut_transfer_bytes, pipeline_cut
from repro.models.bert import BERTConfig, build_bert
from repro.runtime import SingleDeviceExecutor, run_hierarchical_plan
from repro.simulator import (
    SCHEDULE_NAMES,
    ExecutionSimulator,
    StageTimes,
    simulate_hierarchical,
    simulate_pipeline,
)

from .conftest import bindings_for, build_tiny_transformer, make_cluster


def small_planner(beam_width=8):
    config = PlannerConfig(max_rounds=1)
    config.synthesis = SynthesisConfig(beam_width=beam_width)
    return config


def hier_config(**kwargs):
    kwargs.setdefault("planner", small_planner())
    return HierarchicalConfig(**kwargs)


def random_stages(rng, s):
    return [
        StageTimes(
            forward=rng.uniform(0.3, 4),
            backward=rng.uniform(0.3, 6),
            sync=rng.uniform(0, 2),
            send_bytes=rng.uniform(0, 5),
            activation_bytes=rng.uniform(1, 100),
            weight_bytes=rng.uniform(0, 10),
        )
        for _ in range(s)
    ]


# ---------------------------------------------------------------------------
# the overlap model itself
# ---------------------------------------------------------------------------

class TestCommOverlapModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            CommOverlapModel(efficiency=-0.1)
        with pytest.raises(ValueError):
            CommOverlapModel(efficiency=1.1)
        with pytest.raises(ValueError):
            ClusterSpec(
                [Machine("m", device_type("A100"), num_gpus=1)],
                comm_overlap_efficiency=2.0,
            )

    def test_hidden_and_exposed_split(self):
        model = CommOverlapModel(efficiency=0.5)
        assert model.hidden(4.0, 2.0) == pytest.approx(1.0)  # window-bound
        assert model.hidden(2.0, 10.0) == pytest.approx(1.0)  # comm-bound
        assert model.exposed(4.0, 2.0) == pytest.approx(3.0)
        assert CommOverlapModel.disabled().hidden(4.0, 100.0) == 0.0

    def test_default_comes_from_cluster_spec(self):
        default = make_cluster()
        assert CommOverlapModel.from_cluster(default).efficiency == pytest.approx(
            DEFAULT_COMM_OVERLAP_EFFICIENCY
        )
        blocking = make_cluster()
        blocking.comm_overlap_efficiency = 0.0
        assert CommOverlapModel.from_cluster(blocking).efficiency == 0.0

    def test_cluster_propagates_to_partitions_and_subsets(self):
        cluster = heterogeneous_testbed(num_gpus=32)
        assert cluster.comm_overlap_efficiency == DEFAULT_COMM_OVERLAP_EFFICIENCY
        tweaked = ClusterSpec(
            cluster.machines,
            network=cluster.network,
            group_by_machine=True,
            comm_overlap_efficiency=0.25,
        )
        assert all(
            g.comm_overlap_efficiency == 0.25 for g in tweaked.partition(2).groups
        )
        assert tweaked.subset(2).comm_overlap_efficiency == 0.25


# ---------------------------------------------------------------------------
# schedule engine: asynchronous boundary transfers
# ---------------------------------------------------------------------------

class TestScheduleOverlap:
    def two_stage_inputs(self):
        # The PR-3 hand-computed case: per-microbatch (m=4) forward 1s,
        # backward 2s on both stages, 0.5s transfer per hop, syncs 3s/1s.
        return [
            StageTimes(forward=4.0, backward=8.0, sync=3.0, send_bytes=2.0),
            StageTimes(forward=4.0, backward=8.0, sync=1.0),
        ]

    def test_hand_computed_partial_overlap_1f1b(self):
        # overlap=0.5 hides 0.5*min(0.5, 1)=0.25s of each forward hop and
        # 0.5*min(0.5, 2)=0.25s of each gradient hop, so every dependency
        # edge carries 0.25s instead of 0.5s.  Hand trace (stage0 order
        # F0 F1 B0 F2 B1 F3 B2 B3; stage1 F0 B0 F1 B1 F2 B2 F3 B3):
        # F0s0 0-1, F0s1 1.25-2.25, B0s1 2.25-4.25, B0s0 4.5-6.5,
        # F1s1 4.25-5.25, B1s1 5.25-7.25, F2s0 6.5-7.5, B1s0 7.5-9.5,
        # F2s1 7.75-8.75, B2s1 8.75-10.75, F3s0 9.5-10.5, B2s0 11-13,
        # F3s1 10.75-11.75, B3s1 11.75-13.75, B3s0 14-16.
        # Finish: stage0 16+3=19, stage1 13.75+1=14.75 -> total 19.
        result = simulate_pipeline(
            self.two_stage_inputs(), 4, inter_group_bandwidth=1.0,
            schedule="1f1b", overlap=0.5,
        )
        assert result.total == pytest.approx(19.0)
        assert result.stage_finish == pytest.approx([19.0, 14.75])
        # Raw transfer load is unchanged; half of it hides per edge.
        assert result.transfer == pytest.approx(4.0)
        assert result.hidden_transfer == pytest.approx(2.0)
        assert result.exposed_transfer == pytest.approx(2.0)
        assert result.overlap == 0.5
        # Sender comm streams: stage 0 ships 4 forward sends, stage 1 ships
        # 4 gradient sends, 0.5s each.
        assert result.comm_busy == pytest.approx([2.0, 2.0])
        # Full overlap exposes nothing on the edges: total drops to 18.
        full = simulate_pipeline(
            self.two_stage_inputs(), 4, inter_group_bandwidth=1.0,
            schedule="1f1b", overlap=1.0,
        )
        assert full.total == pytest.approx(18.0)
        assert full.hidden_transfer == pytest.approx(4.0)
        # The blocking reference of PR 3 stays pinned at 20.
        blocking = simulate_pipeline(
            self.two_stage_inputs(), 4, inter_group_bandwidth=1.0, schedule="1f1b"
        )
        assert blocking.total == pytest.approx(20.0)

    @pytest.mark.parametrize("schedule", SCHEDULE_NAMES)
    def test_overlap_zero_reproduces_blocking_times_exactly(self, schedule):
        # Property: overlap=0 is bit-for-bit today's blocking engine for all
        # three schedules, on random stage profiles.
        rng = random.Random(23)
        for _ in range(40):
            s = rng.randint(2, 5)
            chunks = 2 if schedule == "interleaved-1f1b" else 1
            m = s * rng.randint(1, 5) if chunks > 1 else rng.randint(2, 20)
            stages = random_stages(rng, s)
            blocking = simulate_pipeline(
                stages, m, inter_group_bandwidth=1.0,
                schedule=schedule, num_model_chunks=chunks,
            )
            zero = simulate_pipeline(
                stages, m, inter_group_bandwidth=1.0,
                schedule=schedule, num_model_chunks=chunks, overlap=0.0,
            )
            assert zero.total == blocking.total
            assert zero.stage_finish == blocking.stage_finish
            assert zero.peak_memory == blocking.peak_memory
            assert zero.hidden_transfer == 0.0
            assert zero.exposed_transfer == blocking.transfer

    @pytest.mark.parametrize("schedule", SCHEDULE_NAMES)
    def test_total_time_monotone_in_overlap(self, schedule):
        rng = random.Random(31)
        grid = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
        for _ in range(25):
            s = rng.randint(2, 4)
            chunks = 2 if schedule == "interleaved-1f1b" else 1
            m = s * rng.randint(1, 4) if chunks > 1 else rng.randint(2, 16)
            stages = random_stages(rng, s)
            totals = [
                simulate_pipeline(
                    stages, m, inter_group_bandwidth=1.0,
                    schedule=schedule, num_model_chunks=chunks, overlap=e,
                ).total
                for e in grid
            ]
            assert all(
                later <= earlier + 1e-9 for earlier, later in zip(totals, totals[1:])
            ), (schedule, totals)

    def test_exposed_plus_hidden_equals_transfer(self):
        rng = random.Random(5)
        for _ in range(20):
            stages = random_stages(rng, rng.randint(2, 4))
            result = simulate_pipeline(
                stages, 8, inter_group_bandwidth=1.0, schedule="1f1b",
                overlap=rng.uniform(0.0, 1.0),
            )
            assert result.exposed_transfer + result.hidden_transfer == pytest.approx(
                result.transfer
            )

    def test_invalid_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            simulate_pipeline(
                [StageTimes(1.0, 2.0)], 1, inter_group_bandwidth=1.0, overlap=1.5
            )


# ---------------------------------------------------------------------------
# cost model and execution simulator
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def synthesized_program():
    cluster = make_cluster()
    training = build_training_graph(build_tiny_transformer()).graph
    program = (
        ProgramSynthesizer(training, cluster, SynthesisConfig(beam_width=8))
        .synthesize()
        .program
    )
    return training, program, cluster


def window_program(cluster):
    """A hand-built program whose sync stage has an overlap window.

    Stage 0 produces ``a`` (sharded); stage 1 all-gathers ``a`` and then runs
    one comp that consumes the gathered tensor (dependent) and one comp that
    only touches ``x`` (independent — the collective hides behind it).
    """
    from repro.collectives.cost import CollectiveKind
    from repro.core.instructions import CommInstruction, CompInstruction
    from repro.core.program import DistributedProgram
    from repro.core.properties import replicated, sharded

    b = GraphBuilder("window")
    x = b.placeholder((256, 256), name="x")
    a = b.relu(x)
    c = b.relu(a)
    d = b.relu(x)
    graph = b.graph
    instructions = [
        CompInstruction(
            node="x", op="placeholder", inputs=(), output=replicated("x"),
            flops_sharded=False,
        ),
        CompInstruction(node=a, op="relu", inputs=(sharded("x", 0),), output=sharded(a, 0)),
        CommInstruction(
            kind=CollectiveKind.ALL_GATHER, input=sharded(a, 0), output=replicated(a), dim=0,
        ),
        CompInstruction(
            node=c, op="relu", inputs=(replicated(a),), output=replicated(c),
            flops_sharded=False,
        ),
        CompInstruction(
            node=d, op="relu", inputs=(replicated("x"),), output=replicated(d),
            flops_sharded=False,
        ),
    ]
    program = DistributedProgram(
        graph=graph,
        instructions=instructions,
        properties=frozenset(),
        num_devices=cluster.num_devices,
    )
    return graph, program, {"x", a, c, d}


class TestCostModelOverlap:
    def test_evaluate_monotone_and_bounded(self, synthesized_program):
        training, program, cluster = synthesized_program
        ratios = cluster.proportional_ratios()
        model = CostModel(training, cluster)
        totals = [
            model.evaluate(program, ratios, overlap=e).total
            for e in (0.0, 0.3, 0.6, 1.0)
        ]
        assert all(b <= a + 1e-12 for a, b in zip(totals, totals[1:]))
        # Even full overlap cannot hide compute: the total stays above the
        # pure-computation floor.
        blocking = model.evaluate(program, ratios, overlap=0.0)
        assert totals[-1] >= blocking.computation

    def test_collective_hides_behind_independent_compute(self):
        cluster = make_cluster()
        graph, program, _forward = window_program(cluster)
        model = CostModel(graph, cluster)
        breakdown = model.evaluate(program, cluster.even_ratios())
        assert breakdown.hidden_communication > 0.0
        assert breakdown.exposed_communication < breakdown.communication
        serialized = model.evaluate(program, cluster.even_ratios(), overlap=0.0)
        assert breakdown.total < serialized.total

    def test_dependent_mask_tracks_transitive_consumers(self):
        cluster = make_cluster()
        _graph, program, _forward = window_program(cluster)
        stages = program.stages()
        assert [s.comm is not None for s in stages] == [False, True]
        # Stage 0 has no collective: nothing depends on one.
        assert stages[0].dependent_mask() == [False, False]
        # Stage 1: the consumer of the gathered tensor is dependent, the
        # unrelated comp is the overlap window.
        assert stages[1].dependent_mask() == [True, False]

    def test_dependent_mask_is_transitive(self, synthesized_program):
        _training, program, _cluster = synthesized_program
        for stage in program.stages():
            mask = stage.dependent_mask()
            assert len(mask) == len(stage.comps)
            if stage.comm is None:
                assert not any(mask)
        # The synthesized program's collectives all feed later compute.
        assert any(any(s.dependent_mask()) for s in program.stages())

    def test_phase_profile_overlap_only_shrinks_comm_phases(self):
        cluster = make_cluster()
        graph, program, forward_nodes = window_program(cluster)
        model = CostModel(graph, cluster)
        ratios = cluster.even_ratios()
        blocking = model.phase_profile(program, ratios, forward_nodes, overlap=0.0)
        overlapped = model.phase_profile(program, ratios, forward_nodes)
        for phase in ("forward", "backward", "sync"):
            assert overlapped[phase] <= blocking[phase] + 1e-12
        assert sum(overlapped.values()) < sum(blocking.values())


class TestSimulatorOverlap:
    def test_dual_stream_beats_blocking(self, synthesized_program):
        # On the real synthesized program the event timeline hides the
        # gradient collectives behind the backward tail and the parameter
        # updates behind later collectives.
        _, program, cluster = synthesized_program
        ratios = cluster.proportional_ratios()
        blocking = ExecutionSimulator(cluster, seed=0, overlap=0.0).simulate(
            program, ratios, 2
        )
        overlapped = ExecutionSimulator(cluster, seed=0, overlap=None).simulate(
            program, ratios, 2
        )
        assert overlapped.total < blocking.total
        assert overlapped.hidden_communication > 0.0
        # Raw collective load and compute are stream-local and unchanged.
        assert overlapped.communication == pytest.approx(blocking.communication)
        assert overlapped.computation == pytest.approx(blocking.computation)

    def test_simulator_total_monotone_in_overlap(self, synthesized_program):
        _, program, cluster = synthesized_program
        ratios = cluster.proportional_ratios()
        totals = [
            ExecutionSimulator(cluster, seed=3, overlap=e).simulate(program, ratios, 1).total
            for e in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert all(b <= a + 1e-15 for a, b in zip(totals, totals[1:]))

    def test_per_stream_breakdowns(self, synthesized_program):
        _, program, cluster = synthesized_program
        result = ExecutionSimulator(cluster, seed=0).simulate(
            program, cluster.proportional_ratios(), 1
        )
        n = cluster.num_devices
        assert len(result.per_device_busy) == n
        assert len(result.per_device_comm_busy) == n
        assert len(result.per_device_idle) == n
        assert all(b == pytest.approx(result.communication) for b in result.per_device_comm_busy)
        assert all(idle >= 0.0 for idle in result.per_device_idle)
        assert result.communication == pytest.approx(
            result.exposed_communication + result.hidden_communication, rel=1e-9
        )


# ---------------------------------------------------------------------------
# hierarchical planner: exposed-communication ranking
# ---------------------------------------------------------------------------

class TestPlannerOverlap:
    def test_plan_records_resolved_overlap(self):
        forward = build_tiny_transformer()
        cluster = make_cluster()
        plan = HierarchicalPlanner(forward, cluster, hier_config(max_stages=2)).plan()
        assert plan.overlap == pytest.approx(cluster.comm_overlap_efficiency)
        blocking = HierarchicalPlanner(
            forward, cluster, hier_config(max_stages=2, overlap=0.0)
        ).plan()
        assert blocking.overlap == 0.0
        assert blocking.schedule.overlap == 0.0
        assert plan.estimated_time <= blocking.estimated_time + 1e-12

    def test_invalid_overlap_config_rejected(self):
        with pytest.raises(ValueError):
            hier_config(overlap=1.5)

    def test_simulate_hierarchical_uses_plan_overlap(self):
        forward = build_tiny_transformer()
        plan = HierarchicalPlanner(
            forward, make_cluster(), hier_config(max_stages=2)
        ).plan()
        sim = simulate_hierarchical(plan, iterations=1, seed=0)
        assert sim.schedule.overlap == pytest.approx(plan.overlap)

    def test_slow_network_testbed_selects_different_plan_with_default_overlap(self):
        # Acceptance scenario: on the paper's bandwidth-constrained
        # heterogeneous testbed the blocking model and the dual-stream model
        # rank the microbatch grid differently — blocking chases ever-smaller
        # per-microbatch transfers, while with the default overlap those
        # transfers hide behind compute and a cheaper combination wins.
        cluster = heterogeneous_testbed(num_gpus=32, gpus_per_machine=8)
        forward = build_bert(BERTConfig(batch_size=64, num_layers=4))
        intra = NetworkSpec(bandwidth=100e9 / 8)
        blocking = HierarchicalPlanner(
            forward,
            cluster,
            hier_config(intra_group_network=intra, overlap=0.0, stage_candidates=[2]),
        ).plan()
        overlapped = HierarchicalPlanner(
            forward,
            cluster,
            hier_config(intra_group_network=intra, stage_candidates=[2]),
        ).plan()
        assert (
            blocking.num_stages,
            blocking.schedule_name,
            blocking.num_microbatches,
            blocking.recompute,
        ) != (
            overlapped.num_stages,
            overlapped.schedule_name,
            overlapped.num_microbatches,
            overlapped.recompute,
        )
        assert overlapped.estimated_time <= blocking.estimated_time + 1e-12
        assert overlapped.schedule.hidden_transfer > 0.0


# ---------------------------------------------------------------------------
# ZeRO-style optimizer-state sharding
# ---------------------------------------------------------------------------

class TestOptimizerStateSharding:
    def test_peak_device_memory_divides_replicated_moment(self):
        forward = build_tiny_transformer()
        plan = HierarchicalPlanner(
            forward, make_cluster(), hier_config(max_stages=2)
        ).plan()
        stage = plan.stages[0]
        n = stage.subcluster.num_devices
        replicated = sum(c.replicated_param_bytes for c in stage.chunks)
        assert replicated > 0, "test needs replicated parameters to shard"
        plain = stage.peak_device_memory(0.0)
        zero = stage.peak_device_memory(0.0, shard_optimizer_state=True)
        for j in range(n):
            saved = plain[j] - zero[j]
            assert saved == pytest.approx(replicated * (1.0 - 1.0 / n), rel=1e-9)

    def test_previously_infeasible_candidate_becomes_feasible(self):
        # Size device memory strictly between the plain and the ZeRO peak of
        # one pinned candidate: without sharding the planner's memory check
        # must reject it, with sharding it must accept the very same
        # (stages, schedule, microbatches, recompute) combination.
        from repro.cluster.device import DeviceType

        forward = build_tiny_transformer()
        base = dict(
            stage_candidates=[2],
            schedules=["1f1b"],
            num_microbatches=4,
            recompute="never",
        )

        def cluster(memory_bytes):
            a100 = device_type("A100")
            gpu = DeviceType(
                "ProbeGPU", peak_tflops=a100.peak_tflops, memory_bytes=int(memory_bytes)
            )
            machines = [Machine(f"t{i}", gpu, num_gpus=1) for i in range(4)]
            return ClusterSpec(
                machines,
                network=NetworkSpec(
                    bandwidth=200e9, latency=1e-6, kernel_launch_overhead=5e-7
                ),
                group_by_machine=False,
            )

        probe = HierarchicalPlanner(
            forward, cluster(64e9), hier_config(**base)
        ).build_candidate(2)
        assert probe is not None and probe.num_stages == 2
        worst_plain = worst_zero = 0.0
        for stage, stash in zip(probe.stages, probe.schedule.peak_stash):
            worst_plain = max(worst_plain, max(stage.peak_device_memory(stash)))
            worst_zero = max(
                worst_zero,
                max(stage.peak_device_memory(stash, shard_optimizer_state=True)),
            )
        assert worst_zero < worst_plain  # ZeRO genuinely shrinks the peak
        tight = cluster((worst_plain + worst_zero) / 2)

        infeasible = HierarchicalPlanner(
            forward, tight, hier_config(**base)
        ).build_candidate(2)
        feasible = HierarchicalPlanner(
            forward, tight, hier_config(shard_optimizer_state=True, **base)
        ).build_candidate(2)
        assert infeasible is not None and feasible is not None
        assert not infeasible.fits_memory
        assert feasible.fits_memory
        assert feasible.shard_optimizer_state
        assert (feasible.schedule_name, feasible.num_microbatches, feasible.recompute) == (
            infeasible.schedule_name,
            infeasible.num_microbatches,
            infeasible.recompute,
        )


# ---------------------------------------------------------------------------
# per-hop skip-connection byte charging
# ---------------------------------------------------------------------------

def build_skip_chain(batch=8, width=32):
    """Four matmul blocks with a skip connection from block 1 to block 4."""
    b = GraphBuilder("skipchain")
    x = b.placeholder((batch, width), name="features")
    h1 = b.relu(b.linear(x, width))
    h2 = b.relu(b.linear(h1, width))
    h3 = b.relu(b.linear(h2, width))
    h4 = b.add(b.linear(h3, width), h1)  # skip spans two boundaries
    labels = b.placeholder((batch,), dtype=DType.INT64, name="labels")
    loss = b.cross_entropy(h4, labels)
    b.loss(loss)
    return b.graph


class TestPerHopTransferBytes:
    def test_skip_tensor_charged_once_per_hop_crossed(self):
        graph = build_skip_chain()
        cut = pipeline_cut(graph, [1.0, 1.0, 1.0], balance_tolerance=0.0)
        assert cut.num_stages == 3
        skip_ref = next(
            ref
            for stage_refs in cut.cut_refs
            for ref in stage_refs
            if any(
                cut.stage_of[c] - cut.stage_of[ref] > 1
                for c in cut.consumers.get(ref, [])
                if c in cut.stage_of
            )
        )
        producer = cut.stage_of[skip_ref]
        last_consumer = max(
            cut.stage_of[c] for c in cut.consumers[skip_ref] if c in cut.stage_of
        )
        assert last_consumer - producer >= 2
        # The tensor is listed once per boundary it crosses...
        for boundary in range(producer, last_consumer):
            assert skip_ref in cut.crossing_refs(boundary)
        # ...but only once in cut_refs (its producer's boundary outputs).
        assert sum(skip_ref in refs for refs in cut.cut_refs) == 1
        per_hop = cut_transfer_bytes(graph, cut)
        assert len(per_hop) == cut.num_stages
        assert per_hop[-1] == 0
        skip_bytes = graph[skip_ref].spec.size_bytes
        # Every interior hop the skip crosses carries at least its bytes.
        for boundary in range(producer, last_consumer):
            assert per_hop[boundary] >= skip_bytes

    def test_crossing_refs_validates_boundary(self):
        graph = build_skip_chain()
        cut = pipeline_cut(graph, [1.0, 1.0])
        with pytest.raises(ValueError):
            cut.crossing_refs(cut.num_stages - 1)

    def test_planner_charges_relayed_bytes_on_interior_hops(self):
        # With 3 stages the middle chunk's outgoing hop must include the
        # skip tensor it merely relays: its send_bytes can exceed the bytes
        # of the tensors it produces itself.
        graph = build_skip_chain(batch=16, width=64)
        cluster = make_cluster(("A100", "A100", "A100"))
        planner = HierarchicalPlanner(graph, cluster, hier_config(stage_candidates=[3]))
        candidate = planner.build_candidate(3)
        if candidate is None or candidate.num_stages != 3:
            pytest.skip("graph cut to fewer than 3 stages")
        cut = candidate.cut
        hop_bytes = [
            sum(graph[ref].spec.size_bytes for ref in cut.crossing_refs(b))
            for b in range(cut.num_stages - 1)
        ]
        for chunk in (stage.chunks[0] for stage in candidate.stages[:-1]):
            assert chunk.send_bytes == hop_bytes[chunk.virtual_index]
        assert candidate.stages[-1].chunks[-1].send_bytes == 0


# ---------------------------------------------------------------------------
# runtime: double-buffered boundary handoff
# ---------------------------------------------------------------------------

class TestDoubleBufferedHandoff:
    def test_sender_runs_ahead_of_drain_and_channel_empties(self):
        forward = build_tiny_transformer()
        planner = HierarchicalPlanner(forward, make_cluster(), hier_config())
        plan = planner.build_candidate(2)
        assert plan is not None
        training = build_training_graph(forward)
        bindings = bindings_for(training.graph, seed=7)
        from repro.runtime.spmd import HierarchicalExecutor

        executor = HierarchicalExecutor(plan, num_microbatches=4)
        result = executor.run(bindings)
        channel = executor.channel
        assert channel is not None and channel.drained
        # Double buffering: at some point at least two payloads were in
        # flight simultaneously (the sender issued microbatch k+1's send
        # before the receiver drained microbatch k's).
        assert channel.peak_inflight_payloads >= 2
        events = channel.events
        sends0 = [
            idx
            for idx, (kind, what, k, j) in enumerate(events)
            if kind == "send" and k == 0
        ]
        drains1 = [
            idx
            for idx, (kind, what, k, j) in enumerate(events)
            if kind == "drain" and k == 1
        ]
        # Stage 0 issued its second microbatch's send before virtual stage 1
        # drained anything: compute for k+1 ran while k was in flight.
        assert len(sends0) >= 2 and drains1
        assert sends0[1] < drains1[0]
        # Numerics are untouched by the buffering.
        reference = SingleDeviceExecutor(training.graph).run(bindings)
        assert result.loss == pytest.approx(
            float(reference[training.loss]), rel=2e-4, abs=1e-4
        )

    def test_whole_batch_path_has_no_channel(self):
        forward = build_tiny_transformer()
        plan = HierarchicalPlanner(
            forward, make_cluster(), hier_config()
        ).build_candidate(2)
        from repro.runtime.spmd import HierarchicalExecutor

        training = build_training_graph(forward)
        executor = HierarchicalExecutor(plan, num_microbatches=1)
        executor.run(bindings_for(training.graph, seed=1))
        assert executor.channel is None
