"""Tests for functional collectives and the analytic cost models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import a100_pair, heterogeneous_testbed
from repro.collectives import (
    CollectiveCostModel,
    CollectiveKind,
    all_gather,
    all_reduce,
    all_to_all,
    broadcast,
    max_ratio,
    reduce_scatter,
    split,
)
from repro.graph import shard_sizes


class TestFunctionalCollectives:
    def test_all_gather_concatenates(self, rng):
        full = rng.normal(size=(10, 4))
        shards = split(full, 0, [3, 3, 4])
        gathered = all_gather(shards, 0)
        assert len(gathered) == 3
        for g in gathered:
            np.testing.assert_allclose(g, full)

    def test_all_gather_uneven_including_empty(self, rng):
        full = rng.normal(size=(5, 2))
        shards = split(full, 0, [5, 0])
        gathered = all_gather(shards, 0)
        np.testing.assert_allclose(gathered[1], full)

    def test_all_reduce_sums(self, rng):
        replicas = [rng.normal(size=(3, 3)) for _ in range(4)]
        out = all_reduce(replicas)
        np.testing.assert_allclose(out[2], sum(replicas))

    def test_reduce_scatter_matches_allreduce_then_split(self, rng):
        replicas = [rng.normal(size=(8, 2)) for _ in range(2)]
        out = reduce_scatter(replicas, 0, [5, 3])
        total = replicas[0] + replicas[1]
        np.testing.assert_allclose(out[0], total[:5])
        np.testing.assert_allclose(out[1], total[5:])

    def test_reduce_scatter_size_mismatch(self, rng):
        with pytest.raises(ValueError):
            reduce_scatter([rng.normal(size=(4,))], 0, [3])

    def test_all_to_all_reshards(self, rng):
        full = rng.normal(size=(6, 8))
        row_shards = split(full, 0, [4, 2])
        col_shards = all_to_all(row_shards, 0, 1, [5, 3])
        np.testing.assert_allclose(col_shards[0], full[:, :5])
        np.testing.assert_allclose(col_shards[1], full[:, 5:])

    def test_broadcast(self, rng):
        value = rng.normal(size=(2, 2))
        out = broadcast(value, 3)
        assert len(out) == 3
        np.testing.assert_allclose(out[2], value)

    def test_split_validates_sizes(self, rng):
        with pytest.raises(ValueError):
            split(rng.normal(size=(4, 2)), 0, [3, 3])

    def test_empty_participants_rejected(self):
        with pytest.raises(ValueError):
            all_reduce([])

    @given(
        rows=st.integers(min_value=1, max_value=40),
        cols=st.integers(min_value=1, max_value=8),
        parts=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_gather_of_split_is_identity(self, rows, cols, parts, seed):
        rng = np.random.default_rng(seed)
        full = rng.normal(size=(rows, cols))
        ratios = rng.uniform(0.0, 1.0, size=parts)
        sizes = shard_sizes(rows, ratios)
        shards = split(full, 0, sizes)
        gathered = all_gather(shards, 0)[0]
        np.testing.assert_allclose(gathered, full)

    @given(
        parts=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_reduce_scatter_equals_allreduce_slice(self, parts, seed):
        rng = np.random.default_rng(seed)
        replicas = [rng.normal(size=(12, 3)) for _ in range(parts)]
        sizes = shard_sizes(12, [1.0] * parts)
        scattered = reduce_scatter(replicas, 0, sizes)
        reduced = all_reduce(replicas)[0]
        offset = 0
        for shard, size in zip(scattered, sizes):
            np.testing.assert_allclose(shard, reduced[offset : offset + size], rtol=1e-6)
            offset += size


class TestCostModel:
    @pytest.fixture
    def model(self):
        return CollectiveCostModel(a100_pair())

    def test_max_ratio_clipping(self):
        assert max_ratio([0.1, 0.1, 0.1, 0.1]) == pytest.approx(0.25)
        assert max_ratio([2.0, 0.0]) == 1.0
        with pytest.raises(ValueError):
            max_ratio([])

    def test_all_reduce_monotonic_in_bytes(self, model):
        assert model.all_reduce(2e6) < model.all_reduce(8e6)

    def test_all_gather_padded_grows_with_skew(self, model):
        even = [0.25] * 4
        skew = [0.7, 0.1, 0.1, 0.1]
        assert model.all_gather_padded(4e6, even) < model.all_gather_padded(4e6, skew)

    def test_grouped_broadcast_insensitive_to_skew(self, model):
        even = model.all_gather_grouped(4e6, [0.25] * 4)
        skew = model.all_gather_grouped(4e6, [0.9, 0.05, 0.03, 0.02])
        assert even == pytest.approx(skew)

    def test_fig4_crossover_exists(self, model):
        """Padded All-Gather wins for nearly-even shards, grouped for skewed."""
        even_kind, _ = model.best_all_gather(4e6, [0.25] * 4)
        skew_kind, _ = model.best_all_gather(4e6, [0.95, 0.02, 0.02, 0.01])
        assert even_kind is CollectiveKind.ALL_GATHER
        assert skew_kind is CollectiveKind.ALL_GATHER_GROUPED

    def test_single_device_collectives_free(self):
        from repro.cluster import ClusterSpec, Machine, device_type

        cluster = ClusterSpec([Machine("m0", device_type("V100"), 1)], group_by_machine=False)
        model = CollectiveCostModel(cluster)
        assert model.all_reduce(1e6) == 0.0
        assert model.all_gather_padded(1e6, [1.0]) == 0.0

    def test_slice_is_nearly_free(self, model):
        slice_time = model.collective_time(CollectiveKind.SLICE, 4e6, [0.25] * 4)
        ag_time = model.collective_time(CollectiveKind.ALL_GATHER, 4e6, [0.25] * 4)
        assert slice_time < ag_time / 100

    def test_effective_bandwidth_inverse_of_time(self, model):
        bw = model.effective_bandwidth(CollectiveKind.ALL_REDUCE, 4e6, [0.25] * 4)
        assert bw == pytest.approx(4e6 / model.all_reduce(4e6))

    def test_reduce_scatter_cheaper_than_all_reduce(self, model):
        ratios = [0.25] * 4
        assert model.reduce_scatter(8e6, ratios) < model.all_reduce(8e6)

    def test_all_to_all_positive(self, model):
        assert model.all_to_all(4e6, [0.25] * 4) > 0

    def test_unknown_kind_rejected(self, model):
        with pytest.raises(ValueError):
            model.collective_time("nope", 1e6, [1.0])  # type: ignore[arg-type]

    @given(nbytes=st.floats(min_value=1e3, max_value=1e9))
    @settings(max_examples=30, deadline=None)
    def test_property_times_nonnegative(self, nbytes):
        model = CollectiveCostModel(heterogeneous_testbed(16))
        ratios = model.cluster.even_ratios()
        for kind in CollectiveKind:
            assert model.collective_time(kind, nbytes, ratios) >= 0.0
