"""Tests for the benchmark model zoo and the synthetic datasets."""

import numpy as np
import pytest

from repro.data import Cifar10Like, WikiText2Like, batches_for_graph
from repro.graph.graph import GraphError
from repro.models import (
    MODEL_NAMES,
    PER_DEVICE_BATCH,
    BERTConfig,
    BERTMoEConfig,
    VGGConfig,
    ViTConfig,
    build_bert,
    build_bert_moe,
    build_model,
    build_tiny_model,
    build_vgg19,
    build_vit,
    canonical_name,
    table1_inventory,
)
from repro.runtime import SingleDeviceExecutor, init_parameters


class TestModelZoo:
    def test_canonical_names_and_aliases(self):
        assert canonical_name("Vvgg") == "vgg19"
        assert canonical_name("Rmoe") == "bert_moe"
        assert canonical_name("bert_base") == "bert_base"
        with pytest.raises(KeyError):
            canonical_name("resnet50")

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_tiny_models_build_and_validate(self, name):
        graph = build_tiny_model(name)
        graph.validate()
        assert graph.loss is not None
        assert graph.parameter_count() > 0

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_tiny_models_execute(self, name):
        graph = build_tiny_model(name)
        executor = SingleDeviceExecutor(graph)
        bindings = {**init_parameters(graph, seed=0), **batches_for_graph(graph, seed=1)}
        loss = executor.loss_value(bindings)
        assert np.isfinite(loss) and loss > 0

    def test_weak_scaling_batch_size(self):
        g8 = build_model("bert_base", num_gpus=8)
        g16 = build_model("bert_base", num_gpus=16)
        b8 = g8.placeholders()[0].spec.shape[0]
        b16 = g16.placeholders()[0].spec.shape[0]
        assert b16 == 2 * b8 == PER_DEVICE_BATCH["bert_base"] * 16

    @pytest.mark.parametrize("name", ["bert_base", "bert_moe"])
    def test_scale_batch_per_device_is_honoured(self, name):
        # Regression: build_model used to hardwire the global batch to
        # PER_DEVICE_BATCH regardless of the scale, corrupting weak-scaling
        # and reduced-scale experiments.
        from repro.models import BenchmarkScale

        scale = BenchmarkScale("test", layer_fraction=0.1, batch_per_device=8)
        graph = build_model(name, num_gpus=4, scale=scale)
        assert graph.placeholders()[0].spec.shape[0] == 8 * 4

    def test_scale_without_batch_keeps_paper_defaults(self):
        from repro.models import BenchmarkScale

        scale = BenchmarkScale("test", layer_fraction=0.1)  # batch_per_device=None
        for name in MODEL_NAMES:
            graph = build_model(name, num_gpus=4, scale=scale)
            assert graph.placeholders()[0].spec.shape[0] == PER_DEVICE_BATCH[name] * 4
        assert BenchmarkScale.paper().batch_per_device is None
        assert BenchmarkScale.reduced().batch_per_device is None

    def test_moe_experts_scale_with_devices(self):
        g8 = build_model("bert_moe", num_gpus=8)
        g16 = build_model("bert_moe", num_gpus=16)

        def experts(graph):
            return max(
                n.spec.shape[0] for n in graph.parameters() if n.spec.rank == 3
            )

        assert experts(g16) == 2 * experts(g8)

    def test_moe_expert_override(self):
        graph = build_model("bert_moe", num_gpus=4, num_experts=10)
        experts = max(n.spec.shape[0] for n in graph.parameters() if n.spec.rank == 3)
        assert experts == 10

    def test_vgg_parameter_count_close_to_paper(self):
        graph = build_vgg19(VGGConfig(batch_size=8))
        assert graph.parameter_count() / 1e6 == pytest.approx(133, rel=0.1)

    def test_vit_parameter_count_close_to_paper(self):
        graph = build_vit(ViTConfig(batch_size=8))
        assert graph.parameter_count() / 1e6 == pytest.approx(54, rel=0.15)

    def test_bert_parameter_count_order(self):
        graph = build_bert(BERTConfig(batch_size=8))
        assert 80 < graph.parameter_count() / 1e6 < 150

    def test_bert_moe_has_more_parameters_than_bert(self):
        bert = build_bert(BERTConfig(batch_size=8, num_layers=4))
        moe = build_bert_moe(BERTMoEConfig(batch_size=8, num_layers=4, num_experts=8))
        assert moe.parameter_count() > bert.parameter_count()

    def test_vit_requires_divisible_patches(self):
        with pytest.raises(ValueError):
            build_vit(ViTConfig(image_size=30, patch_size=4))

    def test_table1_inventory(self):
        rows = table1_inventory(num_gpus=8)
        assert [r.name for r in rows] == MODEL_NAMES
        assert all(r.parameters > 1e6 for r in rows)

    def test_placeholders_are_batch_major(self):
        """All data placeholders carry the batch dimension first (required for
        consistent sharding across inputs and labels)."""
        for name in MODEL_NAMES:
            graph = build_tiny_model(name)
            batch_sizes = {p.spec.shape[0] for p in graph.placeholders()}
            assert len(batch_sizes) == 1, name


class TestSyntheticData:
    def test_cifar_like_shapes(self):
        batch = Cifar10Like(batch_size=16).batch(0)
        assert batch["images"].shape == (16, 3, 32, 32)
        assert batch["labels"].shape == (16,)
        assert batch["labels"].max() < 10

    def test_wikitext_like_shapes(self):
        batch = WikiText2Like(batch_size=4, seq_len=32).batch(0)
        assert batch["input_ids"].shape == (4, 32)
        assert batch["labels"].shape == (4, 32)
        assert batch["input_ids"].dtype == np.int64

    def test_deterministic_per_index(self):
        ds = WikiText2Like(batch_size=2, seq_len=8, seed=3)
        np.testing.assert_array_equal(ds.batch(5)["input_ids"], ds.batch(5)["input_ids"])
        assert not np.array_equal(ds.batch(5)["input_ids"], ds.batch(6)["input_ids"])

    def test_iteration_protocol(self):
        ds = Cifar10Like(batch_size=2)
        it = iter(ds)
        first = next(it)
        second = next(it)
        assert first["images"].shape == second["images"].shape

    def test_batches_for_graph_matches_placeholders(self):
        graph = build_tiny_model("bert_base")
        batch = batches_for_graph(graph, seed=0)
        for node in graph.placeholders():
            assert batch[node.name].shape == node.spec.shape

    def test_batches_for_graph_labels_within_range(self):
        graph = build_tiny_model("vgg19")
        batch = batches_for_graph(graph, seed=0)
        assert batch["labels"].max() < 10
