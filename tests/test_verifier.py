"""Static plan verifier (src/repro/verify/).

Positive direction: every registry model's hierarchically planned program,
plan and schedule must verify clean (and the ``verify_after_plan`` hooks —
on suite-wide via ``REPRO_VERIFY`` — mean every *other* test's plans are
verified too).  Negative direction: every seeded corruption from the
mutation harness must be caught with its expected diagnostic code, and a
cache entry hand-corrupted on disk must be rejected by the verify-on-hit
path as a diagnosed miss instead of being replayed.
"""

import dataclasses
import pickle
from pathlib import Path

import pytest

from repro.cluster import ClusterSpec, Machine, NetworkSpec, device_type
from repro.core import (
    DiskPlanCache,
    HAPPlanner,
    HierarchicalConfig,
    HierarchicalPlanner,
    PlannerConfig,
    SynthesisConfig,
)
from repro.core.config import verify_default
from repro.core.instructions import CommInstruction
from repro.models.registry import MODEL_NAMES, build_tiny_model
from repro.simulator.schedule import get_schedule
from repro.verify import (
    PlanVerificationError,
    Severity,
    verify_plan,
    verify_program,
    verify_schedule_orders,
)
from repro.verify.mutate import (
    PLAN_MUTATIONS,
    PROGRAM_MUTATIONS,
    SCHEDULE_MUTATIONS,
    duplicate_instruction,
)
from repro.verify.plan import verify_plan_structure

from .conftest import build_mlp, make_cluster


def small_planner():
    return PlannerConfig(max_rounds=1, synthesis=SynthesisConfig(beam_width=8))


def two_group_cluster() -> ClusterSpec:
    """Two machine groups with the paper's slow inter-group network."""
    machines = [
        Machine("v1", device_type("V100"), num_gpus=4),
        Machine("p1", device_type("P100"), num_gpus=4),
    ]
    return ClusterSpec(machines, network=NetworkSpec(), group_by_machine=True)


def hier_config(**kwargs) -> HierarchicalConfig:
    kwargs.setdefault("planner", small_planner())
    kwargs.setdefault("intra_group_network", NetworkSpec(bandwidth=100e9 / 8))
    kwargs.setdefault("max_stages", 2)
    return HierarchicalConfig(**kwargs)


@pytest.fixture(scope="module")
def bert_forward():
    return build_tiny_model("bert_base")


@pytest.fixture(scope="module")
def bert_plan(bert_forward):
    """A two-stage pipeline plan over the tiny BERT (module-scoped: ~1s)."""
    plan = HierarchicalPlanner(bert_forward, two_group_cluster(), hier_config()).plan()
    assert plan.num_stages == 2  # the mutations below exercise real boundaries
    return plan


@pytest.fixture(scope="module")
def flat_plan():
    """A flat SPMD plan with collectives to mutate (MLP on 4 devices)."""
    from repro.autodiff import build_training_graph

    graph = build_training_graph(build_mlp()).graph
    return HAPPlanner(graph, make_cluster(), small_planner()).plan()


# ---------------------------------------------------------------------------
# positive runs: every registry model verifies clean
# ---------------------------------------------------------------------------

class TestPositive:
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_registry_model_plan_verifies(self, name):
        forward = build_tiny_model(name)
        plan = HierarchicalPlanner(forward, two_group_cluster(), hier_config()).plan()
        report = verify_plan(plan, forward)
        assert report.ok, report.describe()
        # All three pass families actually ran.
        ran = set(report.passes_run)
        assert {"plan-partition", "program-dataflow", "schedule-acyclicity"} <= ran

    def test_flat_program_verifies(self, flat_plan):
        cluster = make_cluster()
        report = verify_program(flat_plan.program, cluster, flat_plan.flat_ratios)
        assert report.ok, report.describe()

    def test_canonical_schedules_verify(self):
        for name, s, m, v in (
            ("gpipe", 4, 8, 1),
            ("1f1b", 4, 8, 1),
            ("interleaved-1f1b", 2, 4, 2),
        ):
            orders = get_schedule(name, num_model_chunks=v).task_orders(s, m, v)
            report = verify_schedule_orders(
                orders, num_stages=s, num_microbatches=m, num_chunks=v, schedule_name=name
            )
            assert report.ok, (name, report.describe())


# ---------------------------------------------------------------------------
# negative runs: every seeded mutation is caught with its expected code
# ---------------------------------------------------------------------------

class TestProgramMutations:
    @pytest.mark.parametrize("mutation", sorted(PROGRAM_MUTATIONS))
    def test_mutation_caught(self, flat_plan, mutation):
        mutated, expected = PROGRAM_MUTATIONS[mutation](flat_plan.program)
        report = verify_program(mutated, make_cluster(), flat_plan.flat_ratios)
        assert not report.ok, f"{mutation} went undiagnosed"
        assert expected in report.codes(), (
            f"{mutation}: expected {expected}, got {report.codes()}\n{report.describe()}"
        )

    def test_dropped_collective_also_breaks_cost_agreement(self, flat_plan):
        # P008 cross-checks cost on the *well-formed* positive path; on a
        # mutated program the structural passes own the diagnosis, and the
        # report must not be drowned in spurious crashes.
        mutated, expected = PROGRAM_MUTATIONS["drop_collective"](flat_plan.program)
        report = verify_program(mutated, make_cluster(), flat_plan.flat_ratios)
        assert expected in report.codes()
        assert not report.ok


class TestScheduleMutations:
    @pytest.mark.parametrize("mutation", sorted(SCHEDULE_MUTATIONS))
    @pytest.mark.parametrize("schedule,s,m,v", [("1f1b", 4, 8, 1), ("gpipe", 3, 6, 1)])
    def test_mutation_caught(self, mutation, schedule, s, m, v):
        orders = get_schedule(schedule, num_model_chunks=v).task_orders(s, m, v)
        mutated, expected = SCHEDULE_MUTATIONS[mutation](orders)
        report = verify_schedule_orders(
            mutated, num_stages=s, num_microbatches=m, num_chunks=v, schedule_name=schedule
        )
        assert not report.ok, f"{mutation} went undiagnosed"
        assert expected in report.codes(), (
            f"{mutation}: expected {expected}, got {report.codes()}\n{report.describe()}"
        )

    def test_interleaved_wrap_hop_pairing(self):
        # Dropping a task from an interleaved order strands the matching
        # send/recv of a *wrap* hop (last stage -> stage 0) too.
        orders = get_schedule("interleaved-1f1b", num_model_chunks=2).task_orders(2, 4, 2)
        mutated = [list(o) for o in orders]
        mutated[-1].remove(("F", 1, 0))  # chunk-1 forward arrives via the wrap hop
        report = verify_schedule_orders(
            mutated, num_stages=2, num_microbatches=4, num_chunks=2,
            schedule_name="interleaved-1f1b",
        )
        assert "S002" in report.codes(), report.describe()


class TestPlanMutations:
    @pytest.mark.parametrize("mutation", sorted(PLAN_MUTATIONS))
    def test_mutation_caught(self, bert_plan, bert_forward, mutation):
        mutated, expected = PLAN_MUTATIONS[mutation](bert_plan)
        report = verify_plan(mutated, bert_forward)
        assert not report.ok, f"{mutation} went undiagnosed"
        assert expected in report.codes(), (
            f"{mutation}: expected {expected}, got {report.codes()}\n{report.describe()}"
        )

    def test_corrupt_chunk_program_caught_at_plan_level(self, bert_plan, bert_forward):
        mutated = dataclasses.replace(bert_plan)
        mutated.stages = [dataclasses.replace(s) for s in bert_plan.stages]
        mutated.stages[0].chunks = [dataclasses.replace(c) for c in bert_plan.stages[0].chunks]
        # A chunk on a one-machine group has no collectives, so corrupt the
        # dataflow instead: emulate one node twice.
        chunk = mutated.stages[0].chunks[0]
        bad_program, expected = duplicate_instruction(chunk.program)
        chunk.plan = dataclasses.replace(chunk.plan, program=bad_program)
        report = verify_plan(mutated, bert_forward)
        assert expected in report.codes(), report.describe()
        # The diagnostic is anchored to the owning virtual stage.
        assert any(
            d.code == expected and "virtual stage 0" in d.location
            for d in report.errors
        ), report.describe()

    def test_memory_mutation_is_error_only_when_plan_claims_fit(self, bert_plan, bert_forward):
        mutated, _ = PLAN_MUTATIONS["inflate_stage_memory"](bert_plan)
        # The plan still claims fits_memory=True, so the violation is an error...
        assert any(
            d.severity is Severity.ERROR and d.code == "L004"
            for d in verify_plan_structure(mutated, bert_forward).diagnostics
        )
        # ...but a plan that honestly reports infeasibility is not lying.
        mutated.fits_memory = False
        honest = verify_plan_structure(mutated, bert_forward)
        assert not [d for d in honest.errors if d.code == "L004"], honest.describe()


# ---------------------------------------------------------------------------
# verify_after_plan wiring
# ---------------------------------------------------------------------------

class TestVerifyAfterPlan:
    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "0")
        assert not verify_default()
        assert not HierarchicalConfig().verify_after_plan
        assert not SynthesisConfig().verify_after_plan
        monkeypatch.setenv("REPRO_VERIFY", "1")
        assert HierarchicalConfig().verify_after_plan
        assert SynthesisConfig().verify_after_plan

    def test_suite_runs_with_verifier_on(self):
        # tests/conftest.py turns the flag on suite-wide: every plan built by
        # any test goes through the verifier (this is the positive corpus).
        assert HierarchicalConfig().verify_after_plan

    def test_error_carries_report(self):
        from repro.verify.base import Diagnostic, VerificationReport

        report = VerificationReport()
        report.add(Diagnostic("L003", Severity.ERROR, "boom", "stage 0"))
        err = PlanVerificationError(report)
        assert err.report is report
        assert "L003" in str(err)


# ---------------------------------------------------------------------------
# cache corruption: verify-on-hit turns bad entries into diagnosed misses
# ---------------------------------------------------------------------------

class TestCacheCorruption:
    def _corrupt_on_disk(self, directory: str) -> int:
        """Hand-corrupt every entry file in a DiskPlanCache directory."""
        corrupted = 0
        for path in Path(directory).glob("*.plan"):
            entry = pickle.loads(path.read_bytes())
            if entry.extra.get("forward_names") is not None:
                # Whole-plan entry: break a chunk's boundary accounting.
                entry.plan.stages[0].chunks[0].send_bytes += 999
            else:
                # Chunk entry: corrupt its dataflow (a duplicated emulation).
                bad, _ = duplicate_instruction(entry.plan.program)
                entry.plan = dataclasses.replace(entry.plan, program=bad)
            path.write_bytes(pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL))
            corrupted += 1
        return corrupted

    def test_corrupt_entries_become_diagnosed_misses(self, bert_forward, tmp_path):
        directory = str(tmp_path / "plans")
        cold = HierarchicalPlanner(
            bert_forward,
            two_group_cluster(),
            hier_config(plan_cache=DiskPlanCache(directory)),
        ).plan()
        assert self._corrupt_on_disk(directory) > 0

        # Fresh cache instance: reads actually hit the corrupted files.
        warm = HierarchicalPlanner(
            bert_forward,
            two_group_cluster(),
            hier_config(plan_cache=DiskPlanCache(directory)),
        ).plan()
        assert warm.reuse_stats["whole_plan_hit"] == 0
        assert warm.reuse_stats["cache_rejects"] > 0
        assert warm.reuse_stats["subplans_planned"] > 0  # fell through to synthesis
        # The replanned result is clean and matches the cold plan.
        assert verify_plan(warm, bert_forward).ok
        assert warm.estimated_time == cold.estimated_time
        assert warm.schedule_name == cold.schedule_name

    def test_intact_cache_still_hits(self, bert_forward, tmp_path):
        directory = str(tmp_path / "plans")
        config = hier_config(plan_cache=DiskPlanCache(directory))
        HierarchicalPlanner(bert_forward, two_group_cluster(), config).plan()
        warm = HierarchicalPlanner(
            bert_forward,
            two_group_cluster(),
            hier_config(plan_cache=DiskPlanCache(directory)),
        ).plan()
        assert warm.reuse_stats["whole_plan_hit"] == 1
        assert warm.reuse_stats["cache_rejects"] == 0


# ---------------------------------------------------------------------------
# later-stage boundary audit (dependent_mask / instruction_phases)
# ---------------------------------------------------------------------------

class TestStageBoundaryAudit:
    """No chunk instruction references a tensor produced in a later stage.

    The dataflow pass (P001/P003) proves def-before-use *within* each chunk
    program; these tests additionally pin that every reference a chunk
    instruction touches exists in the chunk's own graph — i.e. activations
    from other stages enter only through placeholder seeds, never as dangling
    names — so ``Stage.dependent_mask()`` and ``instruction_phases()`` can
    never taint or classify against a tensor of a later stage.
    """

    def test_chunk_instructions_reference_only_chunk_tensors(self, bert_plan):
        for chunk in bert_plan.chunk_sequence():
            names = set(chunk.info.graph.node_names)
            for instr in chunk.program.instructions:
                if isinstance(instr, CommInstruction):
                    refs = {instr.input.ref, instr.output.ref}
                else:
                    refs = {p.ref for p in instr.inputs} | {instr.output.ref, instr.node}
                assert refs <= names, (
                    f"virtual stage {chunk.virtual_index}: {sorted(refs - names)} "
                    "not in the chunk graph"
                )

    def test_dependent_mask_and_phases_consistent_per_chunk(self, bert_plan):
        for chunk in bert_plan.chunk_sequence():
            program = chunk.program
            phases = program.instruction_phases(chunk.info.forward_nodes)
            assert len(phases) == len(program.instructions)
            for stage in program.stages():
                mask = stage.dependent_mask()
                assert len(mask) == len(stage.comps)
                if stage.comm is None:
                    assert not any(mask)
